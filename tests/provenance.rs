//! End-to-end data provenance: lineage flows from source fragments
//! through a cross-source join and the §3.4 stale-cache fallback into
//! the answers, the flight recorder, the exporters, and the management
//! console.

use nimble::core::{Catalog, Engine, EngineConfig, OptimizerConfig, UnavailablePolicy};
use nimble::frontend::ManagementConsole;
use nimble::sources::csv::CsvAdapter;
use nimble::sources::relational::RelationalAdapter;
use nimble::sources::sim::{LinkConfig, SimulatedLink};
use nimble::sources::SourceAdapter;
use nimble::trace::{prometheus_text, query_log_jsonl};
use std::sync::Arc;

const JOIN_QUERY: &str = r#"
    WHERE <row><sku>$s</sku><pname>$p</pname><price>$pr</price></row> IN "products",
          <row><sku>$s</sku><pct>$d</pct></row> IN "discounts"
    CONSTRUCT <offer><name>$p</name><discount>$d</discount></offer>
    ORDER-BY $p
"#;

/// An ERP source behind a controllable link, plus an always-up CSV
/// pricing source, under an engine with lineage tracking on and a
/// keep-everything flight recorder.
fn tracked_engine(policy: UnavailablePolicy) -> (Arc<Engine>, Arc<SimulatedLink>) {
    let c = Catalog::new();
    let erp = Arc::new(
        RelationalAdapter::from_statements(
            "erp",
            &[
                "CREATE TABLE products (sku INT, pname TEXT, price FLOAT)",
                "INSERT INTO products VALUES \
                 (100, 'widget', 9.5), (200, 'gadget', 120.0), (300, 'gizmo', 45.0)",
            ],
        )
        .unwrap(),
    );
    let link = SimulatedLink::new(erp, LinkConfig::default());
    c.register_source(Arc::clone(&link) as Arc<dyn SourceAdapter>)
        .unwrap();
    c.register_source(Arc::new(
        CsvAdapter::new("pricing")
            .add_csv("discounts", "sku,pct\n100,10\n200,5\n300,25\n")
            .unwrap(),
    ))
    .unwrap();
    let engine = Engine::with_config(
        Arc::new(c),
        EngineConfig {
            optimizer: OptimizerConfig {
                track_lineage: true,
                ..OptimizerConfig::default()
            },
            unavailable: policy,
            // Keep-everything flight recorder: every query retains its
            // evidence, so the assertions below can read it back.
            slow_query_ms: 0.0,
            ..EngineConfig::default()
        },
    );
    (Arc::new(engine), link)
}

#[test]
fn stale_fallback_marks_exactly_the_fallback_answers() {
    let (engine, link) = tracked_engine(UnavailablePolicy::StaleCache);

    // Warm run while the source is up: fully fresh lineage.
    let warm = engine.query(JOIN_QUERY).unwrap();
    assert!(warm.complete && !warm.stale);
    let prov = warm.provenance.as_ref().unwrap();
    assert_eq!(prov.answers.len(), 3);
    assert!(prov.stale_answers().is_empty());

    // Source down: the fragment is served from stale cache, and every
    // answer that flowed through the join is attributed to it.
    link.set_up(false);
    let r = engine.query(JOIN_QUERY).unwrap();
    assert!(r.complete && r.stale);
    let prov = r.provenance.as_ref().unwrap();
    assert_eq!(prov.stale_answers(), vec![0, 1, 2]);
    let units = r.why(1).unwrap();
    let erp = units.iter().find(|s| s.name == "erp").unwrap();
    assert!(erp.stale);
    assert!(erp.cache_age_ms.is_some());
    let pricing = units.iter().find(|s| s.name == "pricing").unwrap();
    assert!(!pricing.stale);

    // The per-source contribution table counts each answer once.
    let contrib = prov.contributions();
    assert!(contrib.iter().any(|(n, c)| n == "erp" && *c == 3));
    assert!(contrib.iter().any(|(n, c)| n == "pricing" && *c == 3));

    // Flight record: the stale query kept its affected-answer indices.
    let records = engine.flight_recorder().records();
    let rec = records.last().unwrap();
    assert!(rec.stale);
    assert_eq!(rec.affected_answers, vec![0, 1, 2]);
    assert!(rec.to_json().contains("\"affected_answers\":[0,1,2]"));

    // Query log JSONL carries the staleness verdict per entry.
    let jsonl = query_log_jsonl(&engine.query_log().recent(8));
    assert!(jsonl.lines().any(|l| l.contains("\"stale\":true")));
    assert!(jsonl.lines().any(|l| l.contains("\"stale\":false")));

    // Prometheus exposition includes the provenance counter family.
    let prom = prometheus_text(&engine.metrics_snapshot());
    assert!(prom.contains("engine_provenance_tracked"), "{}", prom);
    assert!(prom.contains("engine_provenance_stale_answers"), "{}", prom);
    assert!(prom.contains("engine_provenance_source_answers_erp"), "{}", prom);
    assert!(prom.contains("source_stale_served_erp"), "{}", prom);

    // The management console renders the contribution table.
    let console = ManagementConsole::new(Arc::clone(&engine));
    let rows = console.provenance();
    let erp_row = rows.iter().find(|row| row.name == "erp").unwrap();
    assert_eq!(erp_row.answers, 6, "both runs attributed 3 answers each");
    assert_eq!(erp_row.stale_served, 1);
    let report = console.render();
    assert!(report.contains("== provenance =="), "{}", report);
}

#[test]
fn skipped_sources_surface_in_provenance_and_flight_records() {
    let (engine, link) = tracked_engine(UnavailablePolicy::SkipAndAnnotate);
    link.set_up(false);
    let r = engine.query(JOIN_QUERY).unwrap();
    assert!(!r.complete);
    assert_eq!(r.missing_sources, vec!["erp"]);
    let prov = r.provenance.as_ref().unwrap();
    assert_eq!(prov.missing, vec!["erp"]);
    assert!(prov.answers.is_empty(), "nothing joined, nothing attributed");
    assert!(prov
        .sources
        .iter()
        .any(|s| s.name == "erp" && s.detail.starts_with("missing:")));

    let records = engine.flight_recorder().records();
    let rec = records.last().unwrap();
    assert!(!rec.complete);
    assert_eq!(rec.missing_sources, vec!["erp"]);
    assert!(rec.affected_answers.is_empty());
    assert!(rec.to_json().contains("\"missing_sources\":[\"erp\"]"));

    let jsonl = query_log_jsonl(&engine.query_log().recent(8));
    assert!(jsonl.lines().any(|l| l.contains("\"missing_sources\":[\"erp\"]")));
}
