//! End-to-end observability: EXPLAIN ANALYZE agrees with actual
//! execution, metrics flow from engine to console to cluster, and the
//! query log captures what ran.

use nimble::algebra::ops::{AggSpec, GroupAggOp, MeteredOp, ValuesOp};
use nimble::algebra::{explain_analyze, run_to_vec, AggFunc, Schema};
use nimble::core::{Catalog, DispatchStrategy, Engine, EngineCluster, EngineConfig};
use nimble::frontend::ManagementConsole;
use nimble::sources::csv::CsvAdapter;
use nimble::sources::relational::RelationalAdapter;
use nimble::xml::Value;
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    let c = Catalog::new();
    c.register_source(Arc::new(
        RelationalAdapter::from_statements(
            "erp",
            &[
                "CREATE TABLE products (sku INT, pname TEXT, price FLOAT)",
                "INSERT INTO products VALUES \
                 (100, 'widget', 9.5), (200, 'gadget', 120.0), (300, 'gizmo', 45.0), \
                 (400, 'doohickey', 80.0)",
            ],
        )
        .unwrap(),
    ))
    .unwrap();
    c.register_source(Arc::new(
        CsvAdapter::new("pricing")
            .add_csv("discounts", "sku,pct\n100,10\n200,5\n300,25\n")
            .unwrap(),
    ))
    .unwrap();
    Arc::new(c)
}

const JOIN_QUERY: &str = r#"
    WHERE <row><sku>$s</sku><pname>$p</pname><price>$pr</price></row> IN "products",
          <row><sku>$s</sku><pct>$d</pct></row> IN "discounts",
          $pr > 10.0
    CONSTRUCT <offer><name>$p</name><discount>$d</discount></offer>
    ORDER-BY $p
"#;

/// Pull `actual rows=N` annotations out of an EXPLAIN ANALYZE listing,
/// top-down.
fn actual_rows(listing: &str) -> Vec<u64> {
    listing
        .lines()
        .filter_map(|l| {
            let at = l.find("actual rows=")?;
            let rest = &l[at + "actual rows=".len()..];
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .collect()
}

#[test]
fn explain_analyze_rows_match_join_result() {
    let engine = Engine::new(catalog());
    let plain = engine.query(JOIN_QUERY).unwrap();
    let listing = engine.explain_analyze(JOIN_QUERY).unwrap();

    // Every operator in the plan carries an annotation...
    let rows = actual_rows(&listing);
    let operator_lines = listing
        .lines()
        .filter(|l| !l.starts_with("--") && l.contains("["))
        .count();
    assert_eq!(rows.len(), operator_lines, "listing:\n{}", listing);
    // ...and the root's actual row count equals the materialized result.
    assert_eq!(rows[0] as usize, plain.stats.tuples, "listing:\n{}", listing);
    // The phase spans rode along.
    assert!(listing.contains("query:"), "listing:\n{}", listing);
    assert!(listing.contains("execute:"), "listing:\n{}", listing);
    assert!(listing.contains("open="), "listing:\n{}", listing);
}

#[test]
fn explain_analyze_rows_match_group_by_plan() {
    // XML-QL planning never emits GroupAggOp, so drive the algebra
    // directly: Metered(GroupAgg(Metered(Values))).
    let schema = Schema::new(vec!["region".into(), "total".into()]);
    let tuples: Vec<Vec<Value>> = [
        ("NW", 10i64),
        ("NW", 20),
        ("SE", 5),
        ("SE", 7),
        ("SW", 1),
    ]
    .iter()
    .map(|(r, t)| vec![Value::from(*r), Value::from(*t)])
    .collect();
    let scan = MeteredOp::new(Box::new(ValuesOp::new(schema, tuples)));
    let group = GroupAggOp::new(
        Box::new(scan),
        vec![0],
        vec![AggSpec {
            func: AggFunc::Sum,
            input: Some(1),
            output: "sum_total".into(),
        }],
    );
    let mut op = MeteredOp::new(Box::new(group));
    let rows = run_to_vec(&mut op).unwrap();
    assert_eq!(rows.len(), 3);

    let listing = explain_analyze(&op);
    let annotated = actual_rows(&listing);
    // Root (the group) produced 3 groups from 5 scanned rows.
    assert_eq!(annotated, vec![3, 5], "listing:\n{}", listing);
}

#[test]
fn query_stats_report_phases_and_log_captures_queries() {
    let engine = Engine::new(catalog());
    let r = engine.query(JOIN_QUERY).unwrap();
    let phase_names: Vec<&str> = r.stats.phases.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        phase_names,
        vec!["parse", "analyze", "plan", "verify", "execute", "construct"]
    );
    assert!(r.stats.phases.iter().all(|(_, ms)| *ms >= 0.0));

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.counter("engine.queries"), 1);
    assert_eq!(snap.histograms["engine.phase_us.execute"].count, 1);
    assert_eq!(snap.counter("source.calls.erp"), 1);
    assert_eq!(snap.counter("source.calls.pricing"), 1);

    let recent = engine.query_log().recent(10);
    assert_eq!(recent.len(), 1);
    assert_eq!(recent[0].tuples, r.stats.tuples);
    assert!(recent[0].complete);
    assert!(!recent[0].from_cache);
}

#[test]
fn cache_hits_are_counted_and_timed() {
    let engine = Engine::new(catalog());
    engine.set_cache_query_results(true);
    let miss = engine.query(JOIN_QUERY).unwrap();
    assert!(!miss.stats.from_query_cache);
    let hit = engine.query(JOIN_QUERY).unwrap();
    assert!(hit.stats.from_query_cache);
    assert!(hit.stats.elapsed_ms >= 0.0);

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.counter("engine.queries"), 2);
    assert_eq!(snap.counter("engine.query_cache_hits"), 1);
    // Both the miss and the hit land in the latency histogram and log.
    assert_eq!(snap.histograms["engine.query_us"].count, 2);
    let recent = engine.query_log().recent(10);
    assert_eq!(recent.len(), 2);
    assert!(recent[0].from_cache);
    // The cache hit still fed the workload monitor.
    let candidates = engine.monitor().candidates();
    assert!(candidates.iter().any(|c| c.name == "products" && c.frequency == 2));
}

#[test]
fn console_and_cluster_aggregate_metrics() {
    let engine = Arc::new(Engine::new(catalog()));
    engine.query(JOIN_QUERY).unwrap();
    let console = ManagementConsole::new(Arc::clone(&engine));
    let health = console.source_health();
    let erp = health.iter().find(|h| h.name == "erp").unwrap();
    assert_eq!(erp.calls, 1);
    assert_eq!(erp.failures, 0);

    let cluster = EngineCluster::new(
        catalog(),
        2,
        1,
        EngineConfig::default(),
        DispatchStrategy::RoundRobin,
    );
    for _ in 0..4 {
        cluster.query(JOIN_QUERY).unwrap();
    }
    let merged = cluster.metrics_snapshot();
    assert_eq!(merged.counter("engine.queries"), 4);
    assert_eq!(merged.histograms["engine.query_us"].count, 4);
    cluster.shutdown();
}
