//! End-to-end observability: EXPLAIN ANALYZE agrees with actual
//! execution, metrics flow from engine to console to cluster, and the
//! query log captures what ran.

use nimble::algebra::ops::{AggSpec, GroupAggOp, MeteredOp, ValuesOp};
use nimble::algebra::{explain_analyze, run_to_vec, AggFunc, Schema};
use nimble::core::{Catalog, DispatchStrategy, Engine, EngineCluster, EngineConfig};
use nimble::frontend::ManagementConsole;
use nimble::sources::csv::CsvAdapter;
use nimble::sources::relational::RelationalAdapter;
use nimble::sources::sim::{LinkConfig, SimulatedLink};
use nimble::trace::{chrome_trace, MetricsRegistry, TraceId};
use nimble::xml::Value;
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    let c = Catalog::new();
    c.register_source(Arc::new(
        RelationalAdapter::from_statements(
            "erp",
            &[
                "CREATE TABLE products (sku INT, pname TEXT, price FLOAT)",
                "INSERT INTO products VALUES \
                 (100, 'widget', 9.5), (200, 'gadget', 120.0), (300, 'gizmo', 45.0), \
                 (400, 'doohickey', 80.0)",
            ],
        )
        .unwrap(),
    ))
    .unwrap();
    c.register_source(Arc::new(
        CsvAdapter::new("pricing")
            .add_csv("discounts", "sku,pct\n100,10\n200,5\n300,25\n")
            .unwrap(),
    ))
    .unwrap();
    Arc::new(c)
}

const JOIN_QUERY: &str = r#"
    WHERE <row><sku>$s</sku><pname>$p</pname><price>$pr</price></row> IN "products",
          <row><sku>$s</sku><pct>$d</pct></row> IN "discounts",
          $pr > 10.0
    CONSTRUCT <offer><name>$p</name><discount>$d</discount></offer>
    ORDER-BY $p
"#;

/// Pull `actual rows=N` annotations out of an EXPLAIN ANALYZE listing,
/// top-down.
fn actual_rows(listing: &str) -> Vec<u64> {
    listing
        .lines()
        .filter_map(|l| {
            let at = l.find("actual rows=")?;
            let rest = &l[at + "actual rows=".len()..];
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .collect()
}

#[test]
fn explain_analyze_rows_match_join_result() {
    let engine = Engine::new(catalog());
    let plain = engine.query(JOIN_QUERY).unwrap();
    let listing = engine.explain_analyze(JOIN_QUERY).unwrap();

    // Every operator in the plan carries an annotation...
    let rows = actual_rows(&listing);
    let operator_lines = listing
        .lines()
        .filter(|l| !l.starts_with("--") && l.contains("["))
        .count();
    assert_eq!(rows.len(), operator_lines, "listing:\n{}", listing);
    // ...and the root's actual row count equals the materialized result.
    assert_eq!(rows[0] as usize, plain.stats.tuples, "listing:\n{}", listing);
    // The phase spans rode along.
    assert!(listing.contains("query:"), "listing:\n{}", listing);
    assert!(listing.contains("execute:"), "listing:\n{}", listing);
    assert!(listing.contains("open="), "listing:\n{}", listing);
}

#[test]
fn explain_analyze_rows_match_group_by_plan() {
    // XML-QL planning never emits GroupAggOp, so drive the algebra
    // directly: Metered(GroupAgg(Metered(Values))).
    let schema = Schema::new(vec!["region".into(), "total".into()]);
    let tuples: Vec<Vec<Value>> = [
        ("NW", 10i64),
        ("NW", 20),
        ("SE", 5),
        ("SE", 7),
        ("SW", 1),
    ]
    .iter()
    .map(|(r, t)| vec![Value::from(*r), Value::from(*t)])
    .collect();
    let scan = MeteredOp::new(Box::new(ValuesOp::new(schema, tuples)));
    let group = GroupAggOp::new(
        Box::new(scan),
        vec![0],
        vec![AggSpec {
            func: AggFunc::Sum,
            input: Some(1),
            output: "sum_total".into(),
        }],
    );
    let mut op = MeteredOp::new(Box::new(group));
    let rows = run_to_vec(&mut op).unwrap();
    assert_eq!(rows.len(), 3);

    let listing = explain_analyze(&op);
    let annotated = actual_rows(&listing);
    // Root (the group) produced 3 groups from 5 scanned rows.
    assert_eq!(annotated, vec![3, 5], "listing:\n{}", listing);
}

#[test]
fn query_stats_report_phases_and_log_captures_queries() {
    let engine = Engine::new(catalog());
    let r = engine.query(JOIN_QUERY).unwrap();
    let phase_names: Vec<&str> = r.stats.phases.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        phase_names,
        vec!["parse", "analyze", "plan", "verify", "execute", "construct"]
    );
    assert!(r.stats.phases.iter().all(|(_, ms)| *ms >= 0.0));

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.counter("engine.queries"), 1);
    assert_eq!(snap.histograms["engine.phase_us.execute"].count, 1);
    assert_eq!(snap.counter("source.calls.erp"), 1);
    assert_eq!(snap.counter("source.calls.pricing"), 1);

    let recent = engine.query_log().recent(10);
    assert_eq!(recent.len(), 1);
    assert_eq!(recent[0].tuples, r.stats.tuples);
    assert!(recent[0].complete);
    assert!(!recent[0].from_cache);
}

#[test]
fn cache_hits_are_counted_and_timed() {
    let engine = Engine::new(catalog());
    engine.set_cache_query_results(true);
    let miss = engine.query(JOIN_QUERY).unwrap();
    assert!(!miss.stats.from_query_cache);
    let hit = engine.query(JOIN_QUERY).unwrap();
    assert!(hit.stats.from_query_cache);
    assert!(hit.stats.elapsed_ms >= 0.0);

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.counter("engine.queries"), 2);
    assert_eq!(snap.counter("engine.query_cache_hits"), 1);
    // Both the miss and the hit land in the latency histogram and log.
    assert_eq!(snap.histograms["engine.query_us"].count, 2);
    let recent = engine.query_log().recent(10);
    assert_eq!(recent.len(), 2);
    assert!(recent[0].from_cache);
    // The cache hit still fed the workload monitor.
    let candidates = engine.monitor().candidates();
    assert!(candidates.iter().any(|c| c.name == "products" && c.frequency == 2));
}

#[test]
fn console_and_cluster_aggregate_metrics() {
    let engine = Arc::new(Engine::new(catalog()));
    engine.query(JOIN_QUERY).unwrap();
    let console = ManagementConsole::new(Arc::clone(&engine));
    let health = console.source_health();
    let erp = health.iter().find(|h| h.name == "erp").unwrap();
    assert_eq!(erp.calls, 1);
    assert_eq!(erp.failures, 0);

    let cluster = EngineCluster::new(
        catalog(),
        2,
        1,
        EngineConfig::default(),
        DispatchStrategy::RoundRobin,
    );
    for _ in 0..4 {
        cluster.query(JOIN_QUERY).unwrap();
    }
    let merged = cluster.metrics_snapshot();
    assert_eq!(merged.counter("engine.queries"), 4);
    assert_eq!(merged.histograms["engine.query_us"].count, 4);
    cluster.shutdown();
}

/// Catalog whose "pricing" source sits behind a [`SimulatedLink`], so
/// tests can take it down or charge latency.
fn linked_catalog() -> (Arc<Catalog>, Arc<SimulatedLink>) {
    let c = Catalog::new();
    c.register_source(Arc::new(
        RelationalAdapter::from_statements(
            "erp",
            &[
                "CREATE TABLE products (sku INT, pname TEXT, price FLOAT)",
                "INSERT INTO products VALUES \
                 (100, 'widget', 9.5), (200, 'gadget', 120.0), (300, 'gizmo', 45.0)",
            ],
        )
        .unwrap(),
    ))
    .unwrap();
    let csv = Arc::new(
        CsvAdapter::new("pricing")
            .add_csv("discounts", "sku,pct\n100,10\n200,5\n300,25\n")
            .unwrap(),
    );
    let link = SimulatedLink::new(csv, LinkConfig { latency_ms: 2, ..LinkConfig::default() });
    let adapter: Arc<dyn nimble::sources::SourceAdapter> = link.clone();
    c.register_source(adapter).unwrap();
    (Arc::new(c), link)
}

#[test]
fn chrome_trace_export_is_valid_json_and_matches_phases() {
    let engine = Engine::new(catalog());
    let r = engine.query_profiled(JOIN_QUERY).unwrap();
    assert!(r.stats.trace_id > 0);
    assert!(!r.stats.spans.is_empty());

    let json = chrome_trace(&r.stats.spans, TraceId(r.stats.trace_id), engine.instance());
    let parsed: serde_json::Value =
        serde_json::from_str(&json).expect("chrome export must be valid JSON");
    let events = parsed["traceEvents"].as_array().unwrap();
    // One complete ("X") event per span, every one tagged with the
    // query's trace id and this engine's instance name.
    assert_eq!(events.len(), r.stats.spans.len());
    let tid = TraceId(r.stats.trace_id).to_string();
    for ev in events {
        assert_eq!(ev["ph"], "X", "event: {}", ev);
        assert!(ev["ts"].as_f64().unwrap() >= 0.0);
        assert!(ev["dur"].as_f64().unwrap() >= 0.0);
        assert_eq!(ev["args"]["trace_id"], tid.as_str());
        assert_eq!(ev["args"]["instance"], engine.instance());
    }
    // Every phase the stats report appears as an event whose duration
    // (µs) is the phase timing (ms) the profile reported.
    for (phase, ms) in &r.stats.phases {
        let ev = events
            .iter()
            .find(|e| e["name"] == phase.as_str())
            .unwrap_or_else(|| panic!("no event for phase {}", phase));
        let dur_us = ev["dur"].as_f64().unwrap();
        assert!(
            (dur_us - ms * 1e3).abs() < 1e-6,
            "{}: dur {}us vs phase {}ms",
            phase,
            dur_us,
            ms
        );
    }
    // The query log carries the same trace id, so the export, the log
    // line, and the stats all correlate.
    let recent = engine.query_log().recent(1);
    assert_eq!(recent[0].trace_id, r.stats.trace_id);
}

#[test]
fn failed_queries_are_flight_recorded_with_error_kind() {
    let (catalog, link) = linked_catalog();
    let engine = Engine::with_config(catalog, EngineConfig::default());
    link.set_up(false);
    let err = engine.query(JOIN_QUERY).unwrap_err();
    let msg = format!("{}", err);
    assert!(msg.contains("pricing"), "error: {}", msg);

    // Satellite: the failure is counted under the error-kind metric...
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.counter("engine.query.error"), 1);
    assert_eq!(snap.counter("engine.query.error.source"), 1);

    // ...logged with the error-kind string and the query's trace id...
    let recent = engine.query_log().recent(1);
    let entry = &recent[0];
    let log_err = entry.error.clone().expect("log entry records the error");
    assert!(log_err.starts_with("source:"), "log error: {}", log_err);

    // ...and flight-recorded even though it failed fast.
    assert_eq!(engine.flight_recorder().len(), 1);
    let dump = engine.flight_recorder().dump();
    let rec: serde_json::Value =
        serde_json::from_str(dump.lines().next().unwrap()).expect("dump line is JSON");
    assert_eq!(rec["trace_id"], TraceId(entry.trace_id).to_string().as_str());
    assert_eq!(rec["complete"], false);
    assert!(rec["error"].as_str().unwrap().starts_with("source:"));
    // The refused link call is attributed to the query, so the dump
    // alone explains which source sank it.
    let calls = rec["source_calls"].as_array().unwrap();
    assert!(
        calls.iter().any(|c| c["source"] == "pricing" && c["ok"] == false),
        "calls: {:?}",
        calls
    );
}

#[test]
fn slow_queries_keep_full_evidence_for_offline_reconstruction() {
    // slow_query_ms = 0 makes every query "slow", so the keep decision
    // fires without wall-clock games.
    let config = EngineConfig { slow_query_ms: 0.0, ..EngineConfig::default() };
    let engine = Engine::with_config(catalog(), config);
    let r = engine.query(JOIN_QUERY).unwrap();

    let records = engine.flight_recorder().records();
    assert_eq!(records.len(), 1);
    let rec = &records[0];
    assert_eq!(rec.trace_id, TraceId(r.stats.trace_id));
    assert_eq!(rec.instance, engine.instance());
    assert_eq!(rec.tuples, r.stats.tuples);
    assert!(rec.complete);
    // Full evidence rides along even though profiling was off: the
    // plan, the span tree, and every adapter call with row counts.
    assert!(rec.plan.contains("["), "plan: {}", rec.plan);
    assert!(rec.spans.iter().any(|s| s.name == "execute"));
    assert!(rec.source_calls.iter().any(|c| c.source == "erp" && c.ok && c.rows > 0));
    assert!(rec.source_calls.iter().any(|c| c.source == "pricing" && c.ok));

    // The dump round-trips as JSONL with the same correlates.
    let dump = engine.flight_recorder().dump();
    let parsed: serde_json::Value =
        serde_json::from_str(dump.lines().next().unwrap()).unwrap();
    assert_eq!(parsed["trace_id"], rec.trace_id.to_string().as_str());
    assert!(!parsed["plan"].as_str().unwrap().is_empty());
    assert_eq!(parsed["spans"].as_array().unwrap().len(), rec.spans.len());
    assert_eq!(
        parsed["source_calls"].as_array().unwrap().len(),
        rec.source_calls.len()
    );
    // And the query log agrees on the trace id.
    assert_eq!(engine.query_log().recent(1)[0].trace_id, r.stats.trace_id);
}

#[test]
fn link_stats_surface_as_gauges() {
    let (catalog, link) = linked_catalog();
    let engine = Engine::with_config(catalog, EngineConfig::default());
    engine.query(JOIN_QUERY).unwrap();
    link.set_up(false);
    engine.query(JOIN_QUERY).unwrap_err();

    let stats = link.stats();
    assert!(stats.calls >= 2);
    assert_eq!(stats.failures, 1);

    // Explicit publication into a registry of the caller's choosing.
    link.publish_stats(engine.metrics());
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.gauge("link.calls.pricing"), stats.calls);
    assert_eq!(snap.gauge("link.failures.pricing"), stats.failures);
    assert_eq!(snap.gauge("link.charged_latency_ms.pricing"), stats.charged_latency_ms);

    // The link also mirrors its counters into the process-global
    // registry as they change (shared across tests, hence >=).
    let global = MetricsRegistry::global().snapshot();
    assert!(global.gauge("link.calls.pricing") >= stats.calls);
    assert!(global.gauge("link.failures.pricing") >= stats.failures);
}

#[test]
fn profiling_on_off_results_are_byte_identical() {
    // Per-operator metering and allocation accounting are observers:
    // the same query with profiling forced on must construct the same
    // document, tuple for tuple, as the plain path.
    let engine = Engine::new(catalog());
    let plain = engine.query(JOIN_QUERY).unwrap();
    let profiled = engine.query_profiled(JOIN_QUERY).unwrap();
    assert_eq!(
        nimble::xml::to_string(&plain.document.root()),
        nimble::xml::to_string(&profiled.document.root()),
    );
    assert_eq!(plain.stats.tuples, profiled.stats.tuples);
    // Row conservation: the metered root materialized exactly the
    // tuples the result reports.
    let listing = engine.explain_analyze(JOIN_QUERY).unwrap();
    let rows = actual_rows(&listing);
    assert_eq!(rows[0] as usize, profiled.stats.tuples, "listing:\n{}", listing);
}

#[test]
fn query_allocation_accounting_is_conserved_across_phases() {
    if !nimble::trace::alloc::enabled() {
        return; // profile-alloc compiled out: nothing to account
    }
    let engine = Engine::new(catalog());
    let before = engine.metrics_snapshot();
    let r = engine.query(JOIN_QUERY).unwrap();
    let window = engine.metrics_snapshot().diff(&before);

    // The query allocated, and its peak cannot exceed its total (every
    // live byte above entry was allocated inside the query scope).
    assert!(r.stats.alloc_bytes > 0);
    assert!(r.stats.alloc_peak_bytes <= r.stats.alloc_bytes);

    // Phase scopes nest inside the query scope on the same thread, so
    // their byte counts can never sum past the query total.
    let phase_bytes: u64 = window
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("engine.phase_alloc.bytes."))
        .map(|(_, h)| h.sum)
        .sum();
    assert!(phase_bytes > 0, "phase allocation histograms are empty");
    assert!(
        phase_bytes <= r.stats.alloc_bytes,
        "phases {} bytes > query {} bytes",
        phase_bytes,
        r.stats.alloc_bytes
    );
}

#[test]
fn flight_records_carry_resource_accounting() {
    let config = EngineConfig { slow_query_ms: 0.0, ..EngineConfig::default() };
    let engine = Engine::with_config(catalog(), config);
    engine.query_profiled(JOIN_QUERY).unwrap();

    let records = engine.flight_recorder().records();
    let rec = &records[0];
    if nimble::trace::alloc::enabled() {
        assert!(rec.alloc_bytes > 0);
        assert!(rec.alloc_peak_bytes <= rec.alloc_bytes);
    }
    // A profiled cost-based query gets plan-quality scoring: a worst
    // offender is named and its Q-error is at least 1 (perfect).
    assert!(rec.worst_qerror >= 1.0, "worst_qerror: {}", rec.worst_qerror);
    assert!(rec.worst_qerror_op.is_some());

    // The dump exposes the same numbers under the "resource" block.
    let dump = engine.flight_recorder().dump();
    let parsed: serde_json::Value =
        serde_json::from_str(dump.lines().next().unwrap()).unwrap();
    assert_eq!(
        parsed["resource"]["alloc_bytes"].as_u64().unwrap(),
        rec.alloc_bytes
    );
    assert!(parsed["resource"]["worst_qerror"].as_f64().unwrap() >= 1.0);
    assert_eq!(
        parsed["resource"]["worst_qerror_op"].as_str(),
        rec.worst_qerror_op.as_deref()
    );
}

#[test]
fn cluster_merges_flight_records_in_start_order() {
    let config = EngineConfig { slow_query_ms: 0.0, ..EngineConfig::default() };
    let cluster = EngineCluster::new(catalog(), 2, 1, config, DispatchStrategy::RoundRobin);
    for _ in 0..4 {
        cluster.query(JOIN_QUERY).unwrap();
    }
    let records = cluster.flight_records();
    assert_eq!(records.len(), 4);
    // Trace ids are minted from one process-wide counter, so the merged
    // view is in admission order...
    assert!(records.windows(2).all(|w| w[0].trace_id < w[1].trace_id));
    // ...and each record names the instance that served it.
    let instances: std::collections::BTreeSet<&str> =
        records.iter().map(|r| r.instance.as_str()).collect();
    assert_eq!(instances.len(), 2, "round-robin spread over both engines");
    cluster.shutdown();
}
