//! Source availability (§3.4): partial results, annotations, and the
//! stale-cache fallback under flaky and offline links.

use nimble::core::{Catalog, Engine, UnavailablePolicy};
use nimble::sources::sim::{LinkConfig, SimulatedLink};
use nimble::sources::xmldoc::XmlDocAdapter;
use nimble::sources::SourceAdapter;
use std::sync::Arc;

fn feed(name: &str, items: &[&str]) -> Arc<dyn SourceAdapter> {
    let body: String = items
        .iter()
        .map(|i| format!("<item><v>{}</v></item>", i))
        .collect();
    Arc::new(
        XmlDocAdapter::new(name)
            .add_xml("data", &format!("<data>{}</data>", body))
            .unwrap(),
    )
}

/// Two feeds behind links; a view unions them so either can fail
/// independently.
fn setup() -> (Engine, Arc<SimulatedLink>, Arc<SimulatedLink>) {
    let a = SimulatedLink::new(feed("north", &["n1", "n2"]), LinkConfig::default());
    let b = SimulatedLink::new(feed("south", &["s1"]), LinkConfig::default());
    let catalog = Catalog::new();
    catalog.register_source(a.clone() as _).unwrap();
    catalog.register_source(b.clone() as _).unwrap();
    (Engine::new(Arc::new(catalog)), a, b)
}

#[test]
fn one_source_down_still_answers_the_rest() {
    let (engine, north, _south) = setup();
    engine.set_unavailable_policy(UnavailablePolicy::SkipAndAnnotate);
    north.set_up(false);
    // A query touching only the healthy source is complete.
    let r = engine
        .query(r#"WHERE <data><item><v>$v</v></item></data> IN "south.data" CONSTRUCT <o>$v</o>"#)
        .unwrap();
    assert!(r.complete);
    // A query touching the dead source is partial and annotated.
    let r = engine
        .query(r#"WHERE <data><item><v>$v</v></item></data> IN "north.data" CONSTRUCT <o>$v</o>"#)
        .unwrap();
    assert!(!r.complete);
    assert_eq!(r.missing_sources, vec!["north"]);
}

#[test]
fn stale_cache_bridges_outages() {
    let (engine, north, _south) = setup();
    engine.set_unavailable_policy(UnavailablePolicy::StaleCache);
    let q = r#"WHERE <data><item><v>$v</v></item></data> IN "north.data" CONSTRUCT <o>$v</o>"#;

    // Warm pass while up.
    let warm = engine.query(q).unwrap();
    assert!(!warm.stale);
    assert_eq!(warm.document.root().children().count(), 2);

    // Outage: the cached collection answers, marked stale.
    north.set_up(false);
    let bridged = engine.query(q).unwrap();
    assert!(bridged.stale);
    assert!(bridged.complete);
    assert!(bridged.document.root().deep_eq(&warm.document.root()));

    // Recovery: live again, not stale.
    north.set_up(true);
    let live = engine.query(q).unwrap();
    assert!(!live.stale);
}

#[test]
fn flaky_links_yield_partial_but_never_wrong_results() {
    let a = SimulatedLink::new(
        feed("north", &["n1", "n2"]),
        LinkConfig {
            fail_probability: 0.5,
            seed: 1234,
            ..LinkConfig::default()
        },
    );
    let b = SimulatedLink::new(
        feed("south", &["s1"]),
        LinkConfig {
            fail_probability: 0.5,
            seed: 5678,
            ..LinkConfig::default()
        },
    );
    let catalog = Catalog::new();
    catalog.register_source(a as _).unwrap();
    catalog.register_source(b as _).unwrap();
    let engine = Engine::with_config(
        Arc::new(catalog),
        nimble::core::EngineConfig {
            unavailable: UnavailablePolicy::SkipAndAnnotate,
            cache_nodes: 0, // no cache: isolate the policy itself
            ..nimble::core::EngineConfig::default()
        },
    );
    // Union view over both feeds via two separate queries per round.
    let mut complete_rounds = 0;
    let mut partial_rounds = 0;
    for _ in 0..40 {
        let r = engine
            .query(
                r#"WHERE <data><item><v>$v</v></item></data> IN "north.data"
                   CONSTRUCT <o>$v</o>"#,
            )
            .unwrap();
        if r.complete {
            complete_rounds += 1;
            // When complete, the answer is exactly right — never a
            // silently truncated set.
            assert_eq!(r.document.root().children().count(), 2);
        } else {
            partial_rounds += 1;
            assert_eq!(r.missing_sources, vec!["north"]);
            assert_eq!(r.document.root().children().count(), 0);
        }
    }
    // With p=0.5 both outcomes occur.
    assert!(complete_rounds > 5 && partial_rounds > 5);
}

#[test]
fn fail_policy_reports_the_source() {
    let (engine, north, _) = setup();
    north.set_up(false);
    let err = engine
        .query(r#"WHERE <data><item><v>$v</v></item></data> IN "north.data" CONSTRUCT <o>$v</o>"#)
        .unwrap_err();
    assert!(err.to_string().contains("north"), "{}", err);
}

#[test]
fn view_over_failed_source_uses_stale_materialization() {
    let (engine, north, _) = setup();
    engine.set_unavailable_policy(UnavailablePolicy::StaleCache);
    engine
        .catalog()
        .define_view(
            "northview",
            r#"WHERE <data><item><v>$v</v></item></data> IN "north.data"
               CONSTRUCT <n>$v</n>"#,
            Some(5),
        )
        .unwrap();
    engine.materialize_view("northview", Some(5)).unwrap();
    // Let the materialization go stale AND kill the source: the stale
    // copy is still better than nothing under StaleCache.
    engine.clock().advance(10);
    north.set_up(false);
    let r = engine
        .query(r#"WHERE <n>$v</n> IN "northview" CONSTRUCT <o>$v</o>"#)
        .unwrap();
    assert!(r.stale);
    assert_eq!(r.document.root().children().count(), 2);
}
