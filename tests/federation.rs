//! Federation correctness: heterogeneous sources answer the same
//! queries identically regardless of optimizer choices, and the four
//! adapter kinds interoperate.

use nimble::core::{Catalog, Engine, OptimizerConfig};
use nimble::sources::csv::CsvAdapter;
use nimble::sources::hierarchical::{HierarchicalAdapter, Segment};
use nimble::sources::relational::RelationalAdapter;
use nimble::sources::xmldoc::XmlDocAdapter;
use nimble::xml::{to_string, Atomic};
use std::sync::Arc;

fn four_source_catalog() -> Arc<Catalog> {
    let c = Catalog::new();
    c.register_source(Arc::new(
        RelationalAdapter::from_statements(
            "erp",
            &[
                "CREATE TABLE products (sku INT, pname TEXT, price FLOAT)",
                "INSERT INTO products VALUES \
                 (100, 'widget', 9.5), (200, 'gadget', 120.0), (300, 'gizmo', 45.0)",
            ],
        )
        .unwrap(),
    ))
    .unwrap();
    c.register_source(Arc::new(HierarchicalAdapter::new(
        "warehouse",
        vec![
            Segment::new("site", vec![("city", "Seattle".into())]).with_children(vec![
                Segment::new("bin", vec![("sku", Atomic::Int(100)), ("qty", Atomic::Int(7))]),
                Segment::new("bin", vec![("sku", Atomic::Int(200)), ("qty", Atomic::Int(0))]),
            ]),
            Segment::new("site", vec![("city", "Reno".into())]).with_children(vec![
                Segment::new("bin", vec![("sku", Atomic::Int(300)), ("qty", Atomic::Int(2))]),
            ]),
        ],
    )))
    .unwrap();
    c.register_source(Arc::new(
        CsvAdapter::new("pricing")
            .add_csv("discounts", "sku,pct\n100,10\n300,25\n")
            .unwrap(),
    ))
    .unwrap();
    c.register_source(Arc::new(
        XmlDocAdapter::new("reviews")
            .add_xml(
                "feed",
                "<feed>\
                 <review sku='100'><stars>5</stars></review>\
                 <review sku='100'><stars>3</stars></review>\
                 <review sku='300'><stars>4</stars></review>\
                 </feed>",
            )
            .unwrap(),
    ))
    .unwrap();
    Arc::new(c)
}

const FOUR_WAY_QUERY: &str = r#"
    WHERE <row><sku>$s</sku><pname>$p</pname><price>$pr</price></row> IN "products",
          <row><sku>$s</sku><qty>$q</qty></row> IN "bin",
          <row><sku>$s</sku><pct>$d</pct></row> IN "discounts",
          <feed><review sku=$s><stars>$st</stars></review></feed> IN "feed",
          $q > 0
    CONSTRUCT <offer><name>$p</name><stars>$st</stars><discount>$d</discount></offer>
    ORDER-BY $p, $st
"#;

#[test]
fn four_kinds_of_sources_join() {
    let engine = Engine::new(four_source_catalog());
    let r = engine.query(FOUR_WAY_QUERY).unwrap();
    assert!(r.complete);
    assert_eq!(
        to_string(&r.document.root()),
        "<results>\
         <offer><name>gizmo</name><stars>4</stars><discount>25</discount></offer>\
         <offer><name>widget</name><stars>3</stars><discount>10</discount></offer>\
         <offer><name>widget</name><stars>5</stars><discount>10</discount></offer>\
         </results>"
    );
}

#[test]
fn optimizer_choices_never_change_answers() {
    let configs = [
        OptimizerConfig {
            pushdown: true,
            capability_joins: true,
            order_joins_by_cardinality: true,
            ..OptimizerConfig::default()
        },
        OptimizerConfig {
            pushdown: false,
            capability_joins: false,
            order_joins_by_cardinality: false,
            ..OptimizerConfig::default()
        },
        OptimizerConfig {
            pushdown: true,
            capability_joins: false,
            order_joins_by_cardinality: false,
            ..OptimizerConfig::default()
        },
        OptimizerConfig {
            pushdown: false,
            capability_joins: false,
            order_joins_by_cardinality: true,
            ..OptimizerConfig::default()
        },
    ];
    let engine = Engine::new(four_source_catalog());
    let mut outputs = Vec::new();
    for config in configs {
        engine.set_optimizer(config);
        let r = engine.query(FOUR_WAY_QUERY).unwrap();
        outputs.push(to_string(&r.document.root()));
    }
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0]);
    }
}

#[test]
fn ambiguous_collections_require_qualification() {
    // Both erp and pricing could plausibly export a same-named
    // collection; build that conflict explicitly.
    let c = Catalog::new();
    c.register_source(Arc::new(
        CsvAdapter::new("a").add_csv("items", "id\n1\n").unwrap(),
    ))
    .unwrap();
    c.register_source(Arc::new(
        CsvAdapter::new("b").add_csv("items", "id\n2\n").unwrap(),
    ))
    .unwrap();
    let engine = Engine::new(Arc::new(c));
    let err = engine
        .query(r#"WHERE <row><id>$i</id></row> IN "items" CONSTRUCT <o>$i</o>"#)
        .unwrap_err();
    assert!(err.to_string().contains("several sources"), "{}", err);
    // Qualified names disambiguate.
    let r = engine
        .query(r#"WHERE <row><id>$i</id></row> IN "b.items" CONSTRUCT <o>$i</o>"#)
        .unwrap();
    assert_eq!(r.document.root().child("o").unwrap().text(), "2");
}

#[test]
fn recursion_and_navigation_over_legacy_tree() {
    // The hierarchical adapter's whole-tree export supports the XML
    // features the paper names: recursion (part+) and navigation.
    let c = Catalog::new();
    c.register_source(Arc::new(HierarchicalAdapter::new(
        "bom",
        vec![Segment::new("part", vec![("pid", Atomic::Int(1))]).with_children(vec![
            Segment::new("part", vec![("pid", Atomic::Int(2))]).with_children(vec![
                Segment::new("part", vec![("pid", Atomic::Int(3))]),
            ]),
            Segment::new("part", vec![("pid", Atomic::Int(4))]),
        ])],
    )))
    .unwrap();
    let engine = Engine::new(Arc::new(c));
    let r = engine
        .query(
            r#"WHERE <part+><pid>$p</pid></> IN "bom._tree"
               CONSTRUCT <p>$p</p> ORDER-BY $p"#,
        )
        .unwrap();
    // part+ reaches every nesting level.
    assert_eq!(
        to_string(&r.document.root()),
        "<results><p>1</p><p>2</p><p>3</p><p>4</p></results>"
    );
}

#[test]
fn document_order_is_preserved_without_order_by() {
    let c = Catalog::new();
    c.register_source(Arc::new(
        XmlDocAdapter::new("docs")
            .add_xml("seq", "<seq><i>3</i><i>1</i><i>2</i></seq>")
            .unwrap(),
    ))
    .unwrap();
    let engine = Engine::new(Arc::new(c));
    let r = engine
        .query(r#"WHERE <seq><i>$v</i></seq> IN "seq" CONSTRUCT <o>$v</o>"#)
        .unwrap();
    // No ORDER-BY → XML document order, not value order.
    assert_eq!(
        to_string(&r.document.root()),
        "<results><o>3</o><o>1</o><o>2</o></results>"
    );
}
