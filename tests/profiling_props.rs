//! Property tests for the resource profiler: over randomly generated
//! databases, forcing per-operator metering and allocation accounting
//! on never changes a query's answer, and the accounting it produces is
//! internally conserved (peaks bounded by totals, metered root rows
//! equal to materialized tuples).

use nimble::core::{Catalog, Engine};
use nimble::sources::relational::RelationalAdapter;
use nimble::xml::to_string;
use proptest::prelude::*;
use std::sync::Arc;

fn build_catalog(
    customers: &[(i64, String, String)],
    orders: &[(i64, i64, i64)],
) -> Arc<Catalog> {
    let mut stmts = vec![
        "CREATE TABLE customers (id INT, name TEXT, region TEXT)".to_string(),
        "CREATE TABLE orders (oid INT, cust_id INT, total INT)".to_string(),
    ];
    for (id, name, region) in customers {
        stmts.push(format!(
            "INSERT INTO customers VALUES ({}, '{}', '{}')",
            id, name, region
        ));
    }
    for (oid, cust, total) in orders {
        stmts.push(format!(
            "INSERT INTO orders VALUES ({}, {}, {})",
            oid, cust, total
        ));
    }
    let catalog = Catalog::new();
    catalog
        .register_source(Arc::new(
            RelationalAdapter::from_statements(
                "erp",
                &stmts.iter().map(String::as_str).collect::<Vec<_>>(),
            )
            .unwrap(),
        ))
        .unwrap();
    Arc::new(catalog)
}

fn customers_strategy() -> impl Strategy<Value = Vec<(i64, String, String)>> {
    proptest::collection::vec(
        (0i64..20, "[a-d]{1,4}", prop_oneof![Just("NW"), Just("SW")]),
        0..15,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (_, name, region))| (i as i64, name, region.to_string()))
            .collect()
    })
}

fn orders_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0i64..100, 0i64..15, 0i64..100), 0..20).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (_, cust, total))| (i as i64, cust, total))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Profiling is an observer: the profiled run of every generated
    /// query constructs a byte-identical document, and its accounting
    /// is conserved.
    #[test]
    fn profiling_never_changes_answers_and_accounting_is_conserved(
        customers in customers_strategy(),
        orders in orders_strategy(),
        threshold in 0i64..100,
    ) {
        let query = format!(
            r#"WHERE <row><id>$i</id><name>$n</name></row> IN "customers",
                     <row><cust_id>$i</cust_id><total>$t</total></row> IN "orders",
                     $t > {}
               CONSTRUCT <hit><name>$n</name><total>$t</total></hit>
               ORDER-BY $n"#,
            threshold
        );
        let engine = Engine::new(build_catalog(&customers, &orders));

        let plain = engine.query(&query).unwrap();
        let profiled = engine.query_profiled(&query).unwrap();

        // Byte-identical result documents and tuple counts.
        prop_assert_eq!(
            to_string(&plain.document.root()),
            to_string(&profiled.document.root())
        );
        prop_assert_eq!(plain.stats.tuples, profiled.stats.tuples);

        // Allocation conservation (when the counting allocator is
        // compiled in): a peak above entry can only come from bytes
        // allocated inside the scope.
        if nimble::trace::alloc::enabled() {
            prop_assert!(profiled.stats.alloc_bytes > 0);
            prop_assert!(profiled.stats.alloc_peak_bytes <= profiled.stats.alloc_bytes);
        }

        // Plan-quality scoring: when a worst offender is named, its
        // Q-error is a ratio >= 1 by construction.
        if profiled.stats.worst_qerror_op.is_some() {
            prop_assert!(profiled.stats.worst_qerror >= 1.0);
        }

        // Row conservation: the metered root of the analyzed plan
        // materializes exactly the reported tuples.
        let listing = engine.explain_analyze(&query).unwrap();
        if let Some(at) = listing.find("actual rows=") {
            let digits: String = listing[at + "actual rows=".len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            let root_rows: usize = digits.parse().unwrap();
            prop_assert_eq!(root_rows, profiled.stats.tuples);
        }
    }
}
