//! Figure-1 walk: the full product pipeline from management setup
//! through lens execution, exercising every box of the paper's
//! architecture diagram in one flow.

use nimble::core::{Catalog, Engine};
use nimble::frontend::{Device, Directory, Lens, LensRegistry, ParamDef, SystemMonitor, Template};
use nimble::relational::Database;
use nimble::sources::relational::RelationalAdapter;
use nimble::sources::xmldoc::XmlDocAdapter;
use std::collections::BTreeMap;
use std::sync::Arc;

#[test]
fn figure_1_pipeline() {
    // ── Management tools: register sources in the metadata server ──
    let catalog = Catalog::new();
    let crm = Arc::new(
        RelationalAdapter::from_statements(
            "crm",
            &[
                "CREATE TABLE customers (id INT, name TEXT, region TEXT)",
                "CREATE INDEX ON customers (region) USING HASH",
                "INSERT INTO customers VALUES \
                 (1, 'Acme', 'NW'), (2, 'Globex', 'SW'), (3, 'Initech', 'NW')",
            ],
        )
        .unwrap(),
    );
    let crm_db = crm.database();
    catalog.register_source(crm).unwrap();
    catalog
        .register_source(Arc::new(
            XmlDocAdapter::new("press")
                .add_xml(
                    "releases",
                    "<releases>\
                     <item><company>Acme</company><headline>Acme ships widgets</headline></item>\
                     <item><company>Initech</company><headline>Initech IPO</headline></item>\
                     </releases>",
                )
                .unwrap(),
        ))
        .unwrap();

    // ── Mediated schema: a view joining both sources ──
    catalog
        .define_view(
            "customer_news",
            r#"WHERE <row><name>$n</name><region>$r</region></row> IN "customers",
                     <item><company>$n</company><headline>$h</headline></item> IN "releases"
               CONSTRUCT <news><who>$n</who><region>$r</region><headline>$h</headline></news>"#,
            None,
        )
        .unwrap();

    // ── Integration engine behind the front end ──
    let engine = Arc::new(Engine::new(Arc::new(catalog)));

    // ── Front end: lens with params, auth, formatting, device target ──
    let directory = Arc::new(Directory::new());
    directory.add_user("exec", "pw", &["management"]);
    let monitor = Arc::new(SystemMonitor::new());
    let registry = LensRegistry::new(
        Arc::clone(&engine),
        Arc::clone(&directory),
        Arc::clone(&monitor),
    );
    registry.register(Lens {
        name: "regional_news".into(),
        query: r#"WHERE <news><who>$n</who><region>:region</region><headline>$h</headline></news>
                        IN "customer_news"
                  CONSTRUCT <story><co>$n</co><h>$h</h></story> ORDER-BY $n"#
            .into(),
        params: vec![ParamDef {
            name: "region".into(),
            default: Some("NW".into()),
        }],
        template: Template::parse("{{#each story}}{{co}}: {{h}}\n{{/each}}").unwrap(),
        device: Device::WebBrowser,
        required_role: Some("management".into()),
    });

    // ── Run it end to end ──
    crm_db.write().reset_stats();
    let response = registry
        .run("regional_news", "exec", "pw", &BTreeMap::new())
        .unwrap();
    assert!(response.result.complete);
    assert_eq!(
        response.body,
        "<html><body>\nAcme: Acme ships widgets\nInitech: Initech IPO\n\n</body></html>"
    );

    // The compiler really generated SQL against the relational source
    // (the view's customers fragment executed there).
    assert!(crm_db.read().stats().statements >= 1);

    // The monitor saw the request.
    let report = monitor.report();
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].requests, 1);
    assert_eq!(report[0].incomplete, 0);

    // The lower-level interface remains available and agrees.
    let direct = engine
        .query(
            r#"WHERE <news><who>$n</who><region>"NW"</region></news> IN "customer_news"
               CONSTRUCT <c>$n</c> ORDER-BY $n"#,
        )
        .unwrap();
    assert_eq!(direct.document.root().children().count(), 2);
}

#[test]
fn management_tools_introspection() {
    let catalog = Catalog::new();
    catalog
        .register_source(Arc::new(RelationalAdapter::new(
            "empty_db",
            Arc::new(parking_lot::RwLock::new(Database::new())),
        )))
        .unwrap();
    catalog
        .register_source(Arc::new(
            XmlDocAdapter::new("docs").add_xml("d", "<d/>").unwrap(),
        ))
        .unwrap();
    assert_eq!(catalog.source_names(), vec!["docs", "empty_db"]);
    assert!(catalog.unregister_source("empty_db"));
    assert_eq!(catalog.source_names(), vec!["docs"]);

    catalog
        .define_view("v", r#"WHERE <d>$x</d> IN "docs.d" CONSTRUCT <o>$x</o>"#, Some(5))
        .unwrap();
    assert_eq!(catalog.view_names(), vec!["v"]);
    assert!(catalog.drop_view("v"));
    assert!(catalog.view_names().is_empty());
}
