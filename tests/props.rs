//! Cross-crate property tests: the mediator's optimizer choices never
//! change answers over randomly generated databases, and pattern
//! matching agrees between pushed fragments and central matching.

use nimble::core::{Catalog, Engine, OptimizerConfig};
use nimble::sources::relational::RelationalAdapter;
use nimble::xml::to_string;
use proptest::prelude::*;
use std::sync::Arc;

fn build_catalog(
    customers: &[(i64, String, String)],
    orders: &[(i64, i64, i64)],
) -> Arc<Catalog> {
    let mut stmts = vec![
        "CREATE TABLE customers (id INT, name TEXT, region TEXT)".to_string(),
        "CREATE TABLE orders (oid INT, cust_id INT, total INT)".to_string(),
    ];
    for (id, name, region) in customers {
        stmts.push(format!(
            "INSERT INTO customers VALUES ({}, '{}', '{}')",
            id, name, region
        ));
    }
    for (oid, cust, total) in orders {
        stmts.push(format!(
            "INSERT INTO orders VALUES ({}, {}, {})",
            oid, cust, total
        ));
    }
    let catalog = Catalog::new();
    catalog
        .register_source(Arc::new(
            RelationalAdapter::from_statements(
                "erp",
                &stmts.iter().map(String::as_str).collect::<Vec<_>>(),
            )
            .unwrap(),
        ))
        .unwrap();
    Arc::new(catalog)
}

fn customers_strategy() -> impl Strategy<Value = Vec<(i64, String, String)>> {
    proptest::collection::vec(
        (0i64..20, "[a-d]{1,4}", prop_oneof![Just("NW"), Just("SW")]),
        0..15,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (_, name, region))| (i as i64, name, region.to_string()))
            .collect()
    })
}

fn orders_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0i64..100, 0i64..15, 0i64..100), 0..20).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (_, cust, total))| (i as i64, cust, total))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The four optimizer configurations agree on every generated
    /// database and threshold — pushdown, join merging, and join
    /// ordering are pure performance choices.
    #[test]
    fn optimizer_is_semantics_preserving(
        customers in customers_strategy(),
        orders in orders_strategy(),
        threshold in 0i64..100,
    ) {
        let query = format!(
            r#"WHERE <row><id>$i</id><name>$n</name><region>"NW"</region></row> IN "customers",
                     <row><cust_id>$i</cust_id><total>$t</total></row> IN "orders",
                     $t > {}
               CONSTRUCT <hit><n>$n</n><t>$t</t></hit> ORDER-BY $t, $n"#,
            threshold
        );
        let configs = [
            OptimizerConfig { pushdown: true, capability_joins: true, order_joins_by_cardinality: true, ..OptimizerConfig::default() },
            OptimizerConfig { pushdown: true, capability_joins: false, order_joins_by_cardinality: false, ..OptimizerConfig::default() },
            OptimizerConfig { pushdown: false, capability_joins: false, order_joins_by_cardinality: true, ..OptimizerConfig::default() },
            OptimizerConfig { pushdown: false, capability_joins: false, order_joins_by_cardinality: false, ..OptimizerConfig::default() },
        ];
        let mut outputs: Vec<String> = Vec::new();
        for config in configs {
            let engine = Engine::new(build_catalog(&customers, &orders));
            engine.set_optimizer(config);
            let r = engine.query(&query).unwrap();
            prop_assert!(r.complete);
            outputs.push(to_string(&r.document.root()));
        }
        for o in &outputs[1..] {
            prop_assert_eq!(o, &outputs[0]);
        }
    }

    /// The engine's answer matches a direct reference join computed in
    /// Rust.
    #[test]
    fn engine_matches_reference_join(
        customers in customers_strategy(),
        orders in orders_strategy(),
        threshold in 0i64..100,
    ) {
        let query = format!(
            r#"WHERE <row><id>$i</id><name>$n</name></row> IN "customers",
                     <row><cust_id>$i</cust_id><total>$t</total></row> IN "orders",
                     $t > {}
               CONSTRUCT <hit><n>$n</n><t>$t</t></hit>"#,
            threshold
        );
        let engine = Engine::new(build_catalog(&customers, &orders));
        let r = engine.query(&query).unwrap();
        let mut got: Vec<(String, i64)> = r
            .document
            .root()
            .children_named("hit")
            .map(|h| {
                (
                    h.child("n").unwrap().text(),
                    h.child("t").unwrap().text().parse().unwrap(),
                )
            })
            .collect();
        got.sort();
        let mut expected: Vec<(String, i64)> = Vec::new();
        for (id, name, _) in &customers {
            for (_, cust, total) in &orders {
                if cust == id && *total > threshold {
                    expected.push((name.clone(), *total));
                }
            }
        }
        expected.sort();
        prop_assert_eq!(got, expected);
    }
}
