//! Warehousing vs. virtual integration (§3.3): materialized views over
//! the mediated schema, freshness, refresh, and view selection.

use nimble::core::{Catalog, Engine};
use nimble::sources::relational::RelationalAdapter;
use nimble::store::{select_views, SelectionPolicy};
use nimble::xml::to_string;
use std::sync::Arc;

fn setup() -> (Engine, Arc<RelationalAdapter>) {
    let adapter = Arc::new(
        RelationalAdapter::from_statements(
            "sales",
            &[
                "CREATE TABLE orders (id INT, item TEXT, total FLOAT)",
                "INSERT INTO orders VALUES (1, 'widget', 10.0), (2, 'gadget', 20.0)",
            ],
        )
        .unwrap(),
    );
    let catalog = Catalog::new();
    catalog.register_source(Arc::clone(&adapter) as _).unwrap();
    catalog
        .define_view(
            "big_orders",
            r#"WHERE <row><item>$i</item><total>$t</total></row> IN "orders", $t >= 10
               CONSTRUCT <o><item>$i</item><total>$t</total></o> ORDER-BY $t"#,
            Some(100),
        )
        .unwrap();
    (Engine::new(Arc::new(catalog)), adapter)
}

const VIEW_QUERY: &str =
    r#"WHERE <o><item>$i</item></o> IN "big_orders" CONSTRUCT <hit>$i</hit>"#;

#[test]
fn virtual_and_materialized_answers_agree() {
    let (engine, _) = setup();
    let virtual_answer = engine.query(VIEW_QUERY).unwrap();
    assert!(virtual_answer.stats.source_calls > 0);

    engine.materialize_view("big_orders", None).unwrap();
    let materialized_answer = engine.query(VIEW_QUERY).unwrap();
    assert_eq!(materialized_answer.stats.source_calls, 0);
    assert!(materialized_answer
        .document
        .root()
        .deep_eq(&virtual_answer.document.root()));
}

#[test]
fn materialization_is_a_snapshot_until_refresh() {
    let (engine, adapter) = setup();
    engine.materialize_view("big_orders", Some(50)).unwrap();

    // New data arrives at the autonomous source.
    adapter
        .database()
        .write()
        .execute("INSERT INTO orders VALUES (3, 'gizmo', 30.0)")
        .unwrap();

    // Fresh materialization still answers with the snapshot (the
    // warehousing trade-off: performance vs. freshness).
    let r = engine.query(VIEW_QUERY).unwrap();
    assert_eq!(r.document.root().children().count(), 2);

    // After TTL lapse, virtual evaluation sees the new row…
    engine.clock().advance(51);
    let r = engine.query(VIEW_QUERY).unwrap();
    assert_eq!(r.document.root().children().count(), 3);

    // …and refresh re-materializes the current state.
    let refreshed = engine.refresh_stale_views();
    assert_eq!(refreshed, vec!["big_orders"]);
    let r = engine.query(VIEW_QUERY).unwrap();
    assert_eq!(r.stats.source_calls, 0);
    assert_eq!(r.document.root().children().count(), 3);
}

#[test]
fn workload_monitor_drives_greedy_selection() {
    let (engine, _) = setup();
    engine
        .catalog()
        .define_view(
            "small_orders",
            r#"WHERE <row><item>$i</item><total>$t</total></row> IN "orders", $t < 10
               CONSTRUCT <o>$i</o>"#,
            None,
        )
        .unwrap();

    // Skewed load: big_orders is hot.
    for _ in 0..10 {
        engine.query(VIEW_QUERY).unwrap();
    }
    engine
        .query(r#"WHERE <o>$i</o> IN "small_orders" CONSTRUCT <x>$i</x>"#)
        .unwrap();

    let candidates = engine.monitor().candidates();
    let big = candidates.iter().find(|c| c.name == "big_orders").unwrap();
    let small = candidates.iter().find(|c| c.name == "small_orders").unwrap();
    assert!(big.frequency > small.frequency);

    // Greedy selection under a budget picks the hot view first.
    let picked = select_views(SelectionPolicy::Greedy, &candidates, big.size_nodes);
    assert_eq!(picked.first().map(String::as_str), Some("big_orders"));

    // Acting on the selection turns the hot view local.
    for name in &picked {
        if engine.catalog().view(name).is_some() {
            engine.materialize_view(name, Some(1000)).unwrap();
        }
    }
    let r = engine.query(VIEW_QUERY).unwrap();
    assert_eq!(r.stats.source_calls, 0);
}

#[test]
fn query_results_render_stably() {
    let (engine, _) = setup();
    let r = engine
        .query(
            r#"WHERE <o><item>$i</item><total>$t</total></o> IN "big_orders"
               CONSTRUCT <line><item>$i</item><amt>$t</amt></line>"#,
        )
        .unwrap();
    assert_eq!(
        to_string(&r.document.root()),
        "<results>\
         <line><item>widget</item><amt>10.0</amt></line>\
         <line><item>gadget</item><amt>20.0</amt></line>\
         </results>"
    );
}
