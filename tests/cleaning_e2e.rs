//! Dynamic data cleaning end to end (§3.2): dirty multi-source data →
//! declarative flow → two-phase matching with a concordance database →
//! measurable quality; plus cleaning functions used *inside* queries.

use nimble::cleaning::synth::{generate, SynthConfig};
use nimble::cleaning::{
    CleaningFlow, CleaningPipeline, CompositeMatcher, ConcordanceDb, Decision, FlowStep,
    LineageLog,
};
use nimble::cleaning::matching::{JaroWinkler, QGramJaccard};
use nimble::cleaning::normalize::{NameStandardizer, Normalizer};
use nimble::core::{Catalog, Engine};
use nimble::sources::csv::CsvAdapter;
use nimble::xml::to_string;
use std::sync::Arc;

fn matcher() -> CompositeMatcher {
    CompositeMatcher::new(0.90, 0.78)
        .field("name", Box::new(JaroWinkler), 0.6)
        .field("address", Box::new(QGramJaccard::default()), 0.4)
}

fn standardize_flow() -> CleaningFlow {
    CleaningFlow::new("standardize")
        .step(FlowStep::Normalize {
            field: "name".into(),
            normalizer: "name".into(),
        })
        .step(FlowStep::Normalize {
            field: "address".into(),
            normalizer: "abbrev".into(),
        })
        .step(FlowStep::Normalize {
            field: "address".into(),
            normalizer: "basic".into(),
        })
}

#[test]
fn normalization_improves_matching_quality() {
    let data = generate(&SynthConfig {
        entities: 120,
        duplicate_rate: 0.6,
        seed: 42,
        ..SynthConfig::default()
    });

    // Without cleaning: match raw records.
    let pipeline = CleaningPipeline::new(matcher(), "name", 8);
    let mut db = ConcordanceDb::new();
    let mut log = LineageLog::new();
    let raw = pipeline.extract(&data.records, &mut db, &mut log);
    let raw_eval = data.evaluate(&raw.clusters);

    // With the declarative flow applied first.
    let mut cleaned = data.records.clone();
    standardize_flow().apply(&mut cleaned, &mut log).unwrap();
    let mut db2 = ConcordanceDb::new();
    let clean = pipeline.extract(&cleaned, &mut db2, &mut log);
    // Truth is keyed by record id, which cleaning preserves.
    let clean_eval = data.evaluate(&clean.clusters);

    assert!(
        clean_eval.f1 > raw_eval.f1,
        "cleaning should improve F1: raw {:.3} vs clean {:.3}",
        raw_eval.f1,
        clean_eval.f1
    );
    assert!(clean_eval.recall > raw_eval.recall);
    // And the cleaned run reaches respectable quality on this corpus.
    assert!(clean_eval.f1 > 0.7, "clean F1 {:.3}", clean_eval.f1);
}

#[test]
fn concordance_amortizes_human_work_across_runs() {
    let data = generate(&SynthConfig {
        entities: 80,
        duplicate_rate: 0.7,
        seed: 7,
        ..SynthConfig::default()
    });
    let mut records = data.records.clone();
    let mut log = LineageLog::new();
    standardize_flow().apply(&mut records, &mut log).unwrap();

    let pipeline = CleaningPipeline::new(matcher(), "name", 8);
    let mut db = ConcordanceDb::new();

    // Mining run: uncertain pairs go to a "human" (the oracle = ground
    // truth).
    let mining = pipeline.mine(&records, &mut db, &mut log);
    let human_work_first = mining.pending.len();
    let answers: Vec<_> = mining
        .pending
        .iter()
        .map(|p| {
            let same = data.truth[&p.left] == data.truth[&p.right];
            (
                p.clone(),
                if same {
                    Decision::SameObject
                } else {
                    Decision::DifferentObjects
                },
            )
        })
        .collect();
    CleaningPipeline::apply_human_decisions(&mut db, &mut log, &answers, "oracle");

    // Extraction re-run: zero new human work, decisions replayed.
    let extraction = pipeline.extract(&records, &mut db, &mut log);
    assert_eq!(extraction.pending.len(), 0);
    assert!(extraction.reused_decisions > 0);
    assert!(human_work_first > 0);

    // Quality after human input beats the automatic-only run.
    let eval = data.evaluate(&extraction.clusters);
    let mut db_auto = ConcordanceDb::new();
    let auto = pipeline.extract(&records, &mut db_auto, &mut log);
    let auto_eval = data.evaluate(&auto.clusters);
    assert!(eval.f1 >= auto_eval.f1);
}

#[test]
fn lineage_rollback_undoes_decisions() {
    let mut db = ConcordanceDb::new();
    let mut log = LineageLog::new();
    db.record_human("a:1", "b:1", Decision::SameObject, "denise");
    let checkpoint = log.record(
        nimble::cleaning::LineageOp::Merge {
            left: "a:1".into(),
            right: "b:1".into(),
        },
        "denise",
    );
    db.record_human("a:2", "b:2", Decision::SameObject, "denise");
    log.record(
        nimble::cleaning::LineageOp::Merge {
            left: "a:2".into(),
            right: "b:2".into(),
        },
        "denise",
    );
    // Roll back past the second decision and reverse its effects.
    for entry in log.rollback_to(checkpoint) {
        if let nimble::cleaning::LineageOp::Merge { left, right } = &entry.op {
            assert!(db.retract(left, right));
        }
    }
    assert_eq!(db.peek("a:2", "b:2"), None);
    assert_eq!(db.peek("a:1", "b:1"), Some(Decision::SameObject));
}

#[test]
fn cleaning_functions_work_inside_queries() {
    // "Virtually-clean data": the engine joins two sources whose name
    // fields disagree in form, through a registered normalization
    // function — cleaning at query time, with sources unchanged.
    let catalog = Catalog::new();
    catalog
        .register_source(Arc::new(
            CsvAdapter::new("hr")
                .add_csv("people", "pname,dept\n\"Lovelace, Ada\",R&D\n\"Hopper, Grace\",Navy\n")
                .unwrap(),
        ))
        .unwrap();
    catalog
        .register_source(Arc::new(
            CsvAdapter::new("payroll")
                .add_csv("salaries", "pname,amount\nDr. Ada Lovelace,1000\nGrace Hopper,1200\n")
                .unwrap(),
        ))
        .unwrap();
    let engine = Engine::new(Arc::new(catalog));
    engine.register_function("std_name", |args| {
        Ok(nimble::xml::Value::from(
            NameStandardizer
                .normalize(&args[0].atomize().lexical())
                .as_str(),
        ))
    });
    let r = engine
        .query(
            r#"WHERE <row><pname>$a</pname><dept>$d</dept></row> IN "people",
                     <row><pname>$b</pname><amount>$amt</amount></row> IN "salaries",
                     std_name($a) = std_name($b)
               CONSTRUCT <pay><who>$d</who><amount>$amt</amount></pay>
               ORDER-BY $amt"#,
        )
        .unwrap();
    assert_eq!(
        to_string(&r.document.root()),
        "<results>\
         <pay><who>R&amp;D</who><amount>1000</amount></pay>\
         <pay><who>Navy</who><amount>1200</amount></pay>\
         </results>"
    );
}
