//! Admin console: the management tools and the data administrator
//! sub-system — "configuration and management tools that make it
//! possible for administrators to set up, monitor, and understand, the
//! system", plus the "compound architecture that includes offline data
//! manipulation and replication".
//!
//! ```text
//! cargo run --example admin_console
//! ```

use nimble::cleaning::{CleaningFlow, FlowStep};
use nimble::core::{Catalog, Engine};
use nimble::frontend::{DataAdministrator, ManagementConsole};
use nimble::sources::csv::CsvAdapter;
use nimble::sources::hierarchical::{HierarchicalAdapter, Segment};
use nimble::sources::relational::RelationalAdapter;
use nimble::xml::{to_string_pretty, Atomic};
use std::sync::Arc;

fn main() {
    // ── set up: three kinds of sources, one view ──
    let catalog = Catalog::new();
    catalog
        .register_source(Arc::new(
            RelationalAdapter::from_statements(
                "erp",
                &[
                    "CREATE TABLE vendors (vid INT, vname TEXT)",
                    "CREATE INDEX ON vendors (vid) USING HASH",
                    "INSERT INTO vendors VALUES (1, 'ACME, Inc.'), (2, 'Globex Corp')",
                ],
            )
            .expect("erp bootstraps"),
        ))
        .unwrap();
    catalog
        .register_source(Arc::new(HierarchicalAdapter::new(
            "mainframe",
            vec![Segment::new(
                "account",
                vec![("vid", Atomic::Int(1)), ("balance", Atomic::Int(990))],
            )],
        )))
        .unwrap();
    catalog
        .register_source(Arc::new(
            CsvAdapter::new("files")
                .add_csv(
                    "contacts",
                    "vendor,contact\n\"ACME, Inc.\",\"Dr. Jane Doe\"\nGlobex Corp,\"SMITH, John\"\n",
                )
                .expect("csv parses"),
        ))
        .unwrap();
    catalog
        .define_view(
            "vendor_contacts",
            r#"WHERE <row><vname>$v</vname></row> IN "vendors",
                     <row><vendor>$v</vendor><contact>$c</contact></row> IN "contacts"
               CONSTRUCT <vc><vendor>$v</vendor><contact>$c</contact></vc>"#,
            Some(1000),
        )
        .unwrap();
    let engine = Arc::new(Engine::new(Arc::new(catalog)));

    // ── the management console inventory ──
    let console = ManagementConsole::new(Arc::clone(&engine));
    println!("{}", console.render());

    // ── data administrator: clean a replica offline ──
    let admin = DataAdministrator::new(Arc::clone(&engine));
    let flow = CleaningFlow::new("standardize_contacts")
        .step(FlowStep::Normalize {
            field: "contact".into(),
            normalizer: "name".into(),
        })
        .step(FlowStep::Normalize {
            field: "vendor".into(),
            normalizer: "basic".into(),
        });
    let n = admin
        .materialize_cleaned("vendor_contacts", &flow, "vendor_contacts_clean", Some(1000))
        .expect("replica builds");
    println!(
        "cleaned replica 'vendor_contacts_clean' built from {} records\n",
        n
    );

    // ── querying the cleaned replica (served locally) ──
    let r = engine
        .query(
            r#"WHERE <vc><vendor>$v</vendor><contact>$c</contact></vc> IN "vendor_contacts_clean"
               CONSTRUCT <row><v>$v</v><c>$c</c></row> ORDER-BY $v"#,
        )
        .expect("query runs");
    println!(
        "cleaned replica (source calls: {}):\n{}\n",
        r.stats.source_calls,
        to_string_pretty(&r.document.root())
    );

    // The inventory now shows the replica materialized.
    println!("{}", console.render());
    println!(
        "registered replicas: {:?}\nlineage entries from offline manipulation: {}",
        admin.replicas(),
        admin.lineage_len()
    );
}
