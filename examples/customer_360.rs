//! Customer 360: the paper's flagship scenario — "information about the
//! customers of a company is scattered across multiple databases in the
//! organization, and the company would like to learn more about its
//! customers (by integrating all the data into one view) and to ensure
//! that the data about customers is consistent across the databases."
//!
//! This example generates dirty customer data across three synthetic
//! departmental databases, runs the two-phase cleaning pipeline with a
//! concordance database, and reports the match quality before/after
//! cleaning and with/without the replayed human decisions.
//!
//! ```text
//! cargo run --example customer_360
//! ```

use nimble::cleaning::matching::{JaroWinkler, QGramJaccard};
use nimble::cleaning::synth::{generate, SynthConfig};
use nimble::cleaning::{
    CleaningFlow, CleaningPipeline, CompositeMatcher, ConcordanceDb, Decision, FlowStep,
    LineageLog,
};

fn matcher() -> CompositeMatcher {
    CompositeMatcher::new(0.90, 0.78)
        .field("name", Box::new(JaroWinkler), 0.6)
        .field("address", Box::new(QGramJaccard::default()), 0.4)
}

fn main() {
    // Scattered, dirty customer data across CRM / billing / support.
    let data = generate(&SynthConfig {
        entities: 500,
        duplicate_rate: 0.5,
        seed: 2001,
        ..SynthConfig::default()
    });
    println!(
        "generated {} records for {} entities across 3 departmental databases",
        data.records.len(),
        500
    );

    let pipeline = CleaningPipeline::new(matcher(), "name", 10);
    let mut log = LineageLog::new();

    // Arm 1: match the raw data.
    let mut db_raw = ConcordanceDb::new();
    let raw = pipeline.extract(&data.records, &mut db_raw, &mut log);
    let raw_eval = data.evaluate(&raw.clusters);

    // Arm 2: standardize first with a declarative flow.
    let flow = CleaningFlow::new("standardize_customers")
        .step(FlowStep::Normalize {
            field: "name".into(),
            normalizer: "name".into(),
        })
        .step(FlowStep::Normalize {
            field: "address".into(),
            normalizer: "abbrev".into(),
        })
        .step(FlowStep::Normalize {
            field: "address".into(),
            normalizer: "basic".into(),
        });
    println!("\ndeclarative flow:\n{}", flow.to_json());
    let mut cleaned = data.records.clone();
    flow.apply(&mut cleaned, &mut log).expect("flow applies");

    let mut db = ConcordanceDb::new();
    let mining = pipeline.mine(&cleaned, &mut db, &mut log);
    let clean_eval = data.evaluate(&mining.clusters);

    // Arm 3: a (simulated) human answers the uncertain pairs; the
    // concordance database replays them in the autonomous extraction.
    let answers: Vec<_> = mining
        .pending
        .iter()
        .map(|p| {
            let same = data.truth[&p.left] == data.truth[&p.right];
            (
                p.clone(),
                if same {
                    Decision::SameObject
                } else {
                    Decision::DifferentObjects
                },
            )
        })
        .collect();
    CleaningPipeline::apply_human_decisions(&mut db, &mut log, &answers, "analyst");
    let extraction = pipeline.extract(&cleaned, &mut db, &mut log);
    let final_eval = data.evaluate(&extraction.clusters);

    println!("\narm                         precision  recall     F1");
    for (label, e) in [
        ("raw data, automatic", raw_eval),
        ("cleaned, automatic", clean_eval),
        ("cleaned + concordance", final_eval),
    ] {
        println!(
            "{:<28}{:>8.3}{:>8.3}{:>8.3}",
            label, e.precision, e.recall, e.f1
        );
    }
    println!(
        "\nhuman decisions recorded: {}   reused on re-run: {}   exceptions left: {}",
        db.human_decisions(),
        extraction.reused_decisions,
        extraction.pending.len()
    );
    println!("lineage entries: {}", log.len());
}
