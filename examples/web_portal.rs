//! Web portal: the paper's second application class — "companies who
//! need to build large-scale web sites which serve information from
//! multiple internal sources", with the site builders working against
//! "an already integrated view of their data sources".
//!
//! Shows lenses (params, auth, device formatting), materialized views
//! over the mediated schema with TTL refresh, and graceful degradation
//! when a source goes offline.
//!
//! ```text
//! cargo run --example web_portal
//! ```

use nimble::core::{Catalog, Engine, UnavailablePolicy};
use nimble::frontend::{Device, Directory, Lens, LensRegistry, ParamDef, SystemMonitor, Template};
use nimble::sources::relational::RelationalAdapter;
use nimble::sources::sim::{LinkConfig, SimulatedLink};
use nimble::sources::xmldoc::XmlDocAdapter;
use nimble::sources::SourceAdapter;
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    // ── sources: a product catalog DB and a press-release feed ──
    let products = Arc::new(
        RelationalAdapter::from_statements(
            "products_db",
            &[
                "CREATE TABLE products (sku INT, name TEXT, price FLOAT, category TEXT)",
                "INSERT INTO products VALUES \
                 (1, 'widget', 9.99, 'tools'), (2, 'gadget', 129.0, 'tools'), \
                 (3, 'gizmo', 45.0, 'toys'), (4, 'doohickey', 3.5, 'toys')",
            ],
        )
        .expect("products bootstrap"),
    );
    let press = SimulatedLink::new(
        Arc::new(
            XmlDocAdapter::new("press")
                .add_xml(
                    "news",
                    "<news>\
                     <item cat='tools'><h>New widget v2 announced</h></item>\
                     <item cat='toys'><h>Gizmo wins award</h></item>\
                     </news>",
                )
                .expect("news parses"),
        ) as Arc<dyn SourceAdapter>,
        LinkConfig::default(),
    );

    let catalog = Catalog::new();
    catalog.register_source(products).unwrap();
    catalog.register_source(press.clone() as _).unwrap();

    // ── the integrated view the site is built against ──
    catalog
        .define_view(
            "category_page",
            r#"WHERE <row><name>$n</name><price>$p</price><category>$c</category></row>
                     IN "products",
                     <news><item cat=$c><h>$h</h></item></news> IN "news"
               CONSTRUCT <entry><cat>$c</cat><product>$n</product><price>$p</price>
                         <headline>$h</headline></entry>"#,
            Some(100),
        )
        .unwrap();

    let engine = Arc::new(Engine::new(Arc::new(catalog)));
    engine.set_unavailable_policy(UnavailablePolicy::StaleCache);

    // IT managers "do not want to take on a warehousing effort":
    // materialize immediately, optimize over time.
    engine.materialize_view("category_page", Some(100)).unwrap();

    // ── lenses for two device targets ──
    let directory = Arc::new(Directory::new());
    directory.add_user("webserver", "svc", &["site"]);
    let monitor = Arc::new(SystemMonitor::new());
    let lenses = LensRegistry::new(Arc::clone(&engine), directory, Arc::clone(&monitor));
    lenses.register(Lens {
        name: "category_html".into(),
        query: r#"WHERE <entry><cat>:cat</cat><product>$n</product><price>$p</price>
                        <headline>$h</headline></entry> IN "category_page"
                  CONSTRUCT <row><p>$n</p><pr>$p</pr><h>$h</h></row> ORDER-BY $p"#
            .into(),
        params: vec![ParamDef {
            name: "cat".into(),
            default: Some("tools".into()),
        }],
        template: Template::parse(
            "<h1>Products</h1>\n<ul>\n{{#each row}}<li>{{p}} — ${{pr}} <i>{{h}}</i></li>\n{{/each}}</ul>",
        )
        .unwrap(),
        device: Device::WebBrowser,
        required_role: Some("site".into()),
    });
    lenses.register(Lens {
        name: "category_wap".into(),
        query: r#"WHERE <entry><cat>:cat</cat><product>$n</product><price>$p</price></entry>
                        IN "category_page"
                  CONSTRUCT <row><p>$n</p><pr>$p</pr></row> ORDER-BY $p"#
            .into(),
        params: vec![ParamDef {
            name: "cat".into(),
            default: Some("tools".into()),
        }],
        template: Template::parse("{{#each row}}{{p}} ${{pr}}; {{/each}}").unwrap(),
        device: Device::Wireless { max_chars: 60 },
        required_role: Some("site".into()),
    });

    // ── serve pages ──
    let mut params = BTreeMap::new();
    params.insert("cat".to_string(), "toys".to_string());
    let html = lenses
        .run("category_html", "webserver", "svc", &params)
        .expect("html page");
    println!("== web page (toys) ==\n{}\n", html.body);

    let wap = lenses
        .run("category_wap", "webserver", "svc", &BTreeMap::new())
        .expect("wap deck");
    println!("== wireless deck (tools) ==\n{}\n", wap.body);

    // ── the press feed goes down; the portal keeps serving ──
    press.set_up(false);
    engine.clock().advance(200); // materialization is stale too
    let degraded = lenses
        .run("category_html", "webserver", "svc", &params)
        .expect("degraded page");
    println!(
        "== press feed offline: page still renders (stale={}, complete={}) ==\n{}\n",
        degraded.result.stale, degraded.result.complete, degraded.body
    );

    println!("== admin monitor ==\n{}", monitor.render_table());
}
