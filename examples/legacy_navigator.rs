//! Legacy navigator: integrating an IMS-style hierarchical store with a
//! modern RDBMS, showing the XML features the paper names as
//! requirements — document order, navigation up/down/sideways, and
//! recursion over a recursive bill-of-materials — plus EXPLAIN output
//! from the capability-aware optimizer.
//!
//! ```text
//! cargo run --example legacy_navigator
//! ```

use nimble::core::{Catalog, Engine};
use nimble::sources::hierarchical::{HierarchicalAdapter, Segment};
use nimble::sources::relational::RelationalAdapter;
use nimble::xml::{to_string_pretty, Atomic};
use std::sync::Arc;

fn bom() -> HierarchicalAdapter {
    // assembly → subassembly → part, recursively through `part`.
    HierarchicalAdapter::new(
        "legacy_bom",
        vec![Segment::new(
            "part",
            vec![("pid", Atomic::Int(1)), ("label", "chassis".into())],
        )
        .with_children(vec![
            Segment::new(
                "part",
                vec![("pid", Atomic::Int(2)), ("label", "frame".into())],
            )
            .with_children(vec![Segment::new(
                "part",
                vec![("pid", Atomic::Int(3)), ("label", "bolt".into())],
            )]),
            Segment::new(
                "part",
                vec![("pid", Atomic::Int(4)), ("label", "panel".into())],
            ),
        ])],
    )
}

fn main() {
    let catalog = Catalog::new();
    catalog.register_source(Arc::new(bom())).unwrap();
    catalog
        .register_source(Arc::new(
            RelationalAdapter::from_statements(
                "purchasing",
                &[
                    "CREATE TABLE suppliers (pid INT, vendor TEXT, unit_cost FLOAT)",
                    "CREATE INDEX ON suppliers (pid) USING HASH",
                    "INSERT INTO suppliers VALUES \
                     (2, 'FrameCo', 120.0), (3, 'BoltWorld', 0.1), (4, 'PanelCorp', 60.0)",
                ],
            )
            .expect("purchasing bootstraps"),
        ))
        .unwrap();
    let engine = Engine::new(Arc::new(catalog));

    // Recursion (`part+`) over the legacy tree joined against SQL data.
    let query = r#"
        WHERE <part+><pid>$p</pid><label>$l</label></> IN "legacy_bom._tree",
              <row><pid>$p</pid><vendor>$v</vendor><unit_cost>$c</unit_cost></row>
                    IN "suppliers"
        CONSTRUCT <sourcing><part>$l</part><vendor>$v</vendor><cost>$c</cost></sourcing>
        ORDER-BY $c DESC
    "#;
    let result = engine.query(query).expect("query runs");
    println!("--- sourcing report (recursive BOM ⋈ SQL) ---");
    println!("{}\n", to_string_pretty(&result.document.root()));

    // The optimizer's work placement, visible through EXPLAIN: the
    // hierarchical source takes selections only, the RDBMS takes SQL.
    println!("--- EXPLAIN ---\n{}", result.stats.plan);

    // Navigation: bind a subtree, then navigate inside it.
    let nav = engine
        .query(
            r#"WHERE <part><pid>1</pid></part> ELEMENT_AS $chassis IN "legacy_bom._tree",
                     <part><label>$sub</label></part> IN $chassis
               CONSTRUCT <direct_child>$sub</direct_child>"#,
        )
        .expect("navigation runs");
    println!(
        "--- direct children of the chassis (navigation within a bound element) ---\n{}",
        to_string_pretty(&nav.document.root())
    );
}
