//! Quickstart: register two heterogeneous sources, pose one XML-QL
//! query across them, and print the integrated XML.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nimble::core::{Catalog, Engine};
use nimble::sources::csv::CsvAdapter;
use nimble::sources::relational::RelationalAdapter;
use nimble::xml::to_string_pretty;
use std::sync::Arc;

fn main() {
    // 1. The metadata server: register an RDBMS and a flat file.
    let catalog = Catalog::new();
    catalog
        .register_source(Arc::new(
            RelationalAdapter::from_statements(
                "crm",
                &[
                    "CREATE TABLE customers (id INT, name TEXT, region TEXT)",
                    "INSERT INTO customers VALUES \
                     (1, 'Acme', 'NW'), (2, 'Globex', 'SW'), (3, 'Initech', 'NW')",
                ],
            )
            .expect("CRM bootstraps"),
        ))
        .expect("register crm");
    catalog
        .register_source(Arc::new(
            CsvAdapter::new("spreadsheets")
                .add_csv(
                    "renewals",
                    "customer,renewal_date,amount\n\
                     Acme,2001-09-01,1200\n\
                     Initech,2001-11-15,800\n\
                     Umbrella,2001-12-01,50\n",
                )
                .expect("CSV parses"),
        ))
        .expect("register spreadsheets");

    // 2. One integration engine over the catalog.
    let engine = Engine::new(Arc::new(catalog));

    // 3. An XML-QL query joining the two sources on customer name.
    let query = r#"
        WHERE <row><name>$n</name><region>$r</region></row> IN "customers",
              <row><customer>$n</customer><amount>$amt</amount></row> IN "renewals",
              $amt >= 500
        CONSTRUCT <renewal ID=ByRegion($r)>
                      <region>$r</region>
                      <customer><name>$n</name><amount>$amt</amount></customer>
                  </renewal>
        ORDER-BY $amt DESC
    "#;

    let result = engine.query(query).expect("query runs");
    println!("complete: {}", result.complete);
    println!(
        "sources contacted: {} (fragments pushed: {})",
        result.stats.source_calls, result.stats.fragments_pushed
    );
    println!("--- plan ---\n{}", result.stats.plan);
    println!("--- result ---\n{}", to_string_pretty(&result.document.root()));
}
