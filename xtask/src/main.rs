//! Workspace maintenance tasks, invoked as `cargo xtask <command>`.
//!
//! `lint` — three checks over non-test code, all compared against the
//! checked-in `lint-baseline.toml`:
//!
//! 1. **Panic paths** (`.unwrap()`, `.expect()`, `panic!`,
//!    `debug_assert!`): inventoried and failed when any category grows
//!    past the baseline (a ratchet — shrink it as panic paths are
//!    removed with `--update-baseline`, never grow it without review).
//! 2. **Metric-name drift** (`metric_drift`, baseline 0): every
//!    `engine.*` / `stats.*` / `plan_cache.*` string literal recorded
//!    by non-test code must appear in the metric inventory table of
//!    `crates/trace/README.md`, and every table row must be recorded
//!    somewhere — so the README can be trusted as the one list of
//!    names dashboards and alert rules may reference. Dynamic names
//!    (`engine.phase_us.{}` or a concatenation stem ending in `.`)
//!    normalize to a `.*`-starred family.
//! 3. **Lock across adapter call** (`lock_across_call`, baseline 0):
//!    a guard bound by a `let` from `.lock()` / `.borrow_mut()` must
//!    not still be in scope at an `.execute(` / `.fetch_collection(`
//!    adapter call — sources can be slow or reentrant (a mediated view
//!    queried during evaluation), and holding an engine lock across
//!    them is a deadlock/latency hazard.
//!
//! The scanner is a plain text analysis (no syn, no dependencies):
//! comments, string literals, and `#[cfg(test)]` regions are stripped
//! before counting, files under `tests/`, `benches/`, `examples/`, or
//! `tools/` (verification scaffolding) and `*tests.rs` module files
//! are skipped entirely.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

const CATEGORIES: [&str; 4] = ["unwrap", "expect", "panic", "debug_assert"];
/// Violation-style lints: the baseline entry is pinned at zero; any
/// occurrence is a regression to fix, not to ratchet.
const VIOLATION_CATEGORIES: [&str; 2] = ["metric_drift", "lock_across_call"];
const BASELINE_FILE: &str = "lint-baseline.toml";
const METRIC_PREFIXES: [&str; 5] = ["engine.", "stats.", "plan_cache.", "plan.", "source."];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--update-baseline")),
        Some("bench-check") => bench_check(),
        _ => {
            eprintln!("usage: cargo xtask <lint [--update-baseline] | bench-check>");
            ExitCode::FAILURE
        }
    }
}

/// Benchmark artifacts the regression sentinel gates (basenames at the
/// repo root, committed per PR).
const BENCH_ARTIFACTS: [&str; 5] = [
    "BENCH_vectorized.json",
    "BENCH_memlayout.json",
    "BENCH_observability.json",
    "BENCH_provenance.json",
    "BENCH_shard.json",
];

/// The bench binaries that regenerate those artifacts, in order.
const BENCH_BINS: [&str; 5] = [
    "exp_vectorized",
    "exp_memlayout",
    "exp_observability",
    "exp_provenance",
    "exp_shard",
];

/// Build a command for a workspace binary: the offline harness output
/// (`target/manual/tests/<bin>`) when present — registry-less
/// containers cannot `cargo run` — else `cargo run --release`.
fn tool_command(root: &Path, bin: &str) -> Command {
    let manual = root.join("target/manual/tests").join(bin);
    if manual.exists() {
        let mut c = Command::new(manual);
        c.current_dir(root);
        c
    } else {
        let mut c = Command::new("cargo");
        c.args(["run", "--release", "--quiet", "--bin", bin, "--"]);
        c.current_dir(root);
        c
    }
}

/// `cargo xtask bench-check`: the perf regression sentinel.
///
/// 1. Collect the baseline artifacts from `git HEAD` (CI smoke steps
///    overwrite the working-tree copies, so the committed content is
///    the trustworthy baseline; the working tree is the fallback).
/// 2. Re-run the bench binaries in quick mode with
///    `NIMBLE_BENCH_OUT_DIR` pointing at a scratch directory, so the
///    fresh artifacts never clobber the checked-in ones.
/// 3. Gate fresh against baseline with `bench_check` (scale-invariant
///    ratio gates — see `nimble_bench::baseline` for the noise floors).
fn bench_check() -> ExitCode {
    let root = workspace_root();
    let base_dir = root.join("target/bench-check/baseline");
    let fresh_dir = root.join("target/bench-check/fresh");
    for d in [&base_dir, &fresh_dir] {
        if let Err(e) = fs::create_dir_all(d) {
            eprintln!("bench-check: cannot create {}: {}", d.display(), e);
            return ExitCode::FAILURE;
        }
    }

    for name in BENCH_ARTIFACTS {
        let shown = Command::new("git")
            .args(["show", &format!("HEAD:{}", name)])
            .current_dir(&root)
            .output();
        let bytes = match shown {
            Ok(o) if o.status.success() => o.stdout,
            _ => match fs::read(root.join(name)) {
                Ok(b) => {
                    println!("bench-check: using working-tree {} as baseline (git show failed)", name);
                    b
                }
                Err(e) => {
                    eprintln!("bench-check: no baseline for {}: {}", name, e);
                    return ExitCode::FAILURE;
                }
            },
        };
        if let Err(e) = fs::write(base_dir.join(name), bytes) {
            eprintln!("bench-check: cannot write baseline {}: {}", name, e);
            return ExitCode::FAILURE;
        }
    }

    for bin in BENCH_BINS {
        println!("bench-check: running {} --quick", bin);
        let status = tool_command(&root, bin)
            .arg("--quick")
            .env("NIMBLE_BENCH_QUICK", "1")
            .env("NIMBLE_BENCH_OUT_DIR", &fresh_dir)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("bench-check: {} exited with {}", bin, s);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("bench-check: cannot run {}: {}", bin, e);
                return ExitCode::FAILURE;
            }
        }
    }

    let mut gate = tool_command(&root, "bench_check");
    gate.arg(&base_dir).arg(&fresh_dir).args(BENCH_ARTIFACTS);
    match gate.status() {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench-check: cannot run bench_check: {}", e);
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives directly under the workspace root.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string());
    let dir = PathBuf::from(manifest);
    match dir.parent() {
        Some(p) if dir.ends_with("xtask") => p.to_path_buf(),
        _ => dir,
    }
}

fn lint(update_baseline: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    let mut totals: BTreeMap<&str, usize> = CATEGORIES.iter().map(|c| (*c, 0)).collect();
    let mut per_file: Vec<(PathBuf, usize)> = Vec::new();
    for f in &files {
        let text = match fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {}", f.display(), e);
                return ExitCode::FAILURE;
            }
        };
        let counts = count_panic_paths(&text);
        let file_total: usize = counts.values().sum();
        if file_total > 0 {
            let rel = f.strip_prefix(&root).unwrap_or(f).to_path_buf();
            per_file.push((rel, file_total));
        }
        for (cat, n) in counts {
            if let Some(t) = totals.get_mut(cat) {
                *t += n;
            }
        }
    }

    println!("panic-path inventory over {} non-test files:", files.len());
    for cat in CATEGORIES {
        println!("  {:<13} {}", cat, totals[cat]);
    }
    per_file.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!("top offenders:");
    for (path, n) in per_file.iter().take(10) {
        println!("  {:>4}  {}", n, path.display());
    }

    let metric_violations = check_metric_drift(&root, &files);
    let lock_violations = check_lock_across_call(&root, &files);
    totals.insert("metric_drift", metric_violations.len());
    totals.insert("lock_across_call", lock_violations.len());
    for v in metric_violations.iter().chain(&lock_violations) {
        eprintln!("  {}", v);
    }
    println!(
        "metric_drift: {}   lock_across_call: {}",
        metric_violations.len(),
        lock_violations.len()
    );

    let baseline_path = root.join(BASELINE_FILE);
    if update_baseline {
        let mut out = String::from(
            "# Panic-path lint baseline: maximum allowed occurrences in non-test code.\n\
             # Regenerated with `cargo xtask lint --update-baseline`. This is a\n\
             # ratchet: lower it as panic paths are removed; never raise it\n\
             # without a review.\n",
        );
        for cat in CATEGORIES {
            out.push_str(&format!("{} = {}\n", cat, totals[cat]));
        }
        out.push_str(
            "# Violation lints are pinned at zero: fix the code (or the\n\
             # crates/trace/README.md metric table), never the baseline.\n",
        );
        for cat in VIOLATION_CATEGORIES {
            out.push_str(&format!("{} = 0\n", cat));
        }
        if let Err(e) = fs::write(&baseline_path, out) {
            eprintln!("xtask lint: cannot write {}: {}", baseline_path.display(), e);
            return ExitCode::FAILURE;
        }
        println!("baseline updated: {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(t) => parse_baseline(&t),
        Err(e) => {
            eprintln!(
                "xtask lint: cannot read {} ({}); run `cargo xtask lint --update-baseline`",
                baseline_path.display(),
                e
            );
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for cat in CATEGORIES.into_iter().chain(VIOLATION_CATEGORIES) {
        let current = totals[cat];
        match baseline.get(cat) {
            Some(&allowed) if current > allowed => {
                eprintln!(
                    "REGRESSION: {} count {} exceeds baseline {} — return an error instead, \
                     or (after review) regenerate the baseline",
                    cat, current, allowed
                );
                failed = true;
            }
            Some(&allowed) => {
                if current < allowed {
                    println!(
                        "note: {} count {} is below baseline {}; ratchet down with --update-baseline",
                        cat, current, allowed
                    );
                }
            }
            None => {
                eprintln!("REGRESSION: baseline has no entry for {}", cat);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("lint OK: no panic-path, metric-drift, or lock-across-call regressions");
        ExitCode::SUCCESS
    }
}

/// Cross-check every `engine.*` / `stats.*` / `plan_cache.*` string
/// literal in non-test code against the metric inventory table in
/// `crates/trace/README.md`, in both directions. The xtask sources are
/// excluded: this lint's own prefix strings would otherwise match.
fn check_metric_drift(root: &Path, files: &[PathBuf]) -> Vec<String> {
    let readme_rel = Path::new("crates/trace/README.md");
    let readme = fs::read_to_string(root.join(readme_rel)).unwrap_or_default();
    let table = parse_metric_table(&readme);

    // Metric name -> first file recording it.
    let mut used: BTreeMap<String, PathBuf> = BTreeMap::new();
    for f in files {
        if f.components().any(|c| c.as_os_str() == "xtask") {
            continue;
        }
        let text = match fs::read_to_string(f) {
            Ok(t) => t,
            Err(_) => continue,
        };
        for (lit, in_test) in string_literals(&text) {
            if in_test || !METRIC_PREFIXES.iter().any(|p| lit.starts_with(p)) {
                continue;
            }
            used.entry(normalize_metric(&lit))
                .or_insert_with(|| f.strip_prefix(root).unwrap_or(f).to_path_buf());
        }
    }

    let mut violations = Vec::new();
    for (name, file) in &used {
        let covered = table.contains(name)
            || table.iter().any(|t| {
                t.strip_suffix('*')
                    .is_some_and(|p| p.ends_with('.') && name.starts_with(p))
            });
        if !covered {
            violations.push(format!(
                "metric_drift: `{}` (first seen in {}) is missing from {}'s metric inventory table",
                name,
                file.display(),
                readme_rel.display()
            ));
        }
    }
    for t in &table {
        let covered = match t.strip_suffix('*') {
            Some(prefix) => used.keys().any(|n| n.starts_with(prefix)) || used.contains_key(t),
            None => used.contains_key(t),
        };
        if !covered {
            violations.push(format!(
                "metric_drift: {} metric inventory lists `{}`, which no non-test code records",
                readme_rel.display(),
                t
            ));
        }
    }
    violations
}

/// Rows of the README's metric inventory: markdown table lines whose
/// first backticked cell starts with a lint-scoped prefix.
fn parse_metric_table(readme: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in readme.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let Some(cell) = line.trim_start_matches('|').split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        let Some(name) = cell
            .strip_prefix('`')
            .and_then(|c| c.split('`').next())
        else {
            continue;
        };
        if METRIC_PREFIXES.iter().any(|p| name.starts_with(p)) {
            out.insert(name.to_string());
        }
    }
    out
}

/// Canonical form of a metric literal: `format!` holes (`{}`) become
/// `*`, and a concatenation stem ending in `.` gets a trailing `*`, so
/// both dynamic spellings collapse onto one starred family name.
fn normalize_metric(lit: &str) -> String {
    let mut name = lit.replace("{}", "*");
    if name.ends_with('.') {
        name.push('*');
    }
    name
}

/// Every string literal in `source` with a flag for whether it sits
/// inside a `#[cfg(test)]` region. Comments are skipped; raw and byte
/// strings are captured; braces inside literals never perturb the
/// `#[cfg(test)]` depth tracking.
fn string_literals(source: &str) -> Vec<(String, bool)> {
    let b = source.as_bytes();
    let mut out = Vec::new();
    let mut depth: usize = 0;
    let mut skip_at: Option<usize> = None;
    let mut pending = false;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'#' && source[i..].starts_with("#[cfg(test)]") {
            if skip_at.is_none() {
                pending = true;
            }
            i += "#[cfg(test)]".len();
            continue;
        }
        match c {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut nest = 1;
                i += 2;
                while i < b.len() && nest > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        nest += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        nest -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'{' => {
                depth += 1;
                if pending {
                    skip_at = Some(depth);
                    pending = false;
                }
                i += 1;
            }
            b'}' => {
                if skip_at == Some(depth) {
                    skip_at = None;
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b';' => {
                pending = false;
                i += 1;
            }
            b'"' => {
                let end = skip_string(b, i);
                let content_end = end.saturating_sub(1).max(i + 1);
                out.push((source[i + 1..content_end].to_string(), skip_at.is_some()));
                i = end;
            }
            b'r' | b'b' => {
                let start = i;
                let mut j = i + 1;
                let mut is_raw = b[i] == b'r';
                if b[i] == b'b' && b.get(j) == Some(&b'r') {
                    is_raw = true;
                    j += 1;
                }
                let mut hashes = 0;
                if is_raw {
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                }
                if b.get(j) == Some(&b'"') && (start == 0 || !is_ident_char(b[start - 1])) {
                    let end = if is_raw {
                        skip_raw_string(b, j, hashes)
                    } else {
                        skip_string(b, j)
                    };
                    let content_end = end.saturating_sub(1 + if is_raw { hashes } else { 0 });
                    out.push((
                        source[j + 1..content_end.max(j + 1)].to_string(),
                        skip_at.is_some(),
                    ));
                    i = end;
                } else {
                    i = start + 1;
                }
            }
            b'\'' => {
                if b.get(i + 1) == Some(&b'\\') {
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if b.get(i + 2) == Some(&b'\'') {
                    i += 3;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Flag `.execute(` / `.fetch_collection(` adapter calls made while a
/// lock/borrow guard bound by a `let` in an enclosing scope is still
/// live. Scope-based, not statement-based: parking_lot guards (and
/// `if let` scrutinee temporaries) live to the end of their block.
fn check_lock_across_call(root: &Path, files: &[PathBuf]) -> Vec<String> {
    let mut violations = Vec::new();
    for f in files {
        let src = match fs::read_to_string(f) {
            Ok(t) => t,
            Err(_) => continue,
        };
        for idx in lock_across_call_sites(&src) {
            let line = 1 + src.as_bytes()[..idx].iter().filter(|&&b| b == b'\n').count();
            violations.push(format!(
                "lock_across_call: {}:{}: adapter call while a lock/borrow guard from an \
                 enclosing `let` is still held — drop the guard (or copy the data out) first",
                f.strip_prefix(root).unwrap_or(f).display(),
                line
            ));
        }
    }
    violations
}

/// Byte offsets of adapter calls under a live guard (see
/// [`check_lock_across_call`]); offsets index the original source.
fn lock_across_call_sites(source: &str) -> Vec<usize> {
    let cleaned = strip_noise(source);
    let bytes = cleaned.as_bytes();
    let mut sites = Vec::new();
    let mut depth: usize = 0;
    let mut skip_at: Option<usize> = None;
    let mut pending = false;
    // Brace depths at which a guard-binding `let` appeared; a guard
    // dies when its block closes.
    let mut guards: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'#' && cleaned[i..].starts_with("#[cfg(test)]") {
            if skip_at.is_none() {
                pending = true;
            }
            i += "#[cfg(test)]".len();
            continue;
        }
        match c {
            b'{' => {
                depth += 1;
                if pending {
                    skip_at = Some(depth);
                    pending = false;
                }
            }
            b'}' => {
                if skip_at == Some(depth) {
                    skip_at = None;
                }
                guards.retain(|&d| d < depth);
                depth = depth.saturating_sub(1);
            }
            b';' => pending = false,
            _ => {}
        }
        if skip_at.is_none() {
            if c == b'l'
                && cleaned[i..].starts_with("let")
                && (i == 0 || !is_ident_char(bytes[i - 1]))
                && !bytes.get(i + 3).copied().is_some_and(is_ident_char)
            {
                // Scan the `let` statement: up to `;` or a block `{` at
                // paren nesting 0 (an `if let` scrutinee ends there).
                let mut nest: usize = 0;
                let mut j = i + 3;
                while j < bytes.len() {
                    match bytes[j] {
                        b'(' | b'[' => nest += 1,
                        b')' | b']' => nest = nest.saturating_sub(1),
                        b';' | b'{' | b'}' if nest == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let stmt = &cleaned[i..j];
                if stmt.contains(".lock()") || stmt.contains(".borrow_mut()") {
                    // A plain `let …;` guard lives in the current block;
                    // an `if let`/`while let` scrutinee temporary lives
                    // in the block the `{` terminator is about to open.
                    let block_scoped = bytes.get(j) == Some(&b'{');
                    guards.push(if block_scoped { depth + 1 } else { depth });
                }
            }
            if c == b'.'
                && (cleaned[i..].starts_with(".execute(")
                    || cleaned[i..].starts_with(".fetch_collection("))
                && !guards.is_empty()
            {
                sites.push(i);
            }
        }
        i += 1;
    }
    sites
}

fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            if let Ok(n) = v.trim().parse::<usize>() {
                out.insert(k.trim().to_string(), n);
            }
        }
    }
    out
}

/// Recursively collect non-test `.rs` files.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    const SKIP_DIRS: [&str; 7] =
        ["target", "tests", "benches", "examples", "tools", ".git", ".claude"];
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") && !name.ends_with("tests.rs") {
            out.push(path);
        }
    }
}

/// Count panic-path tokens in one file, ignoring comments, string and
/// char literals, and code inside `#[cfg(test)]` items.
fn count_panic_paths(source: &str) -> BTreeMap<&'static str, usize> {
    let cleaned = strip_noise(source);
    let bytes = cleaned.as_bytes();
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut depth: usize = 0;
    // Brace depth at which a `#[cfg(test)]` item's block began; counting
    // is suspended while inside it.
    let mut skip_at: Option<usize> = None;
    // A `#[cfg(test)]` attribute was seen and its item's `{` is pending.
    let mut pending = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'#' && cleaned[i..].starts_with("#[cfg(test)]") {
            if skip_at.is_none() {
                pending = true;
            }
            i += "#[cfg(test)]".len();
            continue;
        }
        match c {
            b'{' => {
                depth += 1;
                if pending {
                    skip_at = Some(depth);
                    pending = false;
                }
            }
            b'}' => {
                if skip_at == Some(depth) {
                    skip_at = None;
                }
                depth = depth.saturating_sub(1);
            }
            // `#[cfg(test)] mod foo;` — the item has no block here.
            b';' => pending = false,
            _ => {}
        }
        if skip_at.is_none() && is_ident_start(c) && (i == 0 || !is_ident_char(bytes[i - 1])) {
            let mut j = i + 1;
            while j < bytes.len() && is_ident_char(bytes[j]) {
                j += 1;
            }
            let ident = &cleaned[i..j];
            let mut k = j;
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
            let next = bytes.get(k).copied();
            let cat = match ident {
                "unwrap" | "expect" if next == Some(b'(') => {
                    if ident == "unwrap" {
                        Some("unwrap")
                    } else {
                        Some("expect")
                    }
                }
                "panic" if next == Some(b'!') => Some("panic"),
                "debug_assert" | "debug_assert_eq" | "debug_assert_ne" if next == Some(b'!') => {
                    Some("debug_assert")
                }
                _ => None,
            };
            if let Some(cat) = cat {
                *counts.entry(cat).or_insert(0) += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    counts
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Replace comments, string literals, and char literals with spaces so
/// the counting pass only ever sees code. Handles nested block
/// comments, escapes, raw strings (`r#"…"#`), and byte strings.
fn strip_noise(source: &str) -> String {
    let b = source.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut nest = 1;
                i += 2;
                while i < b.len() && nest > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        nest += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        nest -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(b, i),
            b'r' | b'b' => {
                // Possible raw/byte string start: r", r#"…, br", b"….
                let start = i;
                let mut j = i + 1;
                let mut is_raw = b[i] == b'r';
                if b[i] == b'b' && b.get(j) == Some(&b'r') {
                    is_raw = true;
                    j += 1;
                }
                let mut hashes = 0;
                if is_raw {
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                }
                if b.get(j) == Some(&b'"') && (start == 0 || !is_ident_char(b[start - 1])) {
                    if is_raw {
                        i = skip_raw_string(b, j, hashes);
                    } else {
                        i = skip_string(b, j); // byte string, has escapes
                    }
                } else {
                    // Ordinary identifier character; copy it through.
                    out[start] = b[start];
                    i = start + 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal is '\…' or 'X'.
                if b.get(i + 1) == Some(&b'\\') {
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if b.get(i + 2) == Some(&b'\'') {
                    i += 3;
                } else {
                    i += 1; // lifetime tick; drop it, keep scanning
                }
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    match String::from_utf8(out) {
        Ok(s) => s,
        // Non-ASCII bytes were replaced by spaces position-for-position,
        // so this cannot happen; return empty rather than panic.
        Err(_) => String::new(),
    }
}

/// Skip a normal string literal starting at the opening quote; returns
/// the index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string whose opening quote is at `quote`, closed by a
/// quote followed by `hashes` hash marks.
fn skip_raw_string(b: &[u8], quote: usize, hashes: usize) -> usize {
    let mut i = quote + 1;
    while i < b.len() {
        if b[i] == b'"' {
            let mut ok = true;
            for h in 0..hashes {
                if b.get(i + 1 + h) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_outside_tests_only() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    // x.unwrap() in a comment does not count
    let s = "panic!() in a string does not count";
    let _ = s;
    debug_assert!(true);
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn g() {
        super::f(None).expect("boom");
        panic!("only in tests");
    }
}
"#;
        let counts = count_panic_paths(src);
        assert_eq!(counts.get("unwrap"), Some(&1));
        assert_eq!(counts.get("debug_assert"), Some(&1));
        assert_eq!(counts.get("expect"), None);
        assert_eq!(counts.get("panic"), None);
    }

    #[test]
    fn cfg_test_on_mod_decl_does_not_swallow_code() {
        let src = "#[cfg(test)]\nmod engine_tests;\nfn f() { None::<u32>.unwrap(); }\n";
        let counts = count_panic_paths(src);
        assert_eq!(counts.get("unwrap"), Some(&1));
    }

    #[test]
    fn raw_strings_and_chars_are_noise() {
        let src = "fn f() { let _ = r#\"panic!\"#; let _c = '\\''; let _l: &'static str = \"x\"; Some(1).unwrap(); }";
        let counts = count_panic_paths(src);
        assert_eq!(counts.get("panic"), None);
        assert_eq!(counts.get("unwrap"), Some(&1));
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f() { let _ = None.unwrap_or(3); }";
        assert!(count_panic_paths(src).is_empty());
    }

    #[test]
    fn metric_normalization_collapses_dynamic_spellings() {
        assert_eq!(normalize_metric("engine.phase_us.{}"), "engine.phase_us.*");
        assert_eq!(normalize_metric("engine.phase_us."), "engine.phase_us.*");
        assert_eq!(normalize_metric("engine.queries"), "engine.queries");
    }

    #[test]
    fn string_literals_skip_tests_comments_and_raw_strings() {
        let src = r##"
fn f() {
    let a = "engine.queries";
    // "engine.not_me" in a comment
    let b = r#"engine.raw"#;
    let _ = (a, b);
}
#[cfg(test)]
mod tests {
    fn g() { let _ = "engine.test_only"; }
}
"##;
        let lits = string_literals(src);
        assert!(lits.contains(&("engine.queries".to_string(), false)));
        assert!(lits.contains(&("engine.raw".to_string(), false)));
        assert!(lits.contains(&("engine.test_only".to_string(), true)));
        assert!(!lits.iter().any(|(s, _)| s == "engine.not_me"));
    }

    #[test]
    fn metric_table_rows_are_parsed() {
        let readme = "\
| Metric | Kind |\n\
|--------|------|\n\
| `engine.queries` | counter |\n\
| `engine.phase_us.*` | histogram |\n\
| `Trace` | not a metric |\n";
        let t = parse_metric_table(readme);
        assert!(t.contains("engine.queries"));
        assert!(t.contains("engine.phase_us.*"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lock_held_across_adapter_call_is_flagged() {
        let src = "\
fn bad(a: &dyn A) {
    let guard = self.inner.lock();
    let _ = a.execute(&q);
}
";
        assert_eq!(lock_across_call_sites(src).len(), 1);
    }

    #[test]
    fn guard_dropped_before_call_is_clean() {
        let src = "\
fn good(a: &dyn A) {
    {
        let guard = self.inner.lock();
        guard.touch();
    }
    let _ = a.execute(&q);
    let rows = a.fetch_collection(\"c\");
}
fn also_good() {
    let g = self.inner.lock();
    g.no_adapter_calls_here();
}
";
        assert!(lock_across_call_sites(src).is_empty());
    }

    #[test]
    fn if_let_scrutinee_guard_is_scope_live() {
        // `if let` scrutinee temporaries live to the end of the block.
        let src = "\
fn f(a: &dyn A) {
    if let Some(v) = self.map.lock().get(&k) {
        let _ = a.execute(&q);
    }
    let _ = a.execute(&q);
}
";
        assert_eq!(lock_across_call_sites(src).len(), 1);
    }

    #[test]
    fn guards_in_test_code_are_ignored() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f(a: &dyn A) {
        let g = self.inner.lock();
        let _ = a.execute(&q);
    }
}
";
        assert!(lock_across_call_sites(src).is_empty());
    }
}
