//! Workspace maintenance tasks, invoked as `cargo xtask <command>`.
//!
//! `lint` — inventory panic paths (`.unwrap()`, `.expect()`, `panic!`,
//! `debug_assert!`) in non-test code and fail when any category grows
//! past the checked-in `lint-baseline.toml`. The scanner is a plain
//! text analysis (no syn, no dependencies): comments, string literals,
//! and `#[cfg(test)]` regions are stripped before counting, files under
//! `tests/`, `benches/`, `examples/`, or `tools/` (verification
//! scaffolding) and `*tests.rs` module files are skipped entirely. The baseline is a ratchet: shrink it as panic
//! paths are removed (`cargo xtask lint --update-baseline`), never grow
//! it without a review.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const CATEGORIES: [&str; 4] = ["unwrap", "expect", "panic", "debug_assert"];
const BASELINE_FILE: &str = "lint-baseline.toml";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--update-baseline")),
        _ => {
            eprintln!("usage: cargo xtask lint [--update-baseline]");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives directly under the workspace root.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string());
    let dir = PathBuf::from(manifest);
    match dir.parent() {
        Some(p) if dir.ends_with("xtask") => p.to_path_buf(),
        _ => dir,
    }
}

fn lint(update_baseline: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    let mut totals: BTreeMap<&str, usize> = CATEGORIES.iter().map(|c| (*c, 0)).collect();
    let mut per_file: Vec<(PathBuf, usize)> = Vec::new();
    for f in &files {
        let text = match fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {}", f.display(), e);
                return ExitCode::FAILURE;
            }
        };
        let counts = count_panic_paths(&text);
        let file_total: usize = counts.values().sum();
        if file_total > 0 {
            let rel = f.strip_prefix(&root).unwrap_or(f).to_path_buf();
            per_file.push((rel, file_total));
        }
        for (cat, n) in counts {
            if let Some(t) = totals.get_mut(cat) {
                *t += n;
            }
        }
    }

    println!("panic-path inventory over {} non-test files:", files.len());
    for cat in CATEGORIES {
        println!("  {:<13} {}", cat, totals[cat]);
    }
    per_file.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!("top offenders:");
    for (path, n) in per_file.iter().take(10) {
        println!("  {:>4}  {}", n, path.display());
    }

    let baseline_path = root.join(BASELINE_FILE);
    if update_baseline {
        let mut out = String::from(
            "# Panic-path lint baseline: maximum allowed occurrences in non-test code.\n\
             # Regenerated with `cargo xtask lint --update-baseline`. This is a\n\
             # ratchet: lower it as panic paths are removed; never raise it\n\
             # without a review.\n",
        );
        for cat in CATEGORIES {
            out.push_str(&format!("{} = {}\n", cat, totals[cat]));
        }
        if let Err(e) = fs::write(&baseline_path, out) {
            eprintln!("xtask lint: cannot write {}: {}", baseline_path.display(), e);
            return ExitCode::FAILURE;
        }
        println!("baseline updated: {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(t) => parse_baseline(&t),
        Err(e) => {
            eprintln!(
                "xtask lint: cannot read {} ({}); run `cargo xtask lint --update-baseline`",
                baseline_path.display(),
                e
            );
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for cat in CATEGORIES {
        let current = totals[cat];
        match baseline.get(cat) {
            Some(&allowed) if current > allowed => {
                eprintln!(
                    "REGRESSION: {} count {} exceeds baseline {} — return an error instead, \
                     or (after review) regenerate the baseline",
                    cat, current, allowed
                );
                failed = true;
            }
            Some(&allowed) => {
                if current < allowed {
                    println!(
                        "note: {} count {} is below baseline {}; ratchet down with --update-baseline",
                        cat, current, allowed
                    );
                }
            }
            None => {
                eprintln!("REGRESSION: baseline has no entry for {}", cat);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("lint OK: no panic-path regressions");
        ExitCode::SUCCESS
    }
}

fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            if let Ok(n) = v.trim().parse::<usize>() {
                out.insert(k.trim().to_string(), n);
            }
        }
    }
    out
}

/// Recursively collect non-test `.rs` files.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    const SKIP_DIRS: [&str; 7] =
        ["target", "tests", "benches", "examples", "tools", ".git", ".claude"];
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") && !name.ends_with("tests.rs") {
            out.push(path);
        }
    }
}

/// Count panic-path tokens in one file, ignoring comments, string and
/// char literals, and code inside `#[cfg(test)]` items.
fn count_panic_paths(source: &str) -> BTreeMap<&'static str, usize> {
    let cleaned = strip_noise(source);
    let bytes = cleaned.as_bytes();
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut depth: usize = 0;
    // Brace depth at which a `#[cfg(test)]` item's block began; counting
    // is suspended while inside it.
    let mut skip_at: Option<usize> = None;
    // A `#[cfg(test)]` attribute was seen and its item's `{` is pending.
    let mut pending = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'#' && cleaned[i..].starts_with("#[cfg(test)]") {
            if skip_at.is_none() {
                pending = true;
            }
            i += "#[cfg(test)]".len();
            continue;
        }
        match c {
            b'{' => {
                depth += 1;
                if pending {
                    skip_at = Some(depth);
                    pending = false;
                }
            }
            b'}' => {
                if skip_at == Some(depth) {
                    skip_at = None;
                }
                depth = depth.saturating_sub(1);
            }
            // `#[cfg(test)] mod foo;` — the item has no block here.
            b';' => pending = false,
            _ => {}
        }
        if skip_at.is_none() && is_ident_start(c) && (i == 0 || !is_ident_char(bytes[i - 1])) {
            let mut j = i + 1;
            while j < bytes.len() && is_ident_char(bytes[j]) {
                j += 1;
            }
            let ident = &cleaned[i..j];
            let mut k = j;
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
            let next = bytes.get(k).copied();
            let cat = match ident {
                "unwrap" | "expect" if next == Some(b'(') => {
                    if ident == "unwrap" {
                        Some("unwrap")
                    } else {
                        Some("expect")
                    }
                }
                "panic" if next == Some(b'!') => Some("panic"),
                "debug_assert" | "debug_assert_eq" | "debug_assert_ne" if next == Some(b'!') => {
                    Some("debug_assert")
                }
                _ => None,
            };
            if let Some(cat) = cat {
                *counts.entry(cat).or_insert(0) += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    counts
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Replace comments, string literals, and char literals with spaces so
/// the counting pass only ever sees code. Handles nested block
/// comments, escapes, raw strings (`r#"…"#`), and byte strings.
fn strip_noise(source: &str) -> String {
    let b = source.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut nest = 1;
                i += 2;
                while i < b.len() && nest > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        nest += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        nest -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(b, i),
            b'r' | b'b' => {
                // Possible raw/byte string start: r", r#"…, br", b"….
                let start = i;
                let mut j = i + 1;
                let mut is_raw = b[i] == b'r';
                if b[i] == b'b' && b.get(j) == Some(&b'r') {
                    is_raw = true;
                    j += 1;
                }
                let mut hashes = 0;
                if is_raw {
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                }
                if b.get(j) == Some(&b'"') && (start == 0 || !is_ident_char(b[start - 1])) {
                    if is_raw {
                        i = skip_raw_string(b, j, hashes);
                    } else {
                        i = skip_string(b, j); // byte string, has escapes
                    }
                } else {
                    // Ordinary identifier character; copy it through.
                    out[start] = b[start];
                    i = start + 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal is '\…' or 'X'.
                if b.get(i + 1) == Some(&b'\\') {
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if b.get(i + 2) == Some(&b'\'') {
                    i += 3;
                } else {
                    i += 1; // lifetime tick; drop it, keep scanning
                }
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    match String::from_utf8(out) {
        Ok(s) => s,
        // Non-ASCII bytes were replaced by spaces position-for-position,
        // so this cannot happen; return empty rather than panic.
        Err(_) => String::new(),
    }
}

/// Skip a normal string literal starting at the opening quote; returns
/// the index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string whose opening quote is at `quote`, closed by a
/// quote followed by `hashes` hash marks.
fn skip_raw_string(b: &[u8], quote: usize, hashes: usize) -> usize {
    let mut i = quote + 1;
    while i < b.len() {
        if b[i] == b'"' {
            let mut ok = true;
            for h in 0..hashes {
                if b.get(i + 1 + h) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_outside_tests_only() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    // x.unwrap() in a comment does not count
    let s = "panic!() in a string does not count";
    let _ = s;
    debug_assert!(true);
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn g() {
        super::f(None).expect("boom");
        panic!("only in tests");
    }
}
"#;
        let counts = count_panic_paths(src);
        assert_eq!(counts.get("unwrap"), Some(&1));
        assert_eq!(counts.get("debug_assert"), Some(&1));
        assert_eq!(counts.get("expect"), None);
        assert_eq!(counts.get("panic"), None);
    }

    #[test]
    fn cfg_test_on_mod_decl_does_not_swallow_code() {
        let src = "#[cfg(test)]\nmod engine_tests;\nfn f() { None::<u32>.unwrap(); }\n";
        let counts = count_panic_paths(src);
        assert_eq!(counts.get("unwrap"), Some(&1));
    }

    #[test]
    fn raw_strings_and_chars_are_noise() {
        let src = "fn f() { let _ = r#\"panic!\"#; let _c = '\\''; let _l: &'static str = \"x\"; Some(1).unwrap(); }";
        let counts = count_panic_paths(src);
        assert_eq!(counts.get("panic"), None);
        assert_eq!(counts.get("unwrap"), Some(&1));
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f() { let _ = None.unwrap_or(3); }";
        assert!(count_panic_paths(src).is_empty());
    }
}
