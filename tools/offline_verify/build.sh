#!/bin/bash
# Offline build+drive harness: compiles the workspace with plain rustc,
# using std-only stubs for external deps, for containers with no cargo
# registry access. Outputs land under target/manual/. See
# .claude/skills/verify/SKILL.md ("No-network containers").
set -u
cd "$(dirname "$0")/../.."
OUT=target/manual/opt
TESTS=target/manual/tests
mkdir -p "$OUT" "$TESTS"
M=tools/offline_verify
# Extra rustc flags for the next R/T/B call (set around calls that need
# a feature cfg, reset to empty afterwards).
EXTRA=

R() { # R <name> <src> [externs...]
  local name=$1 src=$2; shift 2
  local ext=()
  for e in "$@"; do ext+=(--extern "$e=$OUT/lib$e.rlib"); done
  if ! rustc -O --edition 2021 $EXTRA -L "$OUT" --crate-type rlib --crate-name "$name" "$src" "${ext[@]}" --out-dir "$OUT" 2>"$OUT/$name.err"; then
    echo "FAIL rlib $name"; grep -E "^error" "$OUT/$name.err" | head -8; exit 1
  fi
  echo "ok rlib $name"
}

T() { # T <name> <src> [externs...]  (debug build => plan verify on)
  local name=$1 src=$2; shift 2
  local ext=()
  for e in "$@"; do ext+=(--extern "$e=$OUT/lib$e.rlib"); done
  if ! rustc --edition 2021 $EXTRA -L "$OUT" --test --crate-name "${name}_t" "$src" "${ext[@]}" -o "$TESTS/${name}_t" 2>"$TESTS/$name.err"; then
    echo "FAIL test-build $name"; grep -E "^error" "$TESTS/$name.err" | head -8; exit 1
  fi
  echo "ok test-build $name"
}

B() { # B <name> <src> [externs...]  (optimized binary)
  local name=$1 src=$2; shift 2
  local ext=()
  for e in "$@"; do ext+=(--extern "$e=$OUT/lib$e.rlib"); done
  if ! rustc -O --edition 2021 -L "$OUT" --crate-name "$name" "$src" "${ext[@]}" -o "$TESTS/$name" 2>"$TESTS/$name.err"; then
    echo "FAIL bin $name"; grep -E "^error" "$TESTS/$name.err" | head -8; exit 1
  fi
  echo "ok bin $name"
}

R nimble_xml crates/xml/src/lib.rs
# The trace rlib is built with allocation profiling on, so every test
# and bench binary in this harness gets the counting allocator (the
# cargo workspace enables the same feature for tests/benches).
EXTRA='--cfg feature="profile-alloc"'
R nimble_trace crates/trace/src/lib.rs
EXTRA=
R nimble_algebra crates/algebra/src/lib.rs nimble_xml
R nimble_xmlql crates/xmlql/src/lib.rs nimble_xml
R nimble_relational crates/relational/src/lib.rs nimble_xml
R nimble_planck crates/planck/src/lib.rs nimble_algebra
R parking_lot $M/stubs/parking_lot.rs
R crossbeam $M/stubs/crossbeam.rs
R rand $M/stubs/rand.rs
R serde_json $M/serde_json_stub.rs
R nimble_sources crates/sources/src/lib.rs nimble_xml nimble_relational parking_lot rand nimble_trace
R nimble_store crates/store/src/lib.rs nimble_xml parking_lot nimble_trace
R nimble_core crates/core/src/lib.rs nimble_xml nimble_xmlql nimble_algebra nimble_planck nimble_sources nimble_store parking_lot crossbeam nimble_trace
R cleaning_shim $M/cleaning_shim.rs nimble_trace
R frontend_shim $M/frontend_shim.rs nimble_core nimble_store nimble_trace parking_lot nimble_xml nimble_sources
R nimble $M/nimble_shim.rs nimble_xml nimble_xmlql nimble_algebra nimble_relational nimble_sources nimble_store nimble_core nimble_trace frontend_shim
R nimble_bench crates/bench/src/lib.rs nimble_core nimble_sources nimble_trace serde_json

EXTRA='--cfg feature="profile-alloc"'
T xml crates/xml/src/lib.rs
T trace crates/trace/src/lib.rs
EXTRA=
T sources crates/sources/src/lib.rs nimble_xml nimble_relational parking_lot rand nimble_trace
T store crates/store/src/lib.rs nimble_xml parking_lot nimble_trace
T xmlql crates/xmlql/src/lib.rs nimble_xml
T core crates/core/src/lib.rs nimble_xml nimble_xmlql nimble_algebra nimble_planck nimble_sources nimble_store parking_lot crossbeam nimble_trace
T cleaning $M/cleaning_shim.rs nimble_trace
T frontend $M/frontend_shim.rs nimble_core nimble_store nimble_trace parking_lot nimble_xml nimble_sources
T algebra crates/algebra/src/lib.rs nimble_xml
T planck crates/planck/src/lib.rs nimble_algebra
T bench crates/bench/src/lib.rs nimble_core nimble_sources nimble_trace serde_json
T observability tests/observability.rs nimble serde_json
T provenance tests/provenance.rs nimble serde_json
T shard_differential crates/core/tests/shard_differential.rs nimble_core nimble_sources nimble_xml

B exp_observability crates/bench/src/bin/exp_observability.rs nimble_bench nimble_core nimble_trace serde_json
B exp_vectorized crates/bench/src/bin/exp_vectorized.rs nimble_bench nimble_core nimble_trace nimble_xml serde_json
B exp_memlayout crates/bench/src/bin/exp_memlayout.rs nimble_bench nimble_core nimble_trace nimble_xml serde_json
B exp_provenance crates/bench/src/bin/exp_provenance.rs nimble_bench nimble_core nimble_trace nimble_xml serde_json
B exp_costplan crates/bench/src/bin/exp_costplan.rs nimble_bench nimble_core nimble_sources nimble_trace nimble_xml serde_json
B exp_staticcheck crates/bench/src/bin/exp_staticcheck.rs nimble_bench nimble_core nimble_sources nimble_trace nimble_xml serde_json
B exp_shard crates/bench/src/bin/exp_shard.rs nimble_bench nimble_core nimble_sources nimble_trace nimble_xml serde_json
B bench_check crates/bench/src/bin/bench_check.rs nimble_bench nimble_core nimble_trace serde_json
B quickstart examples/quickstart.rs nimble
B web_portal examples/web_portal.rs nimble
B legacy_navigator examples/legacy_navigator.rs nimble
B probe $M/consumer_probe.rs nimble_core nimble_sources nimble_algebra nimble_planck nimble_trace
echo "ALL BUILDS OK"
