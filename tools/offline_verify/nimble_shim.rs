//! Umbrella shim: like src/lib.rs but with the frontend shim standing in
//! for nimble_frontend (cleaning can't build offline).
pub use frontend_shim as frontend;
pub use nimble_algebra as algebra;
pub use nimble_core as core;
pub use nimble_relational as relational;
pub use nimble_sources as sources;
pub use nimble_store as store;
pub use nimble_trace as trace;
pub use nimble_xml as xml;
pub use nimble_xmlql as xmlql;
