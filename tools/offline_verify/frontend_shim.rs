//! Typecheck shim: frontend minus admin.rs (which needs nimble_cleaning,
//! unbuildable here because of serde derive).
#[path = "../../crates/frontend/src/auth.rs"]
pub mod auth;
#[path = "../../crates/frontend/src/format.rs"]
pub mod format;
#[path = "../../crates/frontend/src/lens.rs"]
pub mod lens;
#[path = "../../crates/frontend/src/management.rs"]
pub mod management;
#[path = "../../crates/frontend/src/monitor.rs"]
pub mod monitor;

pub use auth::{AuthError, Directory, Role, User};
pub use format::{Device, Template};
pub use lens::{Lens, LensError, LensRegistry, ParamDef};
pub use management::ManagementConsole;
pub use monitor::SystemMonitor;
