//! Typecheck shim: the cleaning modules that don't need serde/rand.
#[path = "../../crates/cleaning/src/record.rs"]
pub mod record;
#[path = "../../crates/cleaning/src/concordance.rs"]
pub mod concordance;
#[path = "../../crates/cleaning/src/matching.rs"]
pub mod matching;
#[path = "../../crates/cleaning/src/merge_purge.rs"]
pub mod merge_purge;
#[path = "../../crates/cleaning/src/lineage.rs"]
pub mod lineage;
#[path = "../../crates/cleaning/src/pipeline.rs"]
pub mod pipeline;
