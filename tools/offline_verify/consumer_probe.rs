// External-consumer probe: only public APIs, hostile inputs, expect
// structured errors and zero panics.
use nimble_core::{Catalog, CoreError, Engine};
use nimble_sources::relational::RelationalAdapter;
use std::sync::Arc;

fn main() {
    pr3_probe::run();
    let stmts = [
        "CREATE TABLE customers (id INT, name TEXT, region TEXT)",
        "INSERT INTO customers VALUES (1, 'ada', 'NW')",
    ];
    let cat = Catalog::new();
    cat.register_source(Arc::new(RelationalAdapter::from_statements("erp", &stmts).unwrap())).unwrap();
    let engine = Engine::new(Arc::new(cat));

    let hostile: &[(&str, &str)] = &[
        ("syntax", "WHERE <row"),
        ("no patterns", "WHERE 1 = 1 CONSTRUCT <o/>"),
        ("unknown collection", r#"WHERE <row><id>$i</id></row> IN "nope" CONSTRUCT <o>$i</o>"#),
        ("unbound var", r#"WHERE <row><id>$i</id></row> IN "customers" CONSTRUCT <o>$zzz</o>"#),
        ("dup binding", r#"WHERE <row><id>$x</id><name>$x</name></row> IN "customers" CONSTRUCT <o>$x</o>"#),
        ("source var bound later", r#"WHERE <i>$x</i> IN $o, <order/> ELEMENT_AS $o IN "customers" CONSTRUCT <r/>"#),
        ("empty", ""),
        ("garbage", "\u{0}\u{1}<<<$$$"),
    ];
    for (label, q) in hostile {
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.query(q)));
        match res {
            Ok(Err(e)) => {
                println!("{:<22} -> CoreError: {}", label, e);
                let _: &CoreError = &e; // structured, typed
            }
            Ok(Ok(_)) => panic!("{}: hostile query unexpectedly succeeded", label),
            Err(_) => panic!("{}: PANICKED — must be a structured error", label),
        }
    }

    // A well-formed query still works and EXPLAIN carries a plan.
    let r = engine.query(r#"WHERE <row><id>$i</id><name>$n</name></row> IN "customers" CONSTRUCT <hit><n>$n</n></hit> ORDER-BY $n"#).unwrap();
    assert!(r.complete && r.stats.plan.contains("Sort"), "plan: {}", r.stats.plan);
    println!("well-formed query OK; EXPLAIN plan:\n{}", r.stats.plan);

    // The planck verifier itself, driven as a consumer: a hand-built
    // malformed tree must be rejected with operator + variable named.
    use nimble_algebra::expr::{CmpOp, ScalarExpr};
    use nimble_algebra::ops::{FilterOp, ValuesOp};
    use nimble_algebra::{FunctionRegistry, Schema};
    let src = ValuesOp::new(Schema::new(vec!["a".into()]), vec![]);
    let broken = FilterOp::new(
        Box::new(src),
        ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(7), ScalarExpr::lit(1i64)),
        Arc::new(FunctionRegistry::default()),
    );
    match nimble_planck::verify(&broken) {
        Err(report) => println!("planck rejects broken tree: {}", report),
        Ok(()) => panic!("planck accepted an unbound column"),
    }
}

// PR 3 surface: a downed SimulatedLink must yield a structured error,
// an error-kind metric, and a flight record correlated with the query
// log by trace id — all through public APIs only.
mod pr3_probe {
    use nimble_core::{Catalog, Engine, EngineConfig};
    use nimble_sources::relational::RelationalAdapter;
    use nimble_sources::sim::{LinkConfig, SimulatedLink};
    use nimble_trace::TraceId;
    use std::sync::Arc;

    pub fn run() {
        let stmts = [
            "CREATE TABLE customers (id INT, name TEXT)",
            "INSERT INTO customers VALUES (1, 'ada')",
        ];
        let inner =
            Arc::new(RelationalAdapter::from_statements("erp", &stmts).unwrap());
        let link = SimulatedLink::new(inner, LinkConfig::default());
        let cat = Catalog::new();
        let adapter: Arc<dyn nimble_sources::SourceAdapter> = link.clone();
        cat.register_source(adapter).unwrap();
        let engine = Engine::with_config(Arc::new(cat), EngineConfig::default());
        link.set_up(false);
        let q = r#"WHERE <row><id>$i</id></row> IN "customers" CONSTRUCT <o>$i</o>"#;
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.query(q)
        }));
        let e = match err {
            Ok(Err(e)) => e,
            Ok(Ok(_)) => panic!("downed link query unexpectedly succeeded"),
            Err(_) => panic!("downed link PANICKED — must be structured"),
        };
        println!("downed link           -> CoreError: {}", e);
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.counter("engine.query.error"), 1);
        assert_eq!(snap.counter("engine.query.error.source"), 1);
        let entry = &engine.query_log().recent(1)[0];
        assert!(entry.error.as_deref().unwrap().starts_with("source:"));
        let dump = engine.flight_recorder().dump();
        let tid = TraceId(entry.trace_id).to_string();
        assert!(dump.contains(&tid), "dump must carry the log's trace id");
        assert!(dump.contains("source_calls"));
        println!("flight record correlated under {}", tid);
    }
}
