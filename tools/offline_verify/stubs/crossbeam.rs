//! Typecheck/test stub for the crossbeam APIs this workspace uses.
//! `thread::scope` runs spawned closures EAGERLY (sequential, same
//! thread); `channel` is a real MPMC channel. Local harness only.
pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;
    pub struct Scope<'env>(PhantomData<&'env ()>);
    pub struct ScopedJoinHandle<'scope, T>(T, PhantomData<&'scope ()>);
    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> { Ok(self.0) }
    }
    impl<'env> Scope<'env> {
        pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where F: FnOnce(&Scope<'env>) -> T + Send + 'env, T: Send + 'env {
            ScopedJoinHandle(f(self), PhantomData)
        }
    }
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where F: FnOnce(&Scope<'env>) -> R {
        Ok(f(&Scope(PhantomData)))
    }
}
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    pub struct SendError<T>(pub T);
    #[derive(Debug)]
    pub struct RecvError;
    struct Chan<T> { q: Mutex<State<T>>, cv: Condvar }
    struct State<T> { q: VecDeque<T>, senders: usize, receivers: usize }
    pub struct Sender<T>(Arc<Chan<T>>);
    pub struct Receiver<T>(Arc<Chan<T>>);
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            q: Mutex::new(State { q: VecDeque::new(), senders: 1, receivers: 1 }),
            cv: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }
    impl<T> Sender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut s = self.0.q.lock().unwrap();
            if s.receivers == 0 { return Err(SendError(t)); }
            s.q.push_back(t);
            self.0.cv.notify_all();
            Ok(())
        }
    }
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.q.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }
    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.0.q.lock().unwrap().senders -= 1;
            self.0.cv.notify_all();
        }
    }
    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut s = self.0.q.lock().unwrap();
            loop {
                if let Some(t) = s.q.pop_front() { return Ok(t); }
                if s.senders == 0 { return Err(RecvError); }
                s = self.0.cv.wait(s).unwrap();
            }
        }
    }
    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.q.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }
    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.q.lock().unwrap().receivers -= 1;
        }
    }
}
