//! Typecheck/test stub for the rand APIs sources/sim.rs uses (an
//! xorshift behind StdRng). Local harness only.
pub mod rngs {
    pub struct StdRng(pub(crate) u64);
}
pub trait SeedableRng {
    fn seed_from_u64(state: u64) -> Self;
}
impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self { rngs::StdRng(state | 1) }
}
pub trait FromRng { fn from_u64(v: u64) -> Self; }
impl FromRng for f64 {
    fn from_u64(v: u64) -> f64 { (v >> 11) as f64 / (1u64 << 53) as f64 }
}
pub trait Rng {
    fn next_u64(&mut self) -> u64;
    fn gen<T: FromRng>(&mut self) -> T { T::from_u64(self.next_u64()) }
}
impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        self.0 = x;
        x
    }
}
