//! Typecheck/test stub mirroring the parking_lot API surface this
//! workspace uses. Local harness only — never part of the real build.
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);
impl<T> Mutex<T> {
    pub fn new(t: T) -> Self { Mutex(std::sync::Mutex::new(t)) }
}
impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}
impl<T: Default> Default for Mutex<T> {
    fn default() -> Self { Mutex::new(T::default()) }
}
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);
impl<T: ?Sized> Deref for MutexGuard<'_, T> { type Target = T; fn deref(&self) -> &T { &self.0 } }
impl<T: ?Sized> DerefMut for MutexGuard<'_, T> { fn deref_mut(&mut self) -> &mut T { &mut self.0 } }

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);
impl<T> RwLock<T> {
    pub fn new(t: T) -> Self { RwLock(std::sync::RwLock::new(t)) }
}
impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}
impl<T: Default> Default for RwLock<T> {
    fn default() -> Self { RwLock::new(T::default()) }
}
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> { type Target = T; fn deref(&self) -> &T { &self.0 } }
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);
impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> { type Target = T; fn deref(&self) -> &T { &self.0 } }
impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> { fn deref_mut(&mut self) -> &mut T { &mut self.0 } }
