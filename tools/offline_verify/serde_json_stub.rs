//! Minimal serde_json stand-in for offline typechecking of nimble-bench.
//! API subset: Value, Map, json!, to_string_pretty, Display.
use std::collections::BTreeMap;
use std::fmt;

pub type Map<K, V> = BTreeMap<K, V>;

#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(v as f64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(v as f64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(v as f64)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Number(v as f64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn esc(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            c => write!(f, "{}", c)?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{}", b),
            Value::Number(n) => write!(f, "{}", n),
            Value::String(s) => esc(s, f),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, "]")
            }
            Value::Object(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    esc(k, f)?;
                    write!(f, ":{}", v)?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[derive(Debug)]
pub struct Error;
impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error")
    }
}

pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    Ok(v.to_string())
}

#[macro_export]
macro_rules! json {
    ({ $($k:tt : $v:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($k.to_string(), $crate::Value::from($v)); )*
        $crate::Value::Object(m)
    }};
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($v) ),* ])
    };
    (null) => { $crate::Value::Null };
    ($other:expr) => { $crate::Value::from($other) };
}

// ---- parsing + read accessors (for integration tests) ----

static NULL: Value = Value::Null;

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }
    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error)
        }
    }
    fn lit(&mut self, s: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(Error)
        }
    }
    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.i).ok_or(Error)?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.b.get(self.i).ok_or(Error)?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.b.get(self.i..self.i + 4).ok_or(Error)?;
                            self.i += 4;
                            let s = std::str::from_utf8(hex).map_err(|_| Error)?;
                            let n = u32::from_str_radix(s, 16).map_err(|_| Error)?;
                            out.push(char::from_u32(n).ok_or(Error)?);
                        }
                        _ => return Err(Error),
                    }
                }
                c => {
                    // Re-sync on UTF-8 boundaries: collect continuation bytes.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.i - 1;
                        while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                            self.i += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.b[start..self.i]).map_err(|_| Error)?,
                        );
                    }
                }
            }
        }
    }
    fn value(&mut self) -> Result<Value, Error> {
        match self.peek().ok_or(Error)? {
            b'{' => {
                self.i += 1;
                let mut m = Map::new();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.eat(b':')?;
                    let v = self.value()?;
                    m.insert(k, v);
                    match self.peek().ok_or(Error)? {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                let mut a = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(a));
                }
                loop {
                    a.push(self.value()?);
                    match self.peek().ok_or(Error)? {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Ok(Value::Array(a));
                        }
                        _ => return Err(Error),
                    }
                }
            }
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'n' => self.lit("null", Value::Null),
            _ => {
                let start = self.i;
                while self
                    .b
                    .get(self.i)
                    .map_or(false, |c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    self.i += 1;
                }
                let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| Error)?;
                s.parse::<f64>().map(Value::Number).map_err(|_| Error)
            }
        }
    }
}

/// Parse a JSON document (the tests only ever ask for `Value`).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    let v = p.value()?;
    p.ws();
    if p.i == s.len() {
        Ok(v)
    } else {
        Err(Error)
    }
}
