//! # nimble
//!
//! Umbrella crate for the reproduction of *The Nimble XML Data Integration
//! System* (Draper, Halevy, Weld — ICDE 2001). It re-exports every
//! subsystem crate under one roof so examples and downstream users can
//! depend on a single crate:
//!
//! * [`xml`] — the XML data model, parser, serializer, paths, and shapes.
//! * [`xmlql`] — the XML-QL query language front end.
//! * [`algebra`] — the physical algebra and its Volcano-style executor.
//! * [`relational`] — the in-memory relational engine substrate.
//! * [`sources`] — source adapters and the availability/latency simulator.
//! * [`core`] — the mediator: metadata server, view expansion, fragment
//!   compiler, optimizer, distributed executor, partial results.
//! * [`cleaning`] — dynamic data cleaning: normalizers, matchers, the
//!   concordance database, merge/purge, lineage, and cleaning flows.
//! * [`store`] — local materialization, result caching, view selection.
//! * [`frontend`] — lenses, formatting templates, auth, and monitoring.
//! * [`trace`] — observability: spans, metrics registry, query log.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use nimble_algebra as algebra;
pub use nimble_cleaning as cleaning;
pub use nimble_core as core;
pub use nimble_frontend as frontend;
pub use nimble_relational as relational;
pub use nimble_sources as sources;
pub use nimble_store as store;
pub use nimble_trace as trace;
pub use nimble_xml as xml;
pub use nimble_xmlql as xmlql;
