//! Execution errors.

use std::fmt;

/// A runtime failure inside the physical executor.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// An expression referenced a column index outside the schema.
    ColumnOutOfRange { index: usize, width: usize },
    /// A call named a function the registry does not know.
    UnknownFunction(String),
    /// A function was called with the wrong number or type of arguments.
    FunctionArgs { func: String, message: String },
    /// Arithmetic on non-numeric operands, division by zero, etc.
    Arithmetic(String),
    /// An operator invariant was violated (mismatched union schemas,
    /// unsorted merge-join input, …).
    Operator(String),
    /// A failure raised by a source underneath a scan.
    Source { source: String, message: String },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ColumnOutOfRange { index, width } => {
                write!(f, "column {} out of range for width-{} tuple", index, width)
            }
            ExecError::UnknownFunction(name) => write!(f, "unknown function {:?}", name),
            ExecError::FunctionArgs { func, message } => {
                write!(f, "bad arguments to {}: {}", func, message)
            }
            ExecError::Arithmetic(m) => write!(f, "arithmetic error: {}", m),
            ExecError::Operator(m) => write!(f, "operator error: {}", m),
            ExecError::Source { source, message } => {
                write!(f, "source {:?} failed: {}", source, message)
            }
        }
    }
}

impl std::error::Error for ExecError {}
