//! Binding schemas and tuples.

use nimble_xml::Value;
use std::fmt;

/// A tuple of variable bindings; positions are interpreted through a
/// [`Schema`].
pub type Tuple = Vec<Value>;

/// Names the columns (query variables) of a tuple stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    vars: Vec<String>,
}

/// Why a schema could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The same variable name was supplied for two columns.
    DuplicateVar(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateVar(v) => {
                write!(f, "duplicate variable in schema: ${}", v)
            }
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// A schema over the given variable names. Names must be unique;
    /// panics otherwise (in every build profile). Use [`Schema::try_new`]
    /// when the names come from untrusted planner output.
    pub fn new(vars: Vec<String>) -> Schema {
        match Schema::try_new(vars) {
            Ok(s) => s,
            Err(e) => panic!("{}", e),
        }
    }

    /// A schema over the given variable names, rejecting duplicates with
    /// an error instead of panicking.
    pub fn try_new(vars: Vec<String>) -> Result<Schema, SchemaError> {
        for (i, v) in vars.iter().enumerate() {
            if vars[..i].contains(v) {
                return Err(SchemaError::DuplicateVar(v.clone()));
            }
        }
        Ok(Schema { vars })
    }

    /// An empty schema (the unit tuple stream).
    pub fn empty() -> Schema {
        Schema { vars: Vec::new() }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Variable names in column order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Column index of a variable.
    pub fn index_of(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// True if the schema contains the variable.
    pub fn contains(&self, var: &str) -> bool {
        self.index_of(var).is_some()
    }

    /// A new schema with one variable appended.
    pub fn with(&self, var: &str) -> Schema {
        let mut vars = self.vars.clone();
        vars.push(var.to_string());
        Schema::new(vars)
    }

    /// Concatenation of two schemas (used by joins). Name collisions keep
    /// the left copy as-is and rename the right occurrence `name#2`
    /// (`#3`, …) so every column stays addressable; planners typically
    /// project the duplicates away above the join.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut vars = self.vars.clone();
        for v in &other.vars {
            if !vars.contains(v) {
                vars.push(v.clone());
            } else {
                let mut n = 2;
                loop {
                    let candidate = format!("{}#{}", v, n);
                    if !vars.contains(&candidate) {
                        vars.push(candidate);
                        break;
                    }
                    n += 1;
                }
            }
        }
        Schema::new(vars)
    }

    /// Variables present in both schemas, in left order — the natural
    /// join keys.
    pub fn common_vars(&self, other: &Schema) -> Vec<String> {
        self.vars
            .iter()
            .filter(|v| other.contains(v))
            .cloned()
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.vars.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_contains() {
        let s = Schema::new(vec!["a".into(), "b".into()]);
        assert_eq!(s.index_of("b"), Some(1));
        assert!(s.contains("a"));
        assert!(!s.contains("c"));
    }

    #[test]
    fn concat_and_common() {
        let a = Schema::new(vec!["x".into(), "y".into()]);
        let b = Schema::new(vec!["z".into()]);
        assert_eq!(a.concat(&b).vars(), &["x", "y", "z"]);
        let c = Schema::new(vec!["y".into(), "w".into()]);
        assert_eq!(a.common_vars(&c), vec!["y"]);
    }

    #[test]
    #[should_panic]
    fn duplicate_vars_rejected() {
        let _ = Schema::new(vec!["a".into(), "a".into()]);
    }

    #[test]
    fn try_new_reports_offender() {
        assert_eq!(
            Schema::try_new(vec!["a".into(), "b".into(), "a".into()]),
            Err(SchemaError::DuplicateVar("a".into()))
        );
        assert!(Schema::try_new(vec!["a".into(), "b".into()]).is_ok());
    }
}
