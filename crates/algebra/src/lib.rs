//! # nimble-algebra
//!
//! The **physical algebra** of the Nimble reproduction and its
//! Volcano-style (open/next/close) executor.
//!
//! The paper (§3.1) distinguishes two roles an algebra can play — an
//! abstraction of the query language, and a model of the physical
//! operators the query processor implements — and deliberately designs
//! only the latter: "In our work we focussed on designing a physical
//! algebra, because it had direct impact on the design and implementation
//! of our system." This crate is that physical algebra. The mediator in
//! `nimble-core` translates XML-QL through a thin internal representation
//! *directly* into trees of these operators, with no logical-algebra
//! stage, exactly as the paper describes.
//!
//! ## Data model
//!
//! Operators exchange [`Tuple`]s of [`nimble_xml::Value`]s — bindings of
//! query variables to atomics, XML nodes, or lists — described by a
//! [`Schema`] of variable names. Node bindings are by reference into
//! shared documents, so tuples are cheap to copy and document order is
//! preserved end to end.
//!
//! ## Operators
//!
//! * [`ops::ValuesOp`] — in-memory tuple source.
//! * [`ops::FilterOp`] — predicate selection.
//! * [`ops::ProjectOp`] — projection / computed columns / renaming.
//! * [`ops::NestedLoopJoinOp`], [`ops::HashJoinOp`] (inner & left-outer),
//!   [`ops::MergeJoinOp`] — joins.
//! * [`ops::UnionOp`], [`ops::DistinctOp`] — set operations.
//! * [`ops::SortOp`] — order by value with document-order tiebreak.
//! * [`ops::GroupAggOp`] — grouping with COUNT/SUM/MIN/MAX/AVG/COLLECT.
//! * [`ops::NavigateOp`] — path navigation, the XML-specific operator
//!   that flattens "up, down and sideways" traversals into bindings.
//! * [`ops::LimitOp`] — row limiting.
//! * [`ops::ExchangeOp`] — scatter-gather over shard-local subtrees
//!   (parallel gather on the morsel pool, partial-merge on shard loss).
//!
//! ```
//! use nimble_algebra::{ops, Schema, ScalarExpr, CmpOp, FunctionRegistry, run_to_vec};
//! use nimble_xml::Value;
//! use std::sync::Arc;
//!
//! let schema = Schema::new(vec!["x".into()]);
//! let tuples = (0..10i64).map(|i| vec![Value::from(i)]).collect();
//! let scan = ops::ValuesOp::new(schema, tuples);
//! let pred = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::Col(0), ScalarExpr::lit(6i64));
//! let mut filter = ops::FilterOp::new(Box::new(scan), pred, Arc::new(FunctionRegistry::with_builtins()));
//! let rows = run_to_vec(&mut filter).unwrap();
//! assert_eq!(rows.len(), 3);
//! ```

#[cfg(test)]
mod differential_tests;
pub mod error;
pub mod expr;
pub mod funcs;
pub mod inspect;
pub mod lineage;
pub mod ops;
pub(crate) mod par;
pub mod schema;

pub use error::ExecError;
pub use expr::{AggFunc, ArithOp, CmpOp, ScalarExpr};
pub use par::{par_tasks, pool_stats};
pub use funcs::FunctionRegistry;
pub use inspect::{OpInfo, OrderEffect, SchemaRule};
pub use lineage::LineageMask;
pub use ops::Operator;
pub use schema::{Schema, SchemaError, Tuple};

/// Drain an operator into a vector (open → next* → close).
pub fn run_to_vec(op: &mut dyn Operator) -> Result<Vec<Tuple>, ExecError> {
    op.open()?;
    let mut out = Vec::new();
    while let Some(t) = op.next()? {
        out.push(t);
    }
    op.close();
    Ok(out)
}

/// Drain an operator through [`Operator::next_batch`] in batches of
/// `batch_size` tuples (open → next_batch* → close). Returns the tuples
/// plus the number of batch calls that produced rows — the engine feeds
/// that into its `engine.exec.batches` counter.
pub fn run_to_vec_batched(
    op: &mut dyn Operator,
    batch_size: usize,
) -> Result<(Vec<Tuple>, u64), ExecError> {
    let batch_size = batch_size.max(1);
    op.open()?;
    let mut out = Vec::new();
    let mut batches = 0u64;
    loop {
        let n = op.next_batch(&mut out, batch_size)?;
        if n == 0 {
            break;
        }
        batches += 1;
    }
    op.close();
    Ok((out, batches))
}

/// Render an operator tree as an indented EXPLAIN listing with row counts
/// (row counts are populated after execution).
pub fn explain(op: &dyn Operator) -> String {
    explain_walk(op, false)
}

/// EXPLAIN ANALYZE rendering: the same listing as [`explain`], with each
/// metered node (see [`ops::MeteredOp`]) annotated with its actual row
/// count and measured open/next times. Times are inclusive of children,
/// so a node's cost is read as `total - sum(children)`.
pub fn explain_analyze(op: &dyn Operator) -> String {
    explain_walk(op, true)
}

fn explain_walk(op: &dyn Operator, analyze: bool) -> String {
    let mut out = String::new();
    fn walk(op: &dyn Operator, depth: usize, analyze: bool, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&op.describe());
        if op.rows_out() > 0 {
            out.push_str(&format!("  [rows={}]", op.rows_out()));
        }
        if let Some(est) = op.est_rows() {
            out.push_str(&format!("  [est={}]", est));
        }
        if analyze {
            if let Some(masks) = op.lineage() {
                if !masks.is_empty() {
                    out.push_str(&format!("  [src={}]", lineage::distinct_masks(masks)));
                }
            }
            if let Some(p) = op.profile() {
                out.push_str(&format!(
                    "  (actual rows={} open={:.3}ms next={:.3}ms)",
                    p.rows,
                    p.open_ns as f64 / 1e6,
                    p.next_ns as f64 / 1e6
                ));
                if p.mem_bytes > 0 {
                    out.push_str(&format!("  [mem={}]", p.mem_bytes));
                }
            } else if op.mem_bytes() > 0 {
                out.push_str(&format!("  [mem={}]", op.mem_bytes()));
            }
        }
        out.push('\n');
        for c in op.children() {
            walk(c, depth + 1, analyze, out);
        }
    }
    walk(op, 0, analyze, &mut out);
    out
}
