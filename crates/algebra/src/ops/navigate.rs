//! Path navigation — the XML-specific operator.
//!
//! For each input tuple, evaluate a path from a node-valued column and
//! emit one output tuple per reached value (a flattening "unnest"). This
//! is how "navigation-style access … up, down and sideways" becomes a
//! relational-looking stream the rest of the algebra can join and filter.

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::inspect::{OpInfo, OrderEffect, SchemaRule};
use crate::schema::{Schema, Tuple};
use nimble_xml::{Path, Value};

/// Unnests `path` applied to column `input_col` into new column
/// `out_var`.
pub struct NavigateOp {
    child: BoxedOp,
    input_col: usize,
    path: Path,
    schema: Schema,
    /// When true, tuples whose navigation yields nothing are emitted once
    /// with a null binding (outer semantics); when false they are dropped.
    keep_empty: bool,
    pending: Vec<Tuple>,
    pending_cursor: usize,
    rows_out: u64,
    scratch: Vec<Tuple>,
}

impl NavigateOp {
    pub fn new(
        child: BoxedOp,
        input_col: usize,
        path: Path,
        out_var: &str,
        keep_empty: bool,
    ) -> Self {
        let schema = child.schema().with(out_var);
        NavigateOp {
            child,
            input_col,
            path,
            schema,
            keep_empty,
            pending: Vec::new(),
            pending_cursor: 0,
            rows_out: 0,
            scratch: Vec::new(),
        }
    }
}

impl Operator for NavigateOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.pending.clear();
        self.pending_cursor = 0;
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            if self.pending_cursor < self.pending.len() {
                let t = self.pending[self.pending_cursor].clone();
                self.pending_cursor += 1;
                self.rows_out += 1;
                return Ok(Some(t));
            }
            match self.child.next()? {
                None => return Ok(None),
                Some(t) => {
                    self.pending.clear();
                    self.pending_cursor = 0;
                    let results = match &t[self.input_col] {
                        Value::Node(n) => self.path.eval(n),
                        _ => Vec::new(),
                    };
                    if results.is_empty() {
                        if self.keep_empty {
                            let mut out = t.clone();
                            out.push(Value::null());
                            self.pending.push(out);
                        }
                    } else {
                        for r in results {
                            let mut out = t.clone();
                            out.push(r);
                            self.pending.push(out);
                        }
                    }
                }
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let mut appended = 0;
        // Drain anything a previous `next()` call left pending first.
        while self.pending_cursor < self.pending.len() && appended < max {
            out.push(self.pending[self.pending_cursor].clone());
            self.pending_cursor += 1;
            appended += 1;
        }
        while appended < max {
            self.scratch.clear();
            let pulled = self.child.next_batch(&mut self.scratch, max - appended)?;
            if pulled == 0 {
                break;
            }
            for mut t in self.scratch.drain(..) {
                let mut results = match &t[self.input_col] {
                    Value::Node(n) => self.path.eval(n),
                    _ => Vec::new(),
                };
                // Clone the input tuple for all matches but the last,
                // which takes ownership (may overshoot `max`: one input
                // row's fan-out is never split across batches).
                match results.pop() {
                    None => {
                        if self.keep_empty {
                            t.push(Value::null());
                            out.push(t);
                            appended += 1;
                        }
                    }
                    Some(last) => {
                        appended += results.len() + 1;
                        for r in results {
                            let mut row = Vec::with_capacity(t.len() + 1);
                            row.extend_from_slice(&t);
                            row.push(r);
                            out.push(row);
                        }
                        t.push(last);
                        out.push(t);
                    }
                }
            }
        }
        self.rows_out += appended as u64;
        Ok(appended)
    }

    fn close(&mut self) {
        self.child.close();
        self.pending.clear();
        self.scratch = Vec::new();
    }

    fn describe(&self) -> String {
        format!(
            "Navigate col {} via {} -> {}",
            self.input_col,
            self.path,
            self.schema.vars().last().map(String::as_str).unwrap_or("?")
        )
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::new("Navigate", SchemaRule::Extends(0))
            .with_order(OrderEffect::Preserves(0))
            .with_child_col(0, "navigation input", self.input_col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ValuesOp;
    use crate::run_to_vec;
    use nimble_xml::parse;

    #[test]
    fn unnests_path_matches() {
        let doc = parse("<order><item>a</item><item>b</item></order>").unwrap();
        let schema = Schema::new(vec!["o".into()]);
        let src = ValuesOp::new(schema, vec![vec![Value::Node(doc.root())]]);
        let mut op = NavigateOp::new(
            Box::new(src),
            0,
            Path::parse("item").unwrap(),
            "i",
            false,
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1].lexical(), "a");
        assert_eq!(rows[1][1].lexical(), "b");
        assert_eq!(op.schema().vars(), &["o", "i"]);
    }

    #[test]
    fn keep_empty_emits_null() {
        let doc = parse("<order/>").unwrap();
        let schema = Schema::new(vec!["o".into()]);
        let src = ValuesOp::new(schema.clone(), vec![vec![Value::Node(doc.root())]]);
        let mut drop_op = NavigateOp::new(
            Box::new(src),
            0,
            Path::parse("item").unwrap(),
            "i",
            false,
        );
        assert!(run_to_vec(&mut drop_op).unwrap().is_empty());

        let src = ValuesOp::new(schema, vec![vec![Value::Node(doc.root())]]);
        let mut keep_op =
            NavigateOp::new(Box::new(src), 0, Path::parse("item").unwrap(), "i", true);
        let rows = run_to_vec(&mut keep_op).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0][1].is_null());
    }

    #[test]
    fn non_node_input_behaves_like_empty() {
        let schema = Schema::new(vec!["x".into()]);
        let src = ValuesOp::new(schema, vec![vec![Value::from(42i64)]]);
        let mut op = NavigateOp::new(
            Box::new(src),
            0,
            Path::parse("item").unwrap(),
            "i",
            false,
        );
        assert!(run_to_vec(&mut op).unwrap().is_empty());
    }
}
