//! Projection: compute output columns from input tuples (subset, rename,
//! or derived expressions).

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::expr::ScalarExpr;
use crate::funcs::FunctionRegistry;
use crate::inspect::{OpInfo, OrderEffect, SchemaRule};
use crate::schema::{Schema, Tuple};
use std::sync::Arc;

/// One output column: a name and the expression that produces it.
pub struct ProjectOp {
    child: BoxedOp,
    exprs: Vec<ScalarExpr>,
    schema: Schema,
    funcs: Arc<FunctionRegistry>,
    rows_out: u64,
    /// When every output column is a plain `Col` reference with distinct
    /// indices, the source columns can be *moved* out of owned input
    /// tuples instead of cloned. `None` when any column is computed or
    /// a column is referenced twice.
    move_plan: Option<Vec<usize>>,
    scratch: Vec<Tuple>,
    est_rows: Option<u64>,
}

fn move_plan_of(exprs: &[ScalarExpr]) -> Option<Vec<usize>> {
    let mut cols = Vec::with_capacity(exprs.len());
    for e in exprs {
        match e {
            ScalarExpr::Col(i) if !cols.contains(i) => cols.push(*i),
            _ => return None,
        }
    }
    Some(cols)
}

impl ProjectOp {
    /// `columns` pairs output names with expressions over the child's
    /// schema.
    pub fn new(
        child: BoxedOp,
        columns: Vec<(String, ScalarExpr)>,
        funcs: Arc<FunctionRegistry>,
    ) -> Self {
        let (names, exprs): (Vec<String>, Vec<ScalarExpr>) = columns.into_iter().unzip();
        let move_plan = move_plan_of(&exprs);
        ProjectOp {
            child,
            exprs,
            schema: Schema::new(names),
            funcs,
            rows_out: 0,
            move_plan,
            scratch: Vec::new(),
            est_rows: None,
        }
    }

    /// Keep only the named columns of the child (classic projection).
    pub fn keep(child: BoxedOp, vars: &[&str], funcs: Arc<FunctionRegistry>) -> Self {
        let columns = vars
            .iter()
            .map(|v| {
                let idx = child
                    .schema()
                    .index_of(v)
                    .unwrap_or_else(|| panic!("projection var {:?} not in {}", v, child.schema()));
                (v.to_string(), ScalarExpr::Col(idx))
            })
            .collect();
        ProjectOp::new(child, columns, funcs)
    }
}

impl Operator for ProjectOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        match self.child.next()? {
            None => Ok(None),
            Some(t) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(e.eval(&t, &self.funcs)?);
                }
                self.rows_out += 1;
                Ok(Some(out))
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let mut appended = 0;
        while appended < max {
            self.scratch.clear();
            let pulled = self.child.next_batch(&mut self.scratch, max - appended)?;
            if pulled == 0 {
                break;
            }
            if let Some(cols) = &self.move_plan {
                // Pure column selection over owned tuples: move the
                // values instead of cloning them.
                for mut t in self.scratch.drain(..) {
                    let mut row = Vec::with_capacity(cols.len());
                    for &i in cols {
                        row.push(std::mem::replace(&mut t[i], nimble_xml::Value::null()));
                    }
                    out.push(row);
                }
            } else {
                for t in self.scratch.drain(..) {
                    let mut row = Vec::with_capacity(self.exprs.len());
                    for e in &self.exprs {
                        row.push(e.eval(&t, &self.funcs)?);
                    }
                    out.push(row);
                }
            }
            appended += pulled;
        }
        self.rows_out += appended as u64;
        Ok(appended)
    }

    fn close(&mut self) {
        self.child.close();
        self.scratch = Vec::new();
    }

    fn describe(&self) -> String {
        format!("Project {}", self.schema)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        let map = self
            .exprs
            .iter()
            .map(|e| match e {
                ScalarExpr::Col(i) => Some(*i),
                _ => None,
            })
            .collect();
        let mut info = OpInfo::new("Project", SchemaRule::PerColumnExprs)
            .with_order(OrderEffect::Preserves(0))
            .with_projection_map(map);
        for (e, name) in self.exprs.iter().zip(self.schema.vars()) {
            info = info.with_child_expr(0, format!("column ${}", name), e.clone());
        }
        info
    }

    fn est_rows(&self) -> Option<u64> {
        self.est_rows
    }

    fn set_est_rows(&mut self, rows: u64) {
        self.est_rows = Some(rows);
    }

    fn lineage(&self) -> Option<&[crate::LineageMask]> {
        // Projection is 1:1 over emission order, so the child's lineage
        // slice is exactly this operator's.
        self.child.lineage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ArithOp;
    use crate::ops::testutil::{int_source, ints};
    use crate::run_to_vec;

    #[test]
    fn keep_subset() {
        let src = int_source(&["a", "b", "c"], &[&[1, 2, 3]]);
        let mut op = ProjectOp::keep(
            Box::new(src),
            &["c", "a"],
            Arc::new(FunctionRegistry::with_builtins()),
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(ints(&rows[0]), [3, 1]);
        assert_eq!(op.schema().vars(), &["c", "a"]);
    }

    #[test]
    fn computed_column() {
        let src = int_source(&["a"], &[&[10], &[20]]);
        let mut op = ProjectOp::new(
            Box::new(src),
            vec![(
                "double".into(),
                ScalarExpr::Arith(
                    ArithOp::Mul,
                    Box::new(ScalarExpr::Col(0)),
                    Box::new(ScalarExpr::lit(2i64)),
                ),
            )],
            Arc::new(FunctionRegistry::with_builtins()),
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(ints(&rows[1]), [40]);
    }
}
