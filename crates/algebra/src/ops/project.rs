//! Projection: compute output columns from input tuples (subset, rename,
//! or derived expressions).

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::expr::ScalarExpr;
use crate::funcs::FunctionRegistry;
use crate::inspect::{OpInfo, OrderEffect, SchemaRule};
use crate::schema::{Schema, Tuple};
use std::sync::Arc;

/// One output column: a name and the expression that produces it.
pub struct ProjectOp {
    child: BoxedOp,
    exprs: Vec<ScalarExpr>,
    schema: Schema,
    funcs: Arc<FunctionRegistry>,
    rows_out: u64,
}

impl ProjectOp {
    /// `columns` pairs output names with expressions over the child's
    /// schema.
    pub fn new(
        child: BoxedOp,
        columns: Vec<(String, ScalarExpr)>,
        funcs: Arc<FunctionRegistry>,
    ) -> Self {
        let (names, exprs): (Vec<String>, Vec<ScalarExpr>) = columns.into_iter().unzip();
        ProjectOp {
            child,
            exprs,
            schema: Schema::new(names),
            funcs,
            rows_out: 0,
        }
    }

    /// Keep only the named columns of the child (classic projection).
    pub fn keep(child: BoxedOp, vars: &[&str], funcs: Arc<FunctionRegistry>) -> Self {
        let columns = vars
            .iter()
            .map(|v| {
                let idx = child
                    .schema()
                    .index_of(v)
                    .unwrap_or_else(|| panic!("projection var {:?} not in {}", v, child.schema()));
                (v.to_string(), ScalarExpr::Col(idx))
            })
            .collect();
        ProjectOp::new(child, columns, funcs)
    }
}

impl Operator for ProjectOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        match self.child.next()? {
            None => Ok(None),
            Some(t) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(e.eval(&t, &self.funcs)?);
                }
                self.rows_out += 1;
                Ok(Some(out))
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn describe(&self) -> String {
        format!("Project {}", self.schema)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        let map = self
            .exprs
            .iter()
            .map(|e| match e {
                ScalarExpr::Col(i) => Some(*i),
                _ => None,
            })
            .collect();
        let mut info = OpInfo::new("Project", SchemaRule::PerColumnExprs)
            .with_order(OrderEffect::Preserves(0))
            .with_projection_map(map);
        for (e, name) in self.exprs.iter().zip(self.schema.vars()) {
            info = info.with_child_expr(0, format!("column ${}", name), e.clone());
        }
        info
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ArithOp;
    use crate::ops::testutil::{int_source, ints};
    use crate::run_to_vec;

    #[test]
    fn keep_subset() {
        let src = int_source(&["a", "b", "c"], &[&[1, 2, 3]]);
        let mut op = ProjectOp::keep(
            Box::new(src),
            &["c", "a"],
            Arc::new(FunctionRegistry::with_builtins()),
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(ints(&rows[0]), [3, 1]);
        assert_eq!(op.schema().vars(), &["c", "a"]);
    }

    #[test]
    fn computed_column() {
        let src = int_source(&["a"], &[&[10], &[20]]);
        let mut op = ProjectOp::new(
            Box::new(src),
            vec![(
                "double".into(),
                ScalarExpr::Arith(
                    ArithOp::Mul,
                    Box::new(ScalarExpr::Col(0)),
                    Box::new(ScalarExpr::lit(2i64)),
                ),
            )],
            Arc::new(FunctionRegistry::with_builtins()),
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(ints(&rows[1]), [40]);
    }
}
