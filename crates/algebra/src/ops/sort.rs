//! Sorting with document-order tiebreak.

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::inspect::{OpInfo, OrderEffect, SchemaRule};
use crate::schema::{Schema, Tuple};
use std::cmp::Ordering;

/// One sort key: a column and a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub column: usize,
    pub descending: bool,
}

/// Materializing sort. Ties preserve the input order (stable sort), which
/// for single-document scans means **document order is the default
/// order** — the XML requirement the paper highlights.
pub struct SortOp {
    child: BoxedOp,
    keys: Vec<SortKey>,
    buffer: Vec<Tuple>,
    cursor: usize,
    rows_out: u64,
}

impl SortOp {
    pub fn new(child: BoxedOp, keys: Vec<SortKey>) -> Self {
        SortOp {
            child,
            keys,
            buffer: Vec::new(),
            cursor: 0,
            rows_out: 0,
        }
    }
}

impl Operator for SortOp {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.child.open()?;
        self.buffer.clear();
        while let Some(t) = self.child.next()? {
            self.buffer.push(t);
        }
        self.child.close();
        let keys = self.keys.clone();
        self.buffer.sort_by(|a, b| {
            for k in &keys {
                let ord = a[k.column].total_cmp(&b[k.column]);
                let ord = if k.descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        self.cursor = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.cursor < self.buffer.len() {
            let t = self.buffer[self.cursor].clone();
            self.cursor += 1;
            self.rows_out += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) {
        self.buffer.clear();
    }

    fn describe(&self) -> String {
        let keys: Vec<String> = self
            .keys
            .iter()
            .map(|k| {
                format!(
                    "{}{}",
                    k.column,
                    if k.descending { " desc" } else { "" }
                )
            })
            .collect();
        format!("Sort by [{}]", keys.join(", "))
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::new("Sort", SchemaRule::Inherit(0))
            .with_order(OrderEffect::Establishes)
            .with_sort_keys(self.keys.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{int_source, ints};
    use crate::run_to_vec;

    #[test]
    fn sorts_ascending_and_descending() {
        let src = int_source(&["x", "y"], &[&[3, 1], &[1, 2], &[2, 3]]);
        let mut op = SortOp::new(
            Box::new(src),
            vec![SortKey {
                column: 0,
                descending: false,
            }],
        );
        let rows: Vec<i64> = run_to_vec(&mut op).unwrap().iter().map(|t| ints(t)[0]).collect();
        assert_eq!(rows, [1, 2, 3]);

        let src = int_source(&["x"], &[&[3], &[1], &[2]]);
        let mut op = SortOp::new(
            Box::new(src),
            vec![SortKey {
                column: 0,
                descending: true,
            }],
        );
        let rows: Vec<i64> = run_to_vec(&mut op).unwrap().iter().map(|t| ints(t)[0]).collect();
        assert_eq!(rows, [3, 2, 1]);
    }

    #[test]
    fn stable_on_ties() {
        let src = int_source(&["k", "seq"], &[&[1, 0], &[1, 1], &[0, 2], &[1, 3]]);
        let mut op = SortOp::new(
            Box::new(src),
            vec![SortKey {
                column: 0,
                descending: false,
            }],
        );
        let rows: Vec<Vec<i64>> = run_to_vec(&mut op).unwrap().iter().map(ints).collect();
        // Ties on k keep input (document) order of seq.
        assert_eq!(rows, vec![vec![0, 2], vec![1, 0], vec![1, 1], vec![1, 3]]);
    }

    #[test]
    fn multi_key() {
        let src = int_source(&["a", "b"], &[&[1, 2], &[1, 1], &[0, 9]]);
        let mut op = SortOp::new(
            Box::new(src),
            vec![
                SortKey {
                    column: 0,
                    descending: false,
                },
                SortKey {
                    column: 1,
                    descending: false,
                },
            ],
        );
        let rows: Vec<Vec<i64>> = run_to_vec(&mut op).unwrap().iter().map(ints).collect();
        assert_eq!(rows, vec![vec![0, 9], vec![1, 1], vec![1, 2]]);
    }
}
