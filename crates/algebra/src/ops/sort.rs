//! Sorting with document-order tiebreak.

use super::{BoxedOp, Operator, ParProfile};
use crate::error::ExecError;
use crate::inspect::{OpInfo, OrderEffect, SchemaRule};
use crate::lineage::LineageMask;
use crate::par;
use crate::schema::{Schema, Tuple};
use nimble_xml::{Atomic, Value};
use std::cmp::Ordering;

/// One sort key: a column and a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub column: usize,
    pub descending: bool,
}

/// Materializing sort. Ties preserve the input order (stable sort), which
/// for single-document scans means **document order is the default
/// order** — the XML requirement the paper highlights.
pub struct SortOp {
    child: BoxedOp,
    keys: Vec<SortKey>,
    buffer: Vec<Tuple>,
    cursor: usize,
    rows_out: u64,
    vectorized: bool,
    parallel: bool,
    est_rows: Option<u64>,
    /// Buffer footprint, computed once after materialization.
    mem_bytes: u64,
    /// Busy times of the parallel key-extraction workers (see
    /// [`ParProfile`]).
    par_prof: Option<ParProfile>,
    /// Lineage permuted alongside the buffer (tracking iff the child
    /// tracks); `lineage()` exposes the emitted prefix.
    lin: Option<Vec<LineageMask>>,
}

impl SortOp {
    pub fn new(child: BoxedOp, keys: Vec<SortKey>) -> Self {
        SortOp {
            child,
            keys,
            buffer: Vec::new(),
            cursor: 0,
            rows_out: 0,
            vectorized: false,
            parallel: false,
            est_rows: None,
            mem_bytes: 0,
            par_prof: None,
            lin: None,
        }
    }

    /// Switch to the vectorized kernel: batch ingest plus a cached-key
    /// `sort_unstable` (with index tiebreak, so ordering stays stable).
    /// `parallel` additionally extracts sort keys on scoped threads for
    /// large inputs.
    pub fn vectorized(mut self, parallel: bool) -> Self {
        self.vectorized = true;
        self.parallel = parallel;
        self
    }

    /// Seed comparator: full `Value::total_cmp` per comparison, stable.
    fn sort_scalar(&mut self) {
        let keys = self.keys.clone();
        let cmp = |a: &Tuple, b: &Tuple| {
            for k in &keys {
                let ord = a[k.column].total_cmp(&b[k.column]);
                let ord = if k.descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        };
        if let Some(lin) = self.lin.as_mut() {
            // Lineage must follow its tuple through the reorder, so sort
            // a stable index permutation and apply it to both vectors.
            let mut idx: Vec<usize> = (0..self.buffer.len()).collect();
            idx.sort_by(|&ia, &ib| cmp(&self.buffer[ia], &self.buffer[ib]));
            let mut sorted = Vec::with_capacity(self.buffer.len());
            let mut sorted_lin = Vec::with_capacity(lin.len());
            for &i in &idx {
                sorted.push(std::mem::take(&mut self.buffer[i]));
                sorted_lin.push(lin.get(i).copied().unwrap_or_default());
            }
            self.buffer = sorted;
            *lin = sorted_lin;
        } else {
            self.buffer.sort_by(cmp);
        }
    }

    /// Cached-key sort: atomize every key column once, then
    /// `sort_unstable` over `(keys, input index)` so each comparison is
    /// an `Atomic::total_cmp` instead of a fresh atomization.
    ///
    /// Only exact when every key value is `Value::Atomic`: node-node
    /// comparisons tiebreak on document order and lists compare
    /// element-wise, neither of which survives atomization — those
    /// inputs take the scalar comparator.
    fn sort_vectorized(&mut self) {
        let all_atomic = self.buffer.iter().all(|t| {
            self.keys
                .iter()
                .all(|k| matches!(t[k.column], Value::Atomic(_)))
        });
        if !all_atomic {
            self.sort_scalar();
            return;
        }
        let keys = &self.keys;
        let extract = |base: usize, chunk: &[Tuple]| -> Vec<(Vec<Atomic>, usize)> {
            chunk
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    (
                        keys.iter().map(|k| t[k.column].atomize()).collect(),
                        base + i,
                    )
                })
                .collect()
        };
        let mut par_prof = None;
        let mut keyed = if self.parallel {
            match par::par_chunks_profiled(&self.buffer, extract) {
                Some((keyed, prof)) => {
                    par_prof = Some(prof);
                    Some(keyed)
                }
                None => {
                    // Parallel mode requested, input below the threshold:
                    // record the skip for utilization telemetry.
                    par_prof = Some(ParProfile::default());
                    None
                }
            }
        } else {
            None
        }
        .unwrap_or_else(|| extract(0, &self.buffer));
        let dirs: Vec<bool> = keys.iter().map(|k| k.descending).collect();
        let cmp = |(ka, ia): &(Vec<Atomic>, usize), (kb, ib): &(Vec<Atomic>, usize)| {
            for ((a, b), desc) in ka.iter().zip(kb.iter()).zip(&dirs) {
                let ord = a.total_cmp(b);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            ia.cmp(ib)
        };
        // Parallel path: chunk-sort the keyed rows on the pool, k-way
        // merge on this thread. The input-index tiebreak makes `cmp` a
        // total order, so the merge is deterministic.
        let pool = (self.parallel && keyed.len() >= par::PAR_THRESHOLD)
            .then(par::pool)
            .flatten();
        let keyed = match pool {
            Some(p) => par::par_sort_on(p, keyed, &cmp),
            None => {
                keyed.sort_unstable_by(cmp);
                keyed
            }
        };
        let mut sorted = Vec::with_capacity(self.buffer.len());
        let mut sorted_lin = self
            .lin
            .as_ref()
            .map(|l| Vec::with_capacity(l.len()));
        for (_, i) in keyed {
            sorted.push(std::mem::take(&mut self.buffer[i]));
            if let (Some(sl), Some(l)) = (sorted_lin.as_mut(), self.lin.as_ref()) {
                sl.push(l.get(i).copied().unwrap_or_default());
            }
        }
        self.buffer = sorted;
        if sorted_lin.is_some() {
            self.lin = sorted_lin;
        }
        self.par_prof = par_prof;
    }
}

impl Operator for SortOp {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.mem_bytes = 0;
        self.par_prof = None;
        self.child.open()?;
        self.buffer.clear();
        if self.vectorized {
            while self
                .child
                .next_batch(&mut self.buffer, super::DEFAULT_BATCH_SIZE)?
                > 0
            {}
        } else {
            while let Some(t) = self.child.next()? {
                self.buffer.push(t);
            }
        }
        // Snapshot the child's lineage before closing it: the ingest was
        // a full drain, so its masks align 1:1 with `buffer`.
        self.lin = self.child.lineage().map(|l| l.to_vec());
        self.child.close();
        if self.vectorized {
            self.sort_vectorized();
        } else {
            self.sort_scalar();
        }
        self.mem_bytes = super::tuples_mem_bytes(&self.buffer);
        self.cursor = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.cursor < self.buffer.len() {
            let t = self.buffer[self.cursor].clone();
            self.cursor += 1;
            self.rows_out += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let n = max.min(self.buffer.len().saturating_sub(self.cursor));
        out.extend_from_slice(&self.buffer[self.cursor..self.cursor + n]);
        self.cursor += n;
        self.rows_out += n as u64;
        Ok(n)
    }

    fn close(&mut self) {
        self.buffer.clear();
    }

    fn describe(&self) -> String {
        let keys: Vec<String> = self
            .keys
            .iter()
            .map(|k| {
                format!(
                    "{}{}",
                    k.column,
                    if k.descending { " desc" } else { "" }
                )
            })
            .collect();
        format!("Sort by [{}]", keys.join(", "))
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::new("Sort", SchemaRule::Inherit(0))
            .with_order(OrderEffect::Establishes)
            .with_sort_keys(self.keys.clone())
    }

    fn est_rows(&self) -> Option<u64> {
        self.est_rows
    }

    fn set_est_rows(&mut self, rows: u64) {
        self.est_rows = Some(rows);
    }

    fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    fn par_profile(&self) -> Option<&ParProfile> {
        self.par_prof.as_ref()
    }

    fn lineage(&self) -> Option<&[LineageMask]> {
        // Only the prefix handed out so far counts as "emitted".
        self.lin
            .as_deref()
            .map(|l| &l[..self.cursor.min(l.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{int_source, ints};
    use crate::run_to_vec;

    #[test]
    fn sorts_ascending_and_descending() {
        let src = int_source(&["x", "y"], &[&[3, 1], &[1, 2], &[2, 3]]);
        let mut op = SortOp::new(
            Box::new(src),
            vec![SortKey {
                column: 0,
                descending: false,
            }],
        );
        let rows: Vec<i64> = run_to_vec(&mut op).unwrap().iter().map(|t| ints(t)[0]).collect();
        assert_eq!(rows, [1, 2, 3]);

        let src = int_source(&["x"], &[&[3], &[1], &[2]]);
        let mut op = SortOp::new(
            Box::new(src),
            vec![SortKey {
                column: 0,
                descending: true,
            }],
        );
        let rows: Vec<i64> = run_to_vec(&mut op).unwrap().iter().map(|t| ints(t)[0]).collect();
        assert_eq!(rows, [3, 2, 1]);
    }

    #[test]
    fn stable_on_ties() {
        let src = int_source(&["k", "seq"], &[&[1, 0], &[1, 1], &[0, 2], &[1, 3]]);
        let mut op = SortOp::new(
            Box::new(src),
            vec![SortKey {
                column: 0,
                descending: false,
            }],
        );
        let rows: Vec<Vec<i64>> = run_to_vec(&mut op).unwrap().iter().map(ints).collect();
        // Ties on k keep input (document) order of seq.
        assert_eq!(rows, vec![vec![0, 2], vec![1, 0], vec![1, 1], vec![1, 3]]);
    }

    #[test]
    fn multi_key() {
        let src = int_source(&["a", "b"], &[&[1, 2], &[1, 1], &[0, 9]]);
        let mut op = SortOp::new(
            Box::new(src),
            vec![
                SortKey {
                    column: 0,
                    descending: false,
                },
                SortKey {
                    column: 1,
                    descending: false,
                },
            ],
        );
        let rows: Vec<Vec<i64>> = run_to_vec(&mut op).unwrap().iter().map(ints).collect();
        assert_eq!(rows, vec![vec![0, 9], vec![1, 1], vec![1, 2]]);
    }
}
