//! Join operators: nested-loop (arbitrary predicates), hash (equi-join,
//! inner and left-outer), and merge (pre-sorted single-key inputs).
//!
//! All joins output `left.schema ++ right.schema` (planners deduplicate
//! shared variables with a projection above the join when needed).

use super::{BoxedOp, Operator, ParProfile, SortKey};
use crate::error::ExecError;
use crate::expr::ScalarExpr;
use crate::funcs::FunctionRegistry;
use crate::inspect::{OpInfo, SchemaRule};
use crate::lineage::LineageMask;
use crate::par;
use crate::schema::{Schema, Tuple};
use nimble_xml::{Sym, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Inner or left-outer semantics (outer pads right columns with nulls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    LeftOuter,
}

fn concat_tuples(left: &Tuple, right: &Tuple) -> Tuple {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend(left.iter().cloned());
    out.extend(right.iter().cloned());
    out
}

// --- Nested-loop join ---

/// Join with an arbitrary predicate over the concatenated tuple; the
/// right side is materialized at open.
pub struct NestedLoopJoinOp {
    left: BoxedOp,
    right: BoxedOp,
    predicate: Option<ScalarExpr>,
    join_type: JoinType,
    schema: Schema,
    funcs: Arc<FunctionRegistry>,
    right_rows: Vec<Tuple>,
    current_left: Option<Tuple>,
    right_cursor: usize,
    current_matched: bool,
    rows_out: u64,
    est_rows: Option<u64>,
    mem_bytes: u64,
    /// Right-side lineage snapshot, aligned with `right_rows` (present
    /// iff the right child tracks).
    right_lin: Option<Vec<LineageMask>>,
    /// Lineage of emitted tuples (tracking iff *both* children track).
    lin: Option<Vec<LineageMask>>,
    cur_left_mask: LineageMask,
    left_consumed: usize,
}

impl NestedLoopJoinOp {
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        predicate: Option<ScalarExpr>,
        join_type: JoinType,
        funcs: Arc<FunctionRegistry>,
    ) -> Self {
        let schema = left.schema().concat(right.schema());
        NestedLoopJoinOp {
            left,
            right,
            predicate,
            join_type,
            schema,
            funcs,
            right_rows: Vec::new(),
            current_left: None,
            right_cursor: 0,
            current_matched: false,
            rows_out: 0,
            est_rows: None,
            mem_bytes: 0,
            right_lin: None,
            lin: None,
            cur_left_mask: LineageMask::EMPTY,
            left_consumed: 0,
        }
    }

    fn null_padded(&self, left: &Tuple) -> Tuple {
        let mut out = left.clone();
        out.extend(std::iter::repeat_n(Value::null(), self.right.schema().len()));
        out
    }
}

impl Operator for NestedLoopJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.left.open()?;
        self.right.open()?;
        self.right_rows.clear();
        while let Some(t) = self.right.next()? {
            self.right_rows.push(t);
        }
        self.mem_bytes = super::tuples_mem_bytes(&self.right_rows);
        self.right_lin = self.right.lineage().map(|l| l.to_vec());
        self.right.close();
        self.lin = (self.right_lin.is_some() && self.left.lineage().is_some()).then(Vec::new);
        self.cur_left_mask = LineageMask::EMPTY;
        self.left_consumed = 0;
        self.current_left = None;
        self.right_cursor = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            let left = match self.current_left.clone() {
                Some(t) => t,
                None => match self.left.next()? {
                    None => return Ok(None),
                    Some(t) => {
                        if self.lin.is_some() {
                            let idx = self.left_consumed;
                            self.left_consumed += 1;
                            self.cur_left_mask = self
                                .left
                                .lineage()
                                .and_then(|l| l.get(idx))
                                .copied()
                                .unwrap_or_default();
                        }
                        self.current_left = Some(t.clone());
                        self.right_cursor = 0;
                        self.current_matched = false;
                        t
                    }
                },
            };
            while self.right_cursor < self.right_rows.len() {
                let right = &self.right_rows[self.right_cursor];
                self.right_cursor += 1;
                let combined = concat_tuples(&left, right);
                let ok = match &self.predicate {
                    None => true,
                    Some(p) => p.eval_bool(&combined, &self.funcs)?,
                };
                if ok {
                    self.current_matched = true;
                    if let Some(lin) = &mut self.lin {
                        let rm = self
                            .right_lin
                            .as_ref()
                            .and_then(|r| r.get(self.right_cursor - 1))
                            .copied()
                            .unwrap_or_default();
                        lin.push(self.cur_left_mask.or(rm));
                    }
                    self.rows_out += 1;
                    return Ok(Some(combined));
                }
            }
            // Exhausted right side for this left tuple.
            let emit_outer = self.join_type == JoinType::LeftOuter && !self.current_matched;
            self.current_left = None;
            if emit_outer {
                // A null-padded row owes its existence to the left input
                // alone.
                if let Some(lin) = &mut self.lin {
                    lin.push(self.cur_left_mask);
                }
                self.rows_out += 1;
                return Ok(Some(self.null_padded(&left)));
            }
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right_rows.clear();
        self.right_lin = None;
    }

    fn describe(&self) -> String {
        format!(
            "NestedLoopJoin ({:?}) on {:?}",
            self.join_type, self.predicate
        )
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        let mut info = OpInfo::new("NestedLoopJoin", SchemaRule::Concat);
        if let Some(p) = &self.predicate {
            info = info.with_join_predicate(p.clone());
        }
        info
    }

    fn est_rows(&self) -> Option<u64> {
        self.est_rows
    }

    fn set_est_rows(&mut self, rows: u64) {
        self.est_rows = Some(rows);
    }

    fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    fn lineage(&self) -> Option<&[LineageMask]> {
        self.lin.as_deref()
    }
}

// --- Hash join ---

/// Equi-join: builds a hash table on the right input's key columns, then
/// probes with the left input.
pub struct HashJoinOp {
    left: BoxedOp,
    right: BoxedOp,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    join_type: JoinType,
    schema: Schema,
    table: HashMap<String, Vec<Tuple>>,
    pending: Vec<Tuple>,
    pending_cursor: usize,
    rows_out: u64,
    vectorized: bool,
    parallel: bool,
    /// Vectorized build side: tuples stored once, hash table maps key →
    /// row indices into this vector (no per-bucket tuple clones).
    build_rows: Vec<Tuple>,
    table_idx: HashMap<String, Vec<u32>>,
    /// Typed single-column index: used instead of `table_idx` for
    /// single-column joins. [`typed_key_build`] maps every value class
    /// to a tagged integer key (numeric bits, interned-symbol id, huge
    /// int, bool, null), so neither build nor probe renders strings.
    typed_idx: HashMap<(u8, u64), Vec<u32>>,
    /// Partitioned typed index built in parallel on the worker pool
    /// (non-empty replaces `typed_idx`): partition `part_of(key, n)`
    /// owns the key, so build inserts race-free per partition and probe
    /// hashes straight to the owner.
    typed_parts: Vec<HashMap<(u8, u64), Vec<u32>>>,
    typed: bool,
    /// Reusable probe-key buffer (vectorized probe allocates no String
    /// per input row).
    key_buf: String,
    scratch: Vec<Tuple>,
    est_rows: Option<u64>,
    /// Build-side footprint estimate, computed once at the end of the
    /// build phase (see [`Operator::mem_bytes`]).
    mem_bytes: u64,
    /// Per-worker busy times of the parallel build-key extraction
    /// (`workers == 0` when the build side fell below the threshold).
    par_prof: Option<ParProfile>,
    /// Vectorized build-side lineage, aligned with `build_rows` (present
    /// iff the right child tracks).
    build_lin: Option<Vec<LineageMask>>,
    /// Scalar build-side lineage: per-bucket masks parallel to `table`'s
    /// buckets (present iff the right child tracks).
    table_lin: Option<HashMap<String, Vec<LineageMask>>>,
    /// Masks parallel to `pending`; drained into `lin` as rows emit.
    pending_lin: Vec<LineageMask>,
    /// Probe-side emissions consumed so far.
    left_consumed: usize,
    /// Lineage of emitted tuples (tracking iff *both* children track).
    lin: Option<Vec<LineageMask>>,
}

/// Hash-join keys are rendered to a canonical string so cross-type equal
/// values (Int 5 vs Float 5.0 vs node text "5") collide correctly; this
/// mirrors `Value::key_eq`'s numeric coercion. Integers exactly
/// representable as f64 render through f64 (so `Int(2) == Float(2.0)`);
/// larger integers render exactly so distinct i64 keys beyond 2^53 never
/// conflate.
fn key_string(tuple: &Tuple, cols: &[usize]) -> String {
    let mut out = String::new();
    key_string_into(&mut out, tuple, cols);
    out
}

/// Same canonicalization as [`key_string`], appending into a caller-owned
/// buffer so batch probes reuse one allocation across rows.
fn key_string_into(out: &mut String, tuple: &Tuple, cols: &[usize]) {
    use std::fmt::Write;
    fn push_num(out: &mut String, f: f64) {
        let _ = write!(out, "n{}", f);
    }
    fn push_int(out: &mut String, i: i64) {
        if (i as f64) as i64 == i {
            push_num(out, i as f64);
        } else {
            let _ = write!(out, "ix{}", i);
        }
    }
    for &c in cols {
        let a = tuple[c].atomize();
        match a {
            nimble_xml::Atomic::Int(i) => push_int(out, i),
            nimble_xml::Atomic::Float(f) => push_num(out, f),
            nimble_xml::Atomic::Str(s) => match s.trim().parse::<i64>() {
                Ok(i) => push_int(out, i),
                Err(_) => match s.trim().parse::<f64>() {
                    Ok(f) => push_num(out, f),
                    Err(_) => {
                        out.push('s');
                        out.push_str(&s);
                    }
                },
            },
            nimble_xml::Atomic::Sym(sym) => {
                let s = sym.as_str();
                match s.trim().parse::<i64>() {
                    Ok(i) => push_int(out, i),
                    Err(_) => match s.trim().parse::<f64>() {
                        Ok(f) => push_num(out, f),
                        Err(_) => {
                            out.push('s');
                            out.push_str(s);
                        }
                    },
                }
            }
            nimble_xml::Atomic::Bool(b) => out.push_str(if b { "bt" } else { "bf" }),
            nimble_xml::Atomic::Null => out.push('0'),
        }
        out.push('\u{1}');
    }
}

/// Typed fast-path key for single-column joins: a `(class tag, bits)`
/// pair partitioning values **identically** to [`key_string_into`]'s
/// rendered classes, with no string rendering:
///
/// * tag 2, f64 bits — the numeric (`n{f}`) class: ints representable
///   as f64, floats, and numeric-parsing strings. All NaNs collapse to
///   one key; `-0.0` stays distinct from `0.0`, matching their
///   `Display` forms.
/// * tag 4, i64 bits — the exact-int (`ix{i}`) class for integers f64
///   cannot represent.
/// * tag 3, interned id — the string (`s{str}`) class; the build side
///   interns, the probe side uses a non-inserting lookup (a string
///   absent from the interner cannot equal any build key).
/// * tags 1/0 — bools (`bt`/`bf`) and nulls (`0`).
fn typed_key_build(v: &Value) -> (u8, u64) {
    typed_key(v, true).unwrap_or((0, 0))
}

/// Probe-side companion of [`typed_key_build`]: `None` means the value
/// cannot match any build-side key (its string was never interned).
fn typed_key_probe(v: &Value) -> Option<(u8, u64)> {
    typed_key(v, false)
}

fn typed_key(v: &Value, insert: bool) -> Option<(u8, u64)> {
    fn bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else {
            f.to_bits()
        }
    }
    fn int_key(i: i64) -> (u8, u64) {
        if (i as f64) as i64 == i {
            (2, bits(i as f64))
        } else {
            (4, i as u64)
        }
    }
    fn str_key(s: &str, insert: bool) -> Option<(u8, u64)> {
        let t = s.trim();
        match t.parse::<i64>() {
            Ok(i) => Some(int_key(i)),
            Err(_) => match t.parse::<f64>() {
                Ok(f) => Some((2, bits(f))),
                Err(_) if insert => Some((3, Sym::intern(s).id() as u64)),
                Err(_) => Sym::find(s).map(|sym| (3, sym.id() as u64)),
            },
        }
    }
    match v.atomize() {
        nimble_xml::Atomic::Int(i) => Some(int_key(i)),
        nimble_xml::Atomic::Float(f) => Some((2, bits(f))),
        nimble_xml::Atomic::Str(s) => str_key(&s, insert),
        nimble_xml::Atomic::Sym(sym) => str_key(sym.as_str(), insert).or(Some((3, sym.id() as u64))),
        nimble_xml::Atomic::Bool(b) => Some((1, b as u64)),
        nimble_xml::Atomic::Null => Some((0, 0)),
    }
}

/// Partition owner of a typed key: a multiply-shift hash over the tag
/// and bits. Build and probe must agree, so this is the only place the
/// partition function lives.
fn part_of(k: &(u8, u64), n: usize) -> usize {
    let h = (k.1 ^ ((k.0 as u64) << 56)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % n
}

/// Build the typed index partitioned across the worker pool: every
/// participant claims partitions off a cursor and inserts exactly the
/// keys it owns (each scans the flat key vector — sequential reads —
/// instead of contending on shared buckets). `None` when no pool
/// exists or a participant panicked; the caller then inserts serially.
fn build_partitioned(keys: &[(u8, u64)]) -> Option<Vec<HashMap<(u8, u64), Vec<u32>>>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let pool = par::pool()?;
    let n = pool.participants();
    let parts: Vec<std::sync::Mutex<HashMap<(u8, u64), Vec<u32>>>> =
        (0..n).map(|_| std::sync::Mutex::new(HashMap::new())).collect();
    let cursor = AtomicUsize::new(0);
    let ok = pool.run(&|_slot| loop {
        let p = cursor.fetch_add(1, Ordering::Relaxed);
        if p >= n {
            break;
        }
        let mut map = parts[p].lock().unwrap_or_else(|e| e.into_inner());
        for (i, k) in keys.iter().enumerate() {
            if part_of(k, n) == p {
                map.entry(*k).or_default().push(i as u32);
            }
        }
    });
    if !ok {
        return None;
    }
    Some(
        parts
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect(),
    )
}

/// Bucket lookup across the two typed-index representations (a free
/// function over exactly the index fields so probe loops can hold the
/// bucket while pushing output and lineage).
fn typed_lookup<'a>(
    typed_idx: &'a HashMap<(u8, u64), Vec<u32>>,
    typed_parts: &'a [HashMap<(u8, u64), Vec<u32>>],
    k: (u8, u64),
) -> Option<&'a Vec<u32>> {
    if typed_parts.is_empty() {
        typed_idx.get(&k)
    } else {
        typed_parts[part_of(&k, typed_parts.len())].get(&k)
    }
}

impl HashJoinOp {
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        join_type: JoinType,
    ) -> Self {
        assert_eq!(left_keys.len(), right_keys.len(), "key arity mismatch");
        let schema = left.schema().concat(right.schema());
        HashJoinOp {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            schema,
            table: HashMap::new(),
            pending: Vec::new(),
            pending_cursor: 0,
            rows_out: 0,
            vectorized: false,
            parallel: false,
            build_rows: Vec::new(),
            table_idx: HashMap::new(),
            typed_idx: HashMap::new(),
            typed_parts: Vec::new(),
            typed: false,
            key_buf: String::new(),
            scratch: Vec::new(),
            est_rows: None,
            mem_bytes: 0,
            par_prof: None,
            build_lin: None,
            table_lin: None,
            pending_lin: Vec::new(),
            left_consumed: 0,
            lin: None,
        }
    }

    /// Switch to the vectorized kernel: batch build ingest, an
    /// index-based hash table (build tuples stored once, buckets hold
    /// row indices), and batch probe with a reused key buffer.
    /// `parallel` additionally extracts build keys on scoped threads for
    /// large build sides.
    pub fn vectorized(mut self, parallel: bool) -> Self {
        self.vectorized = true;
        self.parallel = parallel;
        self
    }

    /// Build a hash join on the variables shared by both inputs.
    pub fn natural(left: BoxedOp, right: BoxedOp, join_type: JoinType) -> Self {
        let common = left.schema().common_vars(right.schema());
        assert!(
            !common.is_empty(),
            "natural hash join requires shared variables between {} and {}",
            left.schema(),
            right.schema()
        );
        // `common_vars` only returns variables present in both schemas,
        // so both lookups always resolve.
        let lk = common
            .iter()
            .filter_map(|v| left.schema().index_of(v))
            .collect();
        let rk = common
            .iter()
            .filter_map(|v| right.schema().index_of(v))
            .collect();
        HashJoinOp::new(left, right, lk, rk, join_type)
    }
}

impl Operator for HashJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.table.clear();
        self.build_rows.clear();
        self.table_idx.clear();
        self.typed_idx.clear();
        self.typed_parts.clear();
        self.typed = false;
        self.mem_bytes = 0;
        self.par_prof = None;
        self.build_lin = None;
        self.table_lin = None;
        self.pending_lin.clear();
        self.left_consumed = 0;
        self.right.open()?;
        if self.vectorized {
            while self
                .right
                .next_batch(&mut self.build_rows, super::DEFAULT_BATCH_SIZE)?
                > 0
            {}
            // Snapshot before close: masks align 1:1 with `build_rows`,
            // so bucket row indices address them directly.
            self.build_lin = self.right.lineage().map(|l| l.to_vec());
            // Single-column keys always use the typed index: every
            // value class has a tagged integer key, so no string is
            // rendered on either side.
            if let [col] = self.right_keys[..] {
                let extract = |_base: usize, chunk: &[Tuple]| -> Vec<(u8, u64)> {
                    chunk.iter().map(|t| typed_key_build(&t[col])).collect()
                };
                let keys = if self.parallel {
                    match par::par_chunks_profiled(&self.build_rows, extract) {
                        Some((keys, prof)) => {
                            self.par_prof = Some(prof);
                            Some(keys)
                        }
                        None => {
                            // Requested but below threshold (or 1 core):
                            // record the skip so utilization telemetry
                            // can tell "declined" from "never asked".
                            self.par_prof = Some(ParProfile::default());
                            None
                        }
                    }
                } else {
                    None
                }
                .unwrap_or_else(|| extract(0, &self.build_rows));
                self.typed = true;
                // Large parallel builds also insert in parallel: each
                // pool participant owns a key partition, so no bucket
                // is ever contended.
                let partitioned = if self.parallel && keys.len() >= par::PAR_THRESHOLD {
                    build_partitioned(&keys)
                } else {
                    None
                };
                match partitioned {
                    Some(parts) => self.typed_parts = parts,
                    None => {
                        self.typed_idx.reserve(keys.len());
                        for (i, k) in keys.into_iter().enumerate() {
                            self.typed_idx.entry(k).or_default().push(i as u32);
                        }
                    }
                }
            }
            if !self.typed {
                let right_keys = &self.right_keys;
                let extract = |_base: usize, chunk: &[Tuple]| -> Vec<String> {
                    chunk.iter().map(|t| key_string(t, right_keys)).collect()
                };
                let keys = if self.parallel {
                    match par::par_chunks_profiled(&self.build_rows, extract) {
                        Some((keys, prof)) => {
                            self.par_prof = Some(prof);
                            Some(keys)
                        }
                        None => {
                            self.par_prof = Some(ParProfile::default());
                            None
                        }
                    }
                } else {
                    None
                }
                .unwrap_or_else(|| extract(0, &self.build_rows));
                for (i, k) in keys.into_iter().enumerate() {
                    self.table_idx.entry(k).or_default().push(i as u32);
                }
            }
            let bucket_slots = (self.build_rows.len() * std::mem::size_of::<u32>()) as u64;
            let entries = if self.typed {
                let slots = self.typed_idx.len()
                    + self.typed_parts.iter().map(HashMap::len).sum::<usize>();
                (slots * std::mem::size_of::<((u8, u64), Vec<u32>)>()) as u64
            } else {
                (self.table_idx.len() * std::mem::size_of::<(String, Vec<u32>)>()) as u64
            };
            self.mem_bytes = super::tuples_mem_bytes(&self.build_rows) + entries + bucket_slots;
        } else {
            self.table_lin = self.right.lineage().map(|_| HashMap::new());
            let mut consumed = 0usize;
            while let Some(t) = self.right.next()? {
                let k = key_string(&t, &self.right_keys);
                if let Some(tl) = &mut self.table_lin {
                    // Buckets fill in the same order as `table`'s, so the
                    // j-th tuple of a bucket owns the j-th mask.
                    let mask = self
                        .right
                        .lineage()
                        .and_then(|l| l.get(consumed))
                        .copied()
                        .unwrap_or_default();
                    tl.entry(k.clone()).or_default().push(mask);
                }
                consumed += 1;
                self.table.entry(k).or_default().push(t);
            }
            self.mem_bytes = self
                .table
                .values()
                .map(|bucket| super::tuples_mem_bytes(bucket))
                .sum::<u64>()
                + (self.table.len() * std::mem::size_of::<(String, Vec<Tuple>)>()) as u64;
        }
        self.right.close();
        self.left.open()?;
        let right_tracks = self.build_lin.is_some() || self.table_lin.is_some();
        self.lin = (right_tracks && self.left.lineage().is_some()).then(Vec::new);
        self.pending.clear();
        self.pending_cursor = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            if self.pending_cursor < self.pending.len() {
                let t = self.pending[self.pending_cursor].clone();
                if let Some(lin) = &mut self.lin {
                    lin.push(
                        self.pending_lin
                            .get(self.pending_cursor)
                            .copied()
                            .unwrap_or_default(),
                    );
                }
                self.pending_cursor += 1;
                self.rows_out += 1;
                return Ok(Some(t));
            }
            match self.left.next()? {
                None => return Ok(None),
                Some(left) => {
                    self.pending.clear();
                    self.pending_cursor = 0;
                    self.pending_lin.clear();
                    let lm = if self.lin.is_some() {
                        let idx = self.left_consumed;
                        self.left_consumed += 1;
                        Some(
                            self.left
                                .lineage()
                                .and_then(|l| l.get(idx))
                                .copied()
                                .unwrap_or_default(),
                        )
                    } else {
                        None
                    };
                    if self.vectorized {
                        let idxs = if self.typed {
                            typed_key_probe(&left[self.left_keys[0]]).and_then(|k| {
                                typed_lookup(&self.typed_idx, &self.typed_parts, k)
                            })
                        } else {
                            let k = key_string(&left, &self.left_keys);
                            self.table_idx.get(&k)
                        };
                        match idxs {
                            Some(idxs) => {
                                for &i in idxs {
                                    self.pending
                                        .push(concat_tuples(&left, &self.build_rows[i as usize]));
                                    if let Some(lm) = lm {
                                        let bm = self
                                            .build_lin
                                            .as_ref()
                                            .and_then(|b| b.get(i as usize))
                                            .copied()
                                            .unwrap_or_default();
                                        self.pending_lin.push(lm.or(bm));
                                    }
                                }
                            }
                            None => {
                                if self.join_type == JoinType::LeftOuter {
                                    let mut padded = left.clone();
                                    padded.extend(std::iter::repeat_n(
                                        Value::null(),
                                        self.right.schema().len(),
                                    ));
                                    self.pending.push(padded);
                                    if let Some(lm) = lm {
                                        self.pending_lin.push(lm);
                                    }
                                }
                            }
                        }
                    } else {
                        let k = key_string(&left, &self.left_keys);
                        match self.table.get(&k) {
                            Some(matches) => {
                                let bucket_lin =
                                    self.table_lin.as_ref().and_then(|tl| tl.get(&k));
                                for (j, m) in matches.iter().enumerate() {
                                    self.pending.push(concat_tuples(&left, m));
                                    if let Some(lm) = lm {
                                        let bm = bucket_lin
                                            .and_then(|b| b.get(j))
                                            .copied()
                                            .unwrap_or_default();
                                        self.pending_lin.push(lm.or(bm));
                                    }
                                }
                            }
                            None => {
                                if self.join_type == JoinType::LeftOuter {
                                    let mut padded = left.clone();
                                    padded.extend(std::iter::repeat_n(
                                        Value::null(),
                                        self.right.schema().len(),
                                    ));
                                    self.pending.push(padded);
                                    if let Some(lm) = lm {
                                        self.pending_lin.push(lm);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        if !self.vectorized {
            // Scalar-mode structure is the seed per-row loop.
            let mut appended = 0;
            while appended < max {
                match self.next()? {
                    Some(t) => {
                        out.push(t);
                        appended += 1;
                    }
                    None => break,
                }
            }
            return Ok(appended);
        }
        let mut appended = 0;
        // Drain pending left over from interleaved `next()` calls.
        while self.pending_cursor < self.pending.len() && appended < max {
            out.push(self.pending[self.pending_cursor].clone());
            if let Some(lin) = &mut self.lin {
                lin.push(
                    self.pending_lin
                        .get(self.pending_cursor)
                        .copied()
                        .unwrap_or_default(),
                );
            }
            self.pending_cursor += 1;
            appended += 1;
        }
        let right_width = self.right.schema().len();
        while appended < max {
            self.scratch.clear();
            let pulled = self.left.next_batch(&mut self.scratch, max - appended)?;
            if pulled == 0 {
                break;
            }
            let lin_base = self.left_consumed;
            if self.lin.is_some() {
                self.left_consumed += pulled;
            }
            for (row_i, mut left) in self.scratch.drain(..).enumerate() {
                let lm = if self.lin.is_some() {
                    Some(
                        self.left
                            .lineage()
                            .and_then(|l| l.get(lin_base + row_i))
                            .copied()
                            .unwrap_or_default(),
                    )
                } else {
                    None
                };
                let idxs = if self.typed {
                    typed_key_probe(&left[self.left_keys[0]])
                        .and_then(|k| typed_lookup(&self.typed_idx, &self.typed_parts, k))
                } else {
                    self.key_buf.clear();
                    key_string_into(&mut self.key_buf, &left, &self.left_keys);
                    self.table_idx.get(&self.key_buf)
                };
                match idxs {
                    Some(idxs) => {
                        // Clone the probe tuple for all matches but the
                        // last, which takes ownership (one probe row's
                        // fan-out may overshoot `max`).
                        appended += idxs.len();
                        let (last, init) = match idxs.split_last() {
                            Some(p) => p,
                            None => continue, // buckets are never empty
                        };
                        for &i in init {
                            out.push(concat_tuples(&left, &self.build_rows[i as usize]));
                            if let (Some(lm), Some(lin)) = (lm, self.lin.as_mut()) {
                                let bm = self
                                    .build_lin
                                    .as_ref()
                                    .and_then(|b| b.get(i as usize))
                                    .copied()
                                    .unwrap_or_default();
                                lin.push(lm.or(bm));
                            }
                        }
                        left.reserve(right_width);
                        left.extend(self.build_rows[*last as usize].iter().cloned());
                        out.push(left);
                        if let (Some(lm), Some(lin)) = (lm, self.lin.as_mut()) {
                            let bm = self
                                .build_lin
                                .as_ref()
                                .and_then(|b| b.get(*last as usize))
                                .copied()
                                .unwrap_or_default();
                            lin.push(lm.or(bm));
                        }
                    }
                    None => {
                        if self.join_type == JoinType::LeftOuter {
                            left.extend(std::iter::repeat_n(Value::null(), right_width));
                            out.push(left);
                            appended += 1;
                            if let (Some(lm), Some(lin)) = (lm, self.lin.as_mut()) {
                                lin.push(lm);
                            }
                        }
                    }
                }
            }
        }
        self.rows_out += appended as u64;
        Ok(appended)
    }

    fn close(&mut self) {
        self.left.close();
        self.table.clear();
        self.pending.clear();
        self.pending_lin.clear();
        self.build_rows.clear();
        self.build_lin = None;
        self.table_lin = None;
        self.table_idx.clear();
        self.typed_idx.clear();
        self.typed_parts.clear();
        self.scratch = Vec::new();
    }

    fn describe(&self) -> String {
        format!(
            "HashJoin ({:?}) keys {:?}={:?}",
            self.join_type, self.left_keys, self.right_keys
        )
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::new("HashJoin", SchemaRule::Concat)
            .with_join_keys(self.left_keys.clone(), self.right_keys.clone())
    }

    fn est_rows(&self) -> Option<u64> {
        self.est_rows
    }

    fn set_est_rows(&mut self, rows: u64) {
        self.est_rows = Some(rows);
    }

    fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    fn par_profile(&self) -> Option<&ParProfile> {
        self.par_prof.as_ref()
    }

    fn lineage(&self) -> Option<&[LineageMask]> {
        self.lin.as_deref()
    }
}

// --- Merge join ---

/// Single-key inner equi-join over inputs sorted ascending on their key
/// columns. Verifies sortedness as it goes and errors otherwise.
pub struct MergeJoinOp {
    left: BoxedOp,
    right: BoxedOp,
    left_key: usize,
    right_key: usize,
    schema: Schema,
    left_cur: Option<Tuple>,
    right_group: Vec<Tuple>,
    right_next: Option<Tuple>,
    group_cursor: usize,
    rows_out: u64,
}

impl MergeJoinOp {
    pub fn new(left: BoxedOp, right: BoxedOp, left_key: usize, right_key: usize) -> Self {
        let schema = left.schema().concat(right.schema());
        MergeJoinOp {
            left,
            right,
            left_key,
            right_key,
            schema,
            left_cur: None,
            right_group: Vec::new(),
            right_next: None,
            group_cursor: 0,
            rows_out: 0,
        }
    }

    fn advance_left(&mut self) -> Result<(), ExecError> {
        let next = self.left.next()?;
        if let (Some(prev), Some(cur)) = (&self.left_cur, &next) {
            if prev[self.left_key].total_cmp(&cur[self.left_key]) == std::cmp::Ordering::Greater {
                return Err(ExecError::Operator(
                    "merge join: left input not sorted on key".into(),
                ));
            }
        }
        self.left_cur = next;
        self.group_cursor = 0;
        Ok(())
    }

    /// Load the next run of equal-keyed right tuples into `right_group`.
    fn load_right_group(&mut self) -> Result<(), ExecError> {
        self.right_group.clear();
        let first = match self.right_next.take() {
            Some(t) => t,
            None => match self.right.next()? {
                Some(t) => t,
                None => return Ok(()),
            },
        };
        let key = first[self.right_key].clone();
        self.right_group.push(first);
        loop {
            match self.right.next()? {
                None => break,
                Some(t) => {
                    match key.total_cmp(&t[self.right_key]) {
                        std::cmp::Ordering::Equal => self.right_group.push(t),
                        std::cmp::Ordering::Less => {
                            self.right_next = Some(t);
                            break;
                        }
                        std::cmp::Ordering::Greater => {
                            return Err(ExecError::Operator(
                                "merge join: right input not sorted on key".into(),
                            ))
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Operator for MergeJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.left.open()?;
        self.right.open()?;
        self.left_cur = None;
        self.right_next = None;
        self.right_group.clear();
        self.advance_left()?;
        self.load_right_group()?;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        loop {
            let left = match &self.left_cur {
                None => return Ok(None),
                Some(t) => t.clone(),
            };
            if self.right_group.is_empty() {
                return Ok(None);
            }
            let lk = &left[self.left_key];
            let rk = &self.right_group[0][self.right_key];
            match lk.total_cmp(rk) {
                std::cmp::Ordering::Less => {
                    self.advance_left()?;
                }
                std::cmp::Ordering::Greater => {
                    self.load_right_group()?;
                }
                std::cmp::Ordering::Equal => {
                    if self.group_cursor < self.right_group.len() {
                        let combined =
                            concat_tuples(&left, &self.right_group[self.group_cursor]);
                        self.group_cursor += 1;
                        self.rows_out += 1;
                        return Ok(Some(combined));
                    }
                    self.advance_left()?;
                }
            }
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.right_group.clear();
    }

    fn describe(&self) -> String {
        format!("MergeJoin keys {}={}", self.left_key, self.right_key)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::new("MergeJoin", SchemaRule::Concat)
            .with_join_keys(vec![self.left_key], vec![self.right_key])
            .with_required_sort(
                0,
                SortKey {
                    column: self.left_key,
                    descending: false,
                },
            )
            .with_required_sort(
                1,
                SortKey {
                    column: self.right_key,
                    descending: false,
                },
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::ops::testutil::{int_source, ints};
    use crate::run_to_vec;

    fn rows_of(op: &mut dyn Operator) -> Vec<Vec<i64>> {
        run_to_vec(op).unwrap().iter().map(ints).collect()
    }

    #[test]
    fn nested_loop_theta_join() {
        let left = int_source(&["a"], &[&[1], &[2], &[3]]);
        let right = int_source(&["b"], &[&[2], &[3]]);
        // a < b
        let pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::Col(0), ScalarExpr::Col(1));
        let mut op = NestedLoopJoinOp::new(
            Box::new(left),
            Box::new(right),
            Some(pred),
            JoinType::Inner,
            Arc::new(FunctionRegistry::with_builtins()),
        );
        assert_eq!(rows_of(&mut op), vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
    }

    #[test]
    fn nested_loop_left_outer() {
        let left = int_source(&["a"], &[&[1], &[9]]);
        let right = int_source(&["b"], &[&[1]]);
        let pred = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(0), ScalarExpr::Col(1));
        let mut op = NestedLoopJoinOp::new(
            Box::new(left),
            Box::new(right),
            Some(pred),
            JoinType::LeftOuter,
            Arc::new(FunctionRegistry::with_builtins()),
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[1][1].is_null());
    }

    #[test]
    fn hash_join_inner() {
        let left = int_source(&["k", "x"], &[&[1, 10], &[2, 20], &[2, 21], &[3, 30]]);
        let right = int_source(&["k2", "y"], &[&[2, 200], &[3, 300], &[4, 400]]);
        let mut op = HashJoinOp::new(Box::new(left), Box::new(right), vec![0], vec![0], JoinType::Inner);
        let mut rows = rows_of(&mut op);
        rows.sort();
        assert_eq!(
            rows,
            vec![vec![2, 20, 2, 200], vec![2, 21, 2, 200], vec![3, 30, 3, 300]]
        );
    }

    #[test]
    fn hash_join_natural_uses_shared_vars() {
        let left = int_source(&["k", "x"], &[&[1, 10]]);
        let right = int_source(&["k", "y"], &[&[1, 99], &[2, 98]]);
        let mut op = HashJoinOp::natural(Box::new(left), Box::new(right), JoinType::Inner);
        assert_eq!(rows_of(&mut op), vec![vec![1, 10, 1, 99]]);
    }

    #[test]
    fn hash_join_left_outer_pads_nulls() {
        let left = int_source(&["k"], &[&[1], &[5]]);
        let right = int_source(&["k2", "y"], &[&[1, 11]]);
        let mut op = HashJoinOp::new(
            Box::new(left),
            Box::new(right),
            vec![0],
            vec![0],
            JoinType::LeftOuter,
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[1][1].is_null() && rows[1][2].is_null());
    }

    #[test]
    fn merge_join_sorted_inputs() {
        let left = int_source(&["k", "x"], &[&[1, 10], &[2, 20], &[2, 21], &[4, 40]]);
        let right = int_source(&["k2", "y"], &[&[2, 200], &[2, 201], &[3, 300], &[4, 400]]);
        let mut op = MergeJoinOp::new(Box::new(left), Box::new(right), 0, 0);
        let mut rows = rows_of(&mut op);
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![2, 20, 2, 200],
                vec![2, 20, 2, 201],
                vec![2, 21, 2, 200],
                vec![2, 21, 2, 201],
                vec![4, 40, 4, 400]
            ]
        );
    }

    #[test]
    fn merge_join_detects_unsorted() {
        let left = int_source(&["k"], &[&[2], &[1]]);
        let right = int_source(&["k2"], &[&[1], &[2]]);
        let mut op = MergeJoinOp::new(Box::new(left), Box::new(right), 0, 0);
        op.open().unwrap();
        let mut result = Ok(None);
        for _ in 0..4 {
            result = op.next();
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(ExecError::Operator(_))));
    }

    #[test]
    fn huge_int_keys_do_not_conflate() {
        use crate::ops::ValuesOp;
        use nimble_xml::Value;
        // 2^53 and 2^53+1 coerce to the same f64; they must not join.
        let big = 1i64 << 53;
        let schema_l = Schema::new(vec!["k".into()]);
        let left = ValuesOp::new(schema_l, vec![vec![Value::from(big + 1)]]);
        let schema_r = Schema::new(vec!["k2".into()]);
        let right = ValuesOp::new(schema_r, vec![vec![Value::from(big)]]);
        let mut op =
            HashJoinOp::new(Box::new(left), Box::new(right), vec![0], vec![0], JoinType::Inner);
        assert!(run_to_vec(&mut op).unwrap().is_empty());
        // Equal huge keys still join.
        let schema_l = Schema::new(vec!["k".into()]);
        let left = ValuesOp::new(schema_l, vec![vec![Value::from(big + 1)]]);
        let schema_r = Schema::new(vec!["k2".into()]);
        let right = ValuesOp::new(schema_r, vec![vec![Value::from(big + 1)]]);
        let mut op =
            HashJoinOp::new(Box::new(left), Box::new(right), vec![0], vec![0], JoinType::Inner);
        assert_eq!(run_to_vec(&mut op).unwrap().len(), 1);
    }

    #[test]
    fn cross_type_keys_join() {
        use nimble_xml::{Atomic, Value};
        let schema_l = Schema::new(vec!["k".into()]);
        let left = ValuesOp::new(schema_l, vec![vec![Value::Atomic(Atomic::Int(5))]]);
        let schema_r = Schema::new(vec!["k2".into()]);
        let right = ValuesOp::new(
            schema_r,
            vec![
                vec![Value::Atomic(Atomic::Str("5".into()))],
                vec![Value::Atomic(Atomic::Float(5.0))],
            ],
        );
        use crate::ops::ValuesOp;
        let mut op = HashJoinOp::new(Box::new(left), Box::new(right), vec![0], vec![0], JoinType::Inner);
        assert_eq!(run_to_vec(&mut op).unwrap().len(), 2);
    }

    /// Every execution mode of the same join over the same inputs.
    fn join_all_modes(
        left_rows: Vec<Tuple>,
        right_rows: Vec<Tuple>,
        join_type: JoinType,
    ) -> Vec<Vec<Tuple>> {
        use crate::ops::ValuesOp;
        let mut out = Vec::new();
        for mode in 0..3 {
            let left = ValuesOp::new(Schema::new(vec!["k".into()]), left_rows.clone());
            let right = ValuesOp::new(Schema::new(vec!["k2".into()]), right_rows.clone());
            let mut join =
                HashJoinOp::new(Box::new(left), Box::new(right), vec![0], vec![0], join_type);
            out.push(match mode {
                0 => run_to_vec(&mut join).unwrap(),
                1 => {
                    let mut join = join.vectorized(false);
                    crate::run_to_vec_batched(&mut join, 4).unwrap().0
                }
                _ => {
                    let mut join = join.vectorized(true);
                    crate::run_to_vec_batched(&mut join, 4).unwrap().0
                }
            });
        }
        out
    }

    #[test]
    fn vectorized_typed_keys_match_scalar_coercion() {
        use nimble_xml::{Atomic, Value};
        // All-numeric build side → typed index; probe side mixes every
        // coercion class that can reach a numeric key.
        let right_rows: Vec<Tuple> = vec![
            vec![Value::Atomic(Atomic::Int(5))],
            vec![Value::Atomic(Atomic::Float(2.5))],
            vec![Value::Atomic(Atomic::Str(" 7 ".into()))],
        ];
        let left_rows: Vec<Tuple> = vec![
            vec![Value::Atomic(Atomic::Str("5".into()))],
            vec![Value::Atomic(Atomic::Float(5.0))],
            vec![Value::Atomic(Atomic::Str("2.5".into()))],
            vec![Value::Atomic(Atomic::Int(7))],
            vec![Value::Atomic(Atomic::Str("none".into()))],
            vec![Value::null()],
        ];
        let [scalar, batch, parallel] =
            join_all_modes(left_rows, right_rows, JoinType::Inner).try_into().unwrap();
        assert_eq!(scalar.len(), 4);
        assert_eq!(scalar, batch);
        assert_eq!(scalar, parallel);
    }

    #[test]
    fn vectorized_falls_back_when_build_keys_not_numeric() {
        use nimble_xml::{Atomic, Value};
        // A single non-numeric build key forces the string index; all
        // modes still agree (including null-key and bool-key rows).
        let right_rows: Vec<Tuple> = vec![
            vec![Value::Atomic(Atomic::Int(1))],
            vec![Value::Atomic(Atomic::Str("ada".into()))],
            vec![Value::Atomic(Atomic::Bool(true))],
            vec![Value::null()],
        ];
        let left_rows: Vec<Tuple> = vec![
            vec![Value::Atomic(Atomic::Str("ada".into()))],
            vec![Value::Atomic(Atomic::Int(1))],
            vec![Value::Atomic(Atomic::Bool(true))],
            vec![Value::null()],
            vec![Value::Atomic(Atomic::Str("bob".into()))],
        ];
        let [scalar, batch, parallel] =
            join_all_modes(left_rows, right_rows, JoinType::LeftOuter).try_into().unwrap();
        assert_eq!(scalar.len(), 5);
        assert_eq!(scalar, batch);
        assert_eq!(scalar, parallel);
    }

    #[test]
    fn vectorized_typed_huge_ints_fall_back_exactly() {
        use nimble_xml::{Atomic, Value};
        // 2^53 is representable (the typed index accepts the build) but
        // 2^53 + 1 is not: the typed probe must report it unmatched
        // rather than rounding it onto 2^53.
        let big = 1i64 << 53;
        let right_rows: Vec<Tuple> = vec![
            vec![Value::Atomic(Atomic::Int(big))],
            vec![Value::Atomic(Atomic::Int(3))],
        ];
        let left_rows: Vec<Tuple> = vec![
            vec![Value::Atomic(Atomic::Int(big + 1))],
            vec![Value::Atomic(Atomic::Int(big))],
            vec![Value::Atomic(Atomic::Int(3))],
        ];
        let [scalar, batch, parallel] =
            join_all_modes(left_rows, right_rows, JoinType::Inner).try_into().unwrap();
        assert_eq!(scalar.len(), 2);
        assert_eq!(scalar, batch);
        assert_eq!(scalar, parallel);
    }

    #[test]
    fn drain_scan_feeds_vectorized_join_once() {
        use crate::ops::ValuesOp;
        use nimble_xml::Value;
        // Drain-mode scans move tuples into the join; results match the
        // cloning scan, and a drained scan replays empty by contract.
        let rows: Vec<Tuple> = (0..10).map(|i| vec![Value::from(i as i64)]).collect();
        let left = ValuesOp::new(Schema::new(vec!["k".into()]), rows.clone()).drain_on_batch();
        let right = ValuesOp::new(Schema::new(vec!["k2".into()]), rows.clone()).drain_on_batch();
        let mut join = HashJoinOp::new(
            Box::new(left),
            Box::new(right),
            vec![0],
            vec![0],
            JoinType::Inner,
        )
        .vectorized(false);
        assert_eq!(run_to_vec(&mut join).unwrap().len(), 10);

        let mut drained =
            ValuesOp::new(Schema::new(vec!["k".into()]), rows).drain_on_batch();
        assert_eq!(run_to_vec(&mut drained).unwrap().len(), 10);
        assert_eq!(run_to_vec(&mut drained).unwrap().len(), 0);
    }
}
