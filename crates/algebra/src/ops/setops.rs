//! Union and duplicate elimination.

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::inspect::{OpInfo, SchemaRule};
use crate::lineage::LineageMask;
use crate::schema::{Schema, Tuple};
use std::collections::HashSet;

/// Concatenates the streams of children with identical schemas (UNION
/// ALL; stack a [`DistinctOp`] for set union).
pub struct UnionOp {
    children: Vec<BoxedOp>,
    current: usize,
    rows_out: u64,
    /// Lineage of emitted tuples (tracking iff *every* child tracks).
    lin: Option<Vec<LineageMask>>,
    /// Emissions consumed from each child so far.
    consumed: Vec<usize>,
}

impl UnionOp {
    pub fn new(children: Vec<BoxedOp>) -> Result<Self, ExecError> {
        if children.is_empty() {
            return Err(ExecError::Operator("union of zero inputs".into()));
        }
        let first = children[0].schema().clone();
        for c in &children[1..] {
            if c.schema() != &first {
                return Err(ExecError::Operator(format!(
                    "union schema mismatch: {} vs {}",
                    first,
                    c.schema()
                )));
            }
        }
        Ok(UnionOp {
            children,
            current: 0,
            rows_out: 0,
            lin: None,
            consumed: Vec::new(),
        })
    }
}

impl Operator for UnionOp {
    fn schema(&self) -> &Schema {
        self.children[0].schema()
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.current = 0;
        for c in &mut self.children {
            c.open()?;
        }
        if self.children.iter().all(|c| c.lineage().is_some()) {
            self.lin = Some(Vec::new());
            self.consumed = vec![0; self.children.len()];
        } else {
            self.lin = None;
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        while self.current < self.children.len() {
            match self.children[self.current].next()? {
                Some(t) => {
                    if let Some(lin) = &mut self.lin {
                        let idx = self.consumed[self.current];
                        self.consumed[self.current] += 1;
                        let mask = self.children[self.current]
                            .lineage()
                            .and_then(|l| l.get(idx))
                            .copied()
                            .unwrap_or_default();
                        lin.push(mask);
                    }
                    self.rows_out += 1;
                    return Ok(Some(t));
                }
                None => self.current += 1,
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let mut appended = 0;
        while appended < max && self.current < self.children.len() {
            let pulled = self.children[self.current].next_batch(out, max - appended)?;
            if pulled == 0 {
                self.current += 1;
            } else {
                if let Some(lin) = &mut self.lin {
                    let base = self.consumed[self.current];
                    self.consumed[self.current] += pulled;
                    let child_lin = self.children[self.current].lineage().unwrap_or(&[]);
                    for i in 0..pulled {
                        lin.push(child_lin.get(base + i).copied().unwrap_or_default());
                    }
                }
                appended += pulled;
            }
        }
        self.rows_out += appended as u64;
        Ok(appended)
    }

    fn close(&mut self) {
        for c in &mut self.children {
            c.close();
        }
    }

    fn describe(&self) -> String {
        format!("Union ({} inputs)", self.children.len())
    }

    fn children(&self) -> Vec<&dyn Operator> {
        self.children.iter().map(|c| c.as_ref()).collect()
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::new("Union", SchemaRule::Uniform)
    }

    fn lineage(&self) -> Option<&[LineageMask]> {
        self.lin.as_deref()
    }
}

/// Removes duplicate tuples (by atomized lexical key — node bindings
/// deduplicate by their content, matching XML-QL's value semantics).
pub struct DistinctOp {
    child: BoxedOp,
    seen: HashSet<String>,
    rows_out: u64,
    scratch: Vec<Tuple>,
    /// Lineage of emitted tuples (tracking iff the child tracks). A
    /// suppressed duplicate's provenance is *not* merged into the kept
    /// representative: where-provenance reports the rows that produced
    /// the answer actually emitted.
    lin: Option<Vec<LineageMask>>,
    consumed: usize,
}

impl DistinctOp {
    pub fn new(child: BoxedOp) -> Self {
        DistinctOp {
            child,
            seen: HashSet::new(),
            rows_out: 0,
            scratch: Vec::new(),
            lin: None,
            consumed: 0,
        }
    }

    fn key(t: &Tuple) -> String {
        let mut out = String::new();
        for v in t {
            out.push_str(&v.atomize().lexical());
            out.push('\u{1}');
        }
        out
    }
}

impl Operator for DistinctOp {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.seen.clear();
        self.consumed = 0;
        self.child.open()?;
        self.lin = self.child.lineage().map(|_| Vec::new());
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        while let Some(t) = self.child.next()? {
            let idx = self.consumed;
            self.consumed += 1;
            if self.seen.insert(Self::key(&t)) {
                if let Some(lin) = &mut self.lin {
                    let mask = self
                        .child
                        .lineage()
                        .and_then(|l| l.get(idx))
                        .copied()
                        .unwrap_or_default();
                    lin.push(mask);
                }
                self.rows_out += 1;
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let mut appended = 0;
        while appended < max {
            self.scratch.clear();
            let pulled = self.child.next_batch(&mut self.scratch, max - appended)?;
            if pulled == 0 {
                break;
            }
            let base = self.consumed;
            self.consumed += pulled;
            for (i, t) in self.scratch.drain(..).enumerate() {
                if self.seen.insert(Self::key(&t)) {
                    out.push(t);
                    appended += 1;
                    if let Some(lin) = &mut self.lin {
                        let mask = self
                            .child
                            .lineage()
                            .and_then(|l| l.get(base + i))
                            .copied()
                            .unwrap_or_default();
                        lin.push(mask);
                    }
                }
            }
        }
        self.rows_out += appended as u64;
        Ok(appended)
    }

    fn close(&mut self) {
        self.child.close();
        self.seen.clear();
        self.scratch = Vec::new();
    }

    fn describe(&self) -> String {
        "Distinct".to_string()
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::transform("Distinct")
    }

    fn lineage(&self) -> Option<&[LineageMask]> {
        self.lin.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{int_source, ints};
    use crate::run_to_vec;

    #[test]
    fn union_all_concatenates() {
        let a = int_source(&["x"], &[&[1], &[2]]);
        let b = int_source(&["x"], &[&[2], &[3]]);
        let mut op = UnionOp::new(vec![Box::new(a), Box::new(b)]).unwrap();
        let rows: Vec<i64> = run_to_vec(&mut op).unwrap().iter().map(|t| ints(t)[0]).collect();
        assert_eq!(rows, [1, 2, 2, 3]);
    }

    #[test]
    fn union_schema_mismatch_rejected() {
        let a = int_source(&["x"], &[]);
        let b = int_source(&["y"], &[]);
        assert!(UnionOp::new(vec![Box::new(a), Box::new(b)]).is_err());
    }

    #[test]
    fn distinct_removes_duplicates() {
        let src = int_source(&["x", "y"], &[&[1, 2], &[1, 2], &[1, 3]]);
        let mut op = DistinctOp::new(Box::new(src));
        assert_eq!(run_to_vec(&mut op).unwrap().len(), 2);
    }
}
