//! Union and duplicate elimination.

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::inspect::{OpInfo, SchemaRule};
use crate::schema::{Schema, Tuple};
use std::collections::HashSet;

/// Concatenates the streams of children with identical schemas (UNION
/// ALL; stack a [`DistinctOp`] for set union).
pub struct UnionOp {
    children: Vec<BoxedOp>,
    current: usize,
    rows_out: u64,
}

impl UnionOp {
    pub fn new(children: Vec<BoxedOp>) -> Result<Self, ExecError> {
        if children.is_empty() {
            return Err(ExecError::Operator("union of zero inputs".into()));
        }
        let first = children[0].schema().clone();
        for c in &children[1..] {
            if c.schema() != &first {
                return Err(ExecError::Operator(format!(
                    "union schema mismatch: {} vs {}",
                    first,
                    c.schema()
                )));
            }
        }
        Ok(UnionOp {
            children,
            current: 0,
            rows_out: 0,
        })
    }
}

impl Operator for UnionOp {
    fn schema(&self) -> &Schema {
        self.children[0].schema()
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.current = 0;
        for c in &mut self.children {
            c.open()?;
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        while self.current < self.children.len() {
            match self.children[self.current].next()? {
                Some(t) => {
                    self.rows_out += 1;
                    return Ok(Some(t));
                }
                None => self.current += 1,
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let mut appended = 0;
        while appended < max && self.current < self.children.len() {
            let pulled = self.children[self.current].next_batch(out, max - appended)?;
            if pulled == 0 {
                self.current += 1;
            } else {
                appended += pulled;
            }
        }
        self.rows_out += appended as u64;
        Ok(appended)
    }

    fn close(&mut self) {
        for c in &mut self.children {
            c.close();
        }
    }

    fn describe(&self) -> String {
        format!("Union ({} inputs)", self.children.len())
    }

    fn children(&self) -> Vec<&dyn Operator> {
        self.children.iter().map(|c| c.as_ref()).collect()
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::new("Union", SchemaRule::Uniform)
    }
}

/// Removes duplicate tuples (by atomized lexical key — node bindings
/// deduplicate by their content, matching XML-QL's value semantics).
pub struct DistinctOp {
    child: BoxedOp,
    seen: HashSet<String>,
    rows_out: u64,
    scratch: Vec<Tuple>,
}

impl DistinctOp {
    pub fn new(child: BoxedOp) -> Self {
        DistinctOp {
            child,
            seen: HashSet::new(),
            rows_out: 0,
            scratch: Vec::new(),
        }
    }

    fn key(t: &Tuple) -> String {
        let mut out = String::new();
        for v in t {
            out.push_str(&v.atomize().lexical());
            out.push('\u{1}');
        }
        out
    }
}

impl Operator for DistinctOp {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.seen.clear();
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        while let Some(t) = self.child.next()? {
            if self.seen.insert(Self::key(&t)) {
                self.rows_out += 1;
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let mut appended = 0;
        while appended < max {
            self.scratch.clear();
            let pulled = self.child.next_batch(&mut self.scratch, max - appended)?;
            if pulled == 0 {
                break;
            }
            for t in self.scratch.drain(..) {
                if self.seen.insert(Self::key(&t)) {
                    out.push(t);
                    appended += 1;
                }
            }
        }
        self.rows_out += appended as u64;
        Ok(appended)
    }

    fn close(&mut self) {
        self.child.close();
        self.seen.clear();
        self.scratch = Vec::new();
    }

    fn describe(&self) -> String {
        "Distinct".to_string()
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::transform("Distinct")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{int_source, ints};
    use crate::run_to_vec;

    #[test]
    fn union_all_concatenates() {
        let a = int_source(&["x"], &[&[1], &[2]]);
        let b = int_source(&["x"], &[&[2], &[3]]);
        let mut op = UnionOp::new(vec![Box::new(a), Box::new(b)]).unwrap();
        let rows: Vec<i64> = run_to_vec(&mut op).unwrap().iter().map(|t| ints(t)[0]).collect();
        assert_eq!(rows, [1, 2, 2, 3]);
    }

    #[test]
    fn union_schema_mismatch_rejected() {
        let a = int_source(&["x"], &[]);
        let b = int_source(&["y"], &[]);
        assert!(UnionOp::new(vec![Box::new(a), Box::new(b)]).is_err());
    }

    #[test]
    fn distinct_removes_duplicates() {
        let src = int_source(&["x", "y"], &[&[1, 2], &[1, 2], &[1, 3]]);
        let mut op = DistinctOp::new(Box::new(src));
        assert_eq!(run_to_vec(&mut op).unwrap().len(), 2);
    }
}
