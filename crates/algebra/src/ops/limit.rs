//! Row limiting (LIMIT/OFFSET).

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::inspect::OpInfo;
use crate::schema::{Schema, Tuple};

/// Emits at most `limit` tuples after skipping `offset`.
pub struct LimitOp {
    child: BoxedOp,
    limit: usize,
    offset: usize,
    seen: usize,
    emitted: usize,
    rows_out: u64,
}

impl LimitOp {
    pub fn new(child: BoxedOp, limit: usize, offset: usize) -> Self {
        LimitOp {
            child,
            limit,
            offset,
            seen: 0,
            emitted: 0,
            rows_out: 0,
        }
    }
}

impl Operator for LimitOp {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.seen = 0;
        self.emitted = 0;
        self.rows_out = 0;
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.emitted >= self.limit {
            return Ok(None);
        }
        while let Some(t) = self.child.next()? {
            self.seen += 1;
            if self.seen > self.offset {
                self.emitted += 1;
                self.rows_out += 1;
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let mut appended = 0;
        let mut buf = Vec::new();
        while appended < max && self.emitted < self.limit {
            buf.clear();
            let want = if self.seen < self.offset {
                (self.offset - self.seen).min(super::DEFAULT_BATCH_SIZE)
            } else {
                (max - appended).min(self.limit - self.emitted)
            };
            let pulled = self.child.next_batch(&mut buf, want)?;
            if pulled == 0 {
                break;
            }
            // Per-tuple accounting: a fanning-out child may overshoot
            // `want`, and the offset boundary can fall inside a batch.
            for t in buf.drain(..) {
                self.seen += 1;
                if self.seen > self.offset && self.emitted < self.limit {
                    out.push(t);
                    self.emitted += 1;
                    appended += 1;
                }
            }
        }
        self.rows_out += appended as u64;
        Ok(appended)
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn describe(&self) -> String {
        format!("Limit {} offset {}", self.limit, self.offset)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::transform("Limit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{int_source, ints};
    use crate::run_to_vec;

    #[test]
    fn limit_and_offset() {
        let src = int_source(&["x"], &[&[1], &[2], &[3], &[4], &[5]]);
        let mut op = LimitOp::new(Box::new(src), 2, 1);
        let rows: Vec<i64> = run_to_vec(&mut op)
            .unwrap()
            .iter()
            .map(|t| ints(t)[0])
            .collect();
        assert_eq!(rows, [2, 3]);
    }

    #[test]
    fn limit_beyond_input() {
        let src = int_source(&["x"], &[&[1]]);
        let mut op = LimitOp::new(Box::new(src), 10, 0);
        assert_eq!(run_to_vec(&mut op).unwrap().len(), 1);
    }
}
