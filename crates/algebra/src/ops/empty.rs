//! A statically-empty leaf the planner substitutes for subtrees it has
//! proved unsatisfiable.
//!
//! The operator yields no tuples but keeps the full output schema of
//! the subtree it replaces, so parents (projections, sorts, CONSTRUCT)
//! see the columns they expect. The annotation carried in
//! [`EmptyOp::new`] records *why* the planner pruned — it is rendered
//! by `describe()` (and therefore EXPLAIN) and attached to
//! `introspect()` as rewrite provenance so the semantic verifier can
//! see the substitution.

use super::Operator;
use crate::error::ExecError;
use crate::inspect::OpInfo;
use crate::schema::{Schema, Tuple};

/// A source that produces zero tuples, with a pruning annotation.
pub struct EmptyOp {
    schema: Schema,
    annotation: String,
}

impl EmptyOp {
    /// An empty source with the given schema. `annotation` explains the
    /// substitution (e.g. `"pruned: unsatisfiable: $t > 5 AND $t < 3"`).
    pub fn new(schema: Schema, annotation: impl Into<String>) -> Self {
        EmptyOp {
            schema,
            annotation: annotation.into(),
        }
    }

    /// The pruning annotation.
    pub fn annotation(&self) -> &str {
        &self.annotation
    }
}

impl Operator for EmptyOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), ExecError> {
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        Ok(None)
    }

    fn next_batch(&mut self, _out: &mut Vec<Tuple>, _max: usize) -> Result<usize, ExecError> {
        Ok(0)
    }

    fn close(&mut self) {}

    fn describe(&self) -> String {
        format!("Empty {} [{}]", self.schema, self.annotation)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        Vec::new()
    }

    fn rows_out(&self) -> u64 {
        0
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::source("Empty").with_provenance(self.annotation.clone())
    }

    fn est_rows(&self) -> Option<u64> {
        Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_to_vec;

    #[test]
    fn yields_nothing_and_keeps_schema() {
        let mut op = EmptyOp::new(
            Schema::new(vec!["a".into(), "b".into()]),
            "pruned: unsatisfiable: $a > 5 AND $a < 3",
        );
        assert_eq!(op.schema().vars(), &["a".to_string(), "b".to_string()]);
        assert!(run_to_vec(&mut op).unwrap().is_empty());
        assert!(op.describe().contains("pruned: unsatisfiable"));
        let info = op.introspect();
        assert_eq!(info.name, "Empty");
        assert_eq!(info.provenance.len(), 1);
        assert_eq!(op.est_rows(), Some(0));
    }
}
