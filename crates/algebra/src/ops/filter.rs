//! Selection.

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::expr::ScalarExpr;
use crate::funcs::FunctionRegistry;
use crate::inspect::OpInfo;
use crate::lineage::LineageMask;
use crate::schema::{Schema, Tuple};
use std::sync::Arc;

/// Keeps tuples for which the predicate is true.
pub struct FilterOp {
    child: BoxedOp,
    predicate: ScalarExpr,
    funcs: Arc<FunctionRegistry>,
    rows_out: u64,
    scratch: Vec<Tuple>,
    est_rows: Option<u64>,
    /// Lineage of emitted tuples (tracking iff the child tracks).
    lin: Option<Vec<LineageMask>>,
    /// Child emissions consumed so far — indexes the child's lineage.
    consumed: usize,
}

impl FilterOp {
    pub fn new(child: BoxedOp, predicate: ScalarExpr, funcs: Arc<FunctionRegistry>) -> Self {
        FilterOp {
            child,
            predicate,
            funcs,
            rows_out: 0,
            scratch: Vec::new(),
            est_rows: None,
            lin: None,
            consumed: 0,
        }
    }
}

impl Operator for FilterOp {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.consumed = 0;
        self.child.open()?;
        self.lin = self.child.lineage().map(|_| Vec::new());
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        while let Some(t) = self.child.next()? {
            let idx = self.consumed;
            self.consumed += 1;
            if self.predicate.eval_bool(&t, &self.funcs)? {
                if let Some(lin) = &mut self.lin {
                    let mask = self
                        .child
                        .lineage()
                        .and_then(|l| l.get(idx))
                        .copied()
                        .unwrap_or_default();
                    lin.push(mask);
                }
                self.rows_out += 1;
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        // One batch pull from the child per batch of survivors keeps the
        // child's dispatch amortized even under selective predicates.
        let mut appended = 0;
        while appended < max {
            self.scratch.clear();
            let pulled = self.child.next_batch(&mut self.scratch, max - appended)?;
            if pulled == 0 {
                break;
            }
            let base = self.consumed;
            self.consumed += pulled;
            for (i, t) in self.scratch.drain(..).enumerate() {
                if self.predicate.eval_bool(&t, &self.funcs)? {
                    out.push(t);
                    appended += 1;
                    if let Some(lin) = &mut self.lin {
                        let mask = self
                            .child
                            .lineage()
                            .and_then(|l| l.get(base + i))
                            .copied()
                            .unwrap_or_default();
                        lin.push(mask);
                    }
                }
            }
        }
        self.rows_out += appended as u64;
        Ok(appended)
    }

    fn close(&mut self) {
        self.child.close();
        self.scratch = Vec::new();
    }

    fn describe(&self) -> String {
        format!("Filter {:?}", self.predicate)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::transform("Filter").with_child_expr(0, "predicate", self.predicate.clone())
    }

    fn est_rows(&self) -> Option<u64> {
        self.est_rows
    }

    fn set_est_rows(&mut self, rows: u64) {
        self.est_rows = Some(rows);
    }

    fn lineage(&self) -> Option<&[LineageMask]> {
        self.lin.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::ops::testutil::{int_source, ints};
    use crate::run_to_vec;

    #[test]
    fn filters_rows() {
        let src = int_source(&["x"], &[&[1], &[5], &[3], &[8]]);
        let pred = ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::Col(0), ScalarExpr::lit(4i64));
        let mut op = FilterOp::new(
            Box::new(src),
            pred,
            Arc::new(FunctionRegistry::with_builtins()),
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(rows.iter().map(|t| ints(t)[0]).collect::<Vec<_>>(), [5, 8]);
        assert_eq!(op.rows_out(), 2);
    }

    #[test]
    fn eval_errors_propagate() {
        let src = int_source(&["x"], &[&[1]]);
        let pred = ScalarExpr::Call("missing".into(), vec![]);
        let mut op = FilterOp::new(
            Box::new(src),
            pred,
            Arc::new(FunctionRegistry::with_builtins()),
        );
        op.open().unwrap();
        assert!(matches!(op.next(), Err(ExecError::UnknownFunction(_))));
    }
}
