//! Grouping and aggregation.

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::expr::AggFunc;
use crate::inspect::{OpInfo, SchemaRule};
use crate::schema::{Schema, Tuple};
use nimble_xml::{Atomic, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One aggregate output: the function, its input column (`None` for
/// `COUNT(*)`), and the output variable name.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFunc,
    pub input: Option<usize>,
    pub output: String,
}

/// Hash group-by. Output schema = group columns (their original names)
/// followed by aggregate outputs. Groups are emitted in first-seen order,
/// which keeps results deterministic.
pub struct GroupAggOp {
    child: BoxedOp,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    results: Vec<Tuple>,
    cursor: usize,
    rows_out: u64,
}

#[derive(Clone)]
enum AggState {
    Count(i64),
    Sum(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, i64),
    Collect(Vec<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0, true),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Collect => AggState::Collect(Vec::new()),
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<(), ExecError> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(total, all_int) => {
                if let Some(v) = v {
                    let a = v.atomize();
                    match a {
                        Atomic::Int(i) => *total += i as f64,
                        Atomic::Float(f) => {
                            *total += f;
                            *all_int = false;
                        }
                        Atomic::Null => {}
                        other => {
                            return Err(ExecError::Arithmetic(format!(
                                "SUM over non-numeric value {:?}",
                                other
                            )))
                        }
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => v.total_cmp(c) == std::cmp::Ordering::Less,
                        };
                        if replace {
                            *cur = Some(v.clone());
                        }
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => v.total_cmp(c) == std::cmp::Ordering::Greater,
                        };
                        if replace {
                            *cur = Some(v.clone());
                        }
                    }
                }
            }
            AggState::Avg(total, n) => {
                if let Some(v) = v {
                    if let Some(f) = v.atomize().as_f64() {
                        *total += f;
                        *n += 1;
                    }
                }
            }
            AggState::Collect(items) => {
                if let Some(v) = v {
                    items.push(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::from(n),
            AggState::Sum(total, all_int) => {
                if all_int {
                    Value::from(total as i64)
                } else {
                    Value::Atomic(Atomic::Float(total))
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or_else(Value::null),
            AggState::Avg(total, n) => {
                if n == 0 {
                    Value::null()
                } else {
                    Value::Atomic(Atomic::Float(total / n as f64))
                }
            }
            AggState::Collect(items) => Value::List(Arc::new(items)),
        }
    }
}

impl GroupAggOp {
    pub fn new(child: BoxedOp, group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> Self {
        let mut vars: Vec<String> = group_cols
            .iter()
            .map(|&c| child.schema().vars()[c].clone())
            .collect();
        vars.extend(aggs.iter().map(|a| a.output.clone()));
        let schema = Schema::new(vars);
        GroupAggOp {
            child,
            group_cols,
            aggs,
            schema,
            results: Vec::new(),
            cursor: 0,
            rows_out: 0,
        }
    }

    fn group_key(&self, t: &Tuple) -> String {
        let mut out = String::new();
        for &c in &self.group_cols {
            out.push_str(&t[c].atomize().lexical());
            out.push('\u{1}');
        }
        out
    }
}

impl Operator for GroupAggOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.child.open()?;
        // key → (first-seen index, representative group values, agg states)
        let mut groups: HashMap<String, (usize, Vec<Value>, Vec<AggState>)> = HashMap::new();
        let mut order = 0usize;
        let mut batch = Vec::new();
        loop {
            batch.clear();
            if self.child.next_batch(&mut batch, super::DEFAULT_BATCH_SIZE)? == 0 {
                break;
            }
            for t in &batch {
                let key = self.group_key(t);
                let entry = groups.entry(key).or_insert_with(|| {
                    let reps = self.group_cols.iter().map(|&c| t[c].clone()).collect();
                    let states = self.aggs.iter().map(|a| AggState::new(a.func)).collect();
                    let e = (order, reps, states);
                    order += 1;
                    e
                });
                for (spec, state) in self.aggs.iter().zip(entry.2.iter_mut()) {
                    // COUNT(*) ignores its (absent) input; the other
                    // functions skip updates when no input column is given.
                    state.update(spec.input.map(|c| &t[c]))?;
                }
            }
        }
        self.child.close();
        let mut rows: Vec<(usize, Tuple)> = groups
            .into_values()
            .map(|(ord, reps, states)| {
                let mut row = reps;
                row.extend(states.into_iter().map(AggState::finish));
                (ord, row)
            })
            .collect();
        rows.sort_by_key(|(ord, _)| *ord);
        self.results = rows.into_iter().map(|(_, r)| r).collect();
        self.cursor = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.cursor < self.results.len() {
            let t = self.results[self.cursor].clone();
            self.cursor += 1;
            self.rows_out += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let n = max.min(self.results.len().saturating_sub(self.cursor));
        out.extend_from_slice(&self.results[self.cursor..self.cursor + n]);
        self.cursor += n;
        self.rows_out += n as u64;
        Ok(n)
    }

    fn close(&mut self) {
        self.results.clear();
    }

    fn describe(&self) -> String {
        format!(
            "GroupAgg by {:?} computing {:?}",
            self.group_cols,
            self.aggs
                .iter()
                .map(|a| format!("{:?}({:?})", a.func, a.input))
                .collect::<Vec<_>>()
        )
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        let mut info = OpInfo::new("GroupAgg", SchemaRule::Opaque)
            .with_grouping(self.group_cols.clone(), self.aggs.len());
        for a in &self.aggs {
            if let Some(c) = a.input {
                info = info.with_child_col(0, format!("{:?} input", a.func), c);
            }
        }
        info
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::int_source;
    use crate::run_to_vec;

    fn agg(func: AggFunc, input: Option<usize>, output: &str) -> AggSpec {
        AggSpec {
            func,
            input,
            output: output.to_string(),
        }
    }

    #[test]
    fn count_sum_avg_per_group() {
        let src = int_source(
            &["k", "v"],
            &[&[1, 10], &[2, 20], &[1, 30], &[2, 40], &[1, 50]],
        );
        let mut op = GroupAggOp::new(
            Box::new(src),
            vec![0],
            vec![
                agg(AggFunc::Count, None, "n"),
                agg(AggFunc::Sum, Some(1), "total"),
                agg(AggFunc::Avg, Some(1), "mean"),
            ],
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(op.schema().vars(), &["k", "n", "total", "mean"]);
        // First-seen order: group 1 then group 2.
        assert_eq!(rows[0][1].atomize(), Atomic::Int(3));
        assert_eq!(rows[0][2].atomize(), Atomic::Int(90));
        assert_eq!(rows[0][3].atomize(), Atomic::Float(30.0));
        assert_eq!(rows[1][2].atomize(), Atomic::Int(60));
    }

    #[test]
    fn min_max() {
        let src = int_source(&["k", "v"], &[&[1, 5], &[1, 2], &[1, 9]]);
        let mut op = GroupAggOp::new(
            Box::new(src),
            vec![0],
            vec![
                agg(AggFunc::Min, Some(1), "lo"),
                agg(AggFunc::Max, Some(1), "hi"),
            ],
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(rows[0][1].atomize(), Atomic::Int(2));
        assert_eq!(rows[0][2].atomize(), Atomic::Int(9));
    }

    #[test]
    fn global_aggregate_no_groups() {
        let src = int_source(&["v"], &[&[1], &[2], &[3]]);
        let mut op = GroupAggOp::new(
            Box::new(src),
            vec![],
            vec![agg(AggFunc::Count, None, "n")],
        );
        let rows = run_to_vec(&mut op).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].atomize(), Atomic::Int(3));
    }

    #[test]
    fn collect_preserves_order() {
        let src = int_source(&["k", "v"], &[&[1, 7], &[1, 8], &[1, 9]]);
        let mut op = GroupAggOp::new(
            Box::new(src),
            vec![0],
            vec![agg(AggFunc::Collect, Some(1), "vs")],
        );
        let rows = run_to_vec(&mut op).unwrap();
        match &rows[0][1] {
            Value::List(items) => {
                let vals: Vec<String> = items.iter().map(|v| v.lexical()).collect();
                assert_eq!(vals, ["7", "8", "9"]);
            }
            other => panic!("expected list, got {:?}", other),
        }
    }

    #[test]
    fn empty_input_yields_single_global_row() {
        let src = int_source(&["v"], &[]);
        let mut op = GroupAggOp::new(
            Box::new(src),
            vec![],
            vec![agg(AggFunc::Count, None, "n")],
        );
        let rows = run_to_vec(&mut op).unwrap();
        // SQL convention: global aggregate over empty input returns one
        // row — but only when a group actually formed; with zero input
        // tuples no group forms, matching set-of-groups semantics.
        assert!(rows.is_empty());
    }
}
