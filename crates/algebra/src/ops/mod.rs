//! Physical operators (Volcano-style pull iterators with a vectorized
//! batch interface).
//!
//! Every operator implements [`Operator`]: `open` prepares state, `next`
//! yields one tuple, `close` releases resources. Operators own their
//! children as boxed trait objects; plans are trees built by the
//! mediator's planner.
//!
//! On top of the tuple-at-a-time contract sits [`Operator::next_batch`]:
//! consumers that can process many tuples per call (the engine's join
//! run, materializing parents like sorts and hash builds) pull batches
//! of ~[`DEFAULT_BATCH_SIZE`] tuples and pay one virtual dispatch per
//! batch instead of one per row. The default implementation loops
//! `next`, so third-party / opaque operators participate unchanged; the
//! hot built-ins override it with batch-native kernels.

mod empty;
mod exchange;
mod filter;
mod group;
mod join;
mod limit;
mod metered;
mod navigate;
mod project;
mod scan;
mod setops;
mod sort;

pub use empty::EmptyOp;
pub use exchange::{ExchangeOp, ShardFailure};
pub use filter::FilterOp;
pub use group::{AggSpec, GroupAggOp};
pub use join::{HashJoinOp, JoinType, MergeJoinOp, NestedLoopJoinOp};
pub use limit::LimitOp;
pub use metered::{MeteredOp, OpProfile};
pub use navigate::NavigateOp;
pub use project::ProjectOp;
pub use scan::{LazySourceOp, ValuesOp};
pub use setops::{DistinctOp, UnionOp};
pub use sort::{SortKey, SortOp};

use crate::error::ExecError;
use crate::inspect::OpInfo;
use crate::schema::{Schema, Tuple};

/// Default number of tuples moved per `next_batch` call. Chosen so a
/// batch of small tuples stays cache-resident while amortizing the
/// per-call virtual dispatch to noise.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Per-worker busy times from one scoped fork/join section (hash-join
/// build key extraction, parallel sort-key extraction).
///
/// `workers == 0` means the operator ran in parallel mode but the input
/// fell below the profitability threshold (or only one core was
/// available), so the serial kernel ran — the "threshold-skipped" case
/// the engine counts separately from genuine parallel sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParProfile {
    /// Scoped threads actually spawned (0 = threshold-skipped).
    pub workers: usize,
    /// Wall-clock busy time of each worker, in microseconds, in chunk
    /// order. Spread across entries is idle/imbalance evidence.
    pub busy_us: Vec<u64>,
}

/// Approximate heap footprint of a buffered tuple set: `Vec` headers
/// plus value slots. Deliberately O(n) in tuples but O(1) per tuple —
/// string payloads are not walked — so operators can afford to compute
/// it once when a buffer is built and cache the result for the O(1)
/// [`Operator::mem_bytes`] hint.
pub fn tuples_mem_bytes(tuples: &[Tuple]) -> u64 {
    let slot = std::mem::size_of::<nimble_xml::Value>();
    let header = std::mem::size_of::<Tuple>();
    tuples
        .iter()
        .map(|t| (header + t.capacity() * slot) as u64)
        .sum()
}

/// The physical-operator interface.
pub trait Operator: Send {
    /// Output schema (variable names per column).
    fn schema(&self) -> &Schema;
    /// Prepare for iteration. Must be called before `next`.
    fn open(&mut self) -> Result<(), ExecError>;
    /// Produce the next tuple, or `None` at end of stream.
    fn next(&mut self) -> Result<Option<Tuple>, ExecError>;
    /// Append up to `max` tuples to `out`, returning how many were
    /// appended. `Ok(0)` means end of stream (callers must not retry).
    ///
    /// Contract notes:
    /// - `max` is a *hint*: batch-native operators whose unit of work
    ///   fans out (one probe row matching many build rows) may append a
    ///   few more than `max` rather than buffer the remainder.
    /// - The default implementation loops [`Operator::next`], so opaque
    ///   / third-party operators participate in batched pipelines
    ///   unchanged, just without the batch speedup.
    /// - Mixing `next` and `next_batch` on one open operator is
    ///   allowed; both draw from the same stream position.
    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let mut appended = 0;
        while appended < max {
            match self.next()? {
                Some(t) => {
                    out.push(t);
                    appended += 1;
                }
                None => break,
            }
        }
        Ok(appended)
    }
    /// Release resources. Idempotent.
    fn close(&mut self);
    /// One-line description for EXPLAIN output.
    fn describe(&self) -> String;
    /// Child operators, for plan walking.
    fn children(&self) -> Vec<&dyn Operator>;
    /// Tuples produced so far (monotonic across one execution).
    fn rows_out(&self) -> u64;
    /// Static metadata for plan verification (see `nimble-planck`). The
    /// default is an opaque node the verifier treats conservatively.
    fn introspect(&self) -> OpInfo {
        OpInfo::opaque(self.describe())
    }
    /// Measured execution profile, when this node is wrapped by
    /// [`MeteredOp`] (EXPLAIN ANALYZE). Plain operators report `None`.
    fn profile(&self) -> Option<OpProfile> {
        None
    }
    /// Planner-estimated output rows, rendered by EXPLAIN as `[est=N]`
    /// next to the actual `[rows=N]`. `None` when the planner had no
    /// statistics for this node.
    fn est_rows(&self) -> Option<u64> {
        None
    }
    /// Attach a cardinality estimate (called by cost-based planners;
    /// the default silently ignores it, so opaque operators need no
    /// changes).
    fn set_est_rows(&mut self, _rows: u64) {}
    /// Bytes of buffered state this operator currently holds (hash-join
    /// build tables, sort buffers, scan batches). An O(1) hint computed
    /// when the buffer is built, not a live measurement; 0 for
    /// streaming operators. EXPLAIN ANALYZE renders it as `[mem=N]`.
    fn mem_bytes(&self) -> u64 {
        0
    }
    /// Per-worker busy times of this operator's most recent parallel
    /// section, when it ran one (see [`ParProfile`]). `None` for
    /// operators that never fork.
    fn par_profile(&self) -> Option<&ParProfile> {
        None
    }
    /// Where-provenance side channel. `None` means this operator does
    /// not track lineage (the default — zero cost); `Some(masks)` holds
    /// one [`crate::LineageMask`] per tuple emitted since `open`, in
    /// emission order, and must remain readable after `close` (parents
    /// and the engine harvest lineage post-drain). An operator only
    /// tracks when every child it consumes tracks; before `open`, a
    /// tracking operator reports `Some(&[])`.
    fn lineage(&self) -> Option<&[crate::LineageMask]> {
        None
    }
}

/// Boxed operator alias used throughout planners.
pub type BoxedOp = Box<dyn Operator>;

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use nimble_xml::Value;

    /// Schema + integer rows shorthand for operator tests.
    pub fn int_source(vars: &[&str], rows: &[&[i64]]) -> ValuesOp {
        let schema = Schema::new(vars.iter().map(|s| s.to_string()).collect());
        let tuples = rows
            .iter()
            .map(|r| r.iter().map(|&v| Value::from(v)).collect())
            .collect();
        ValuesOp::new(schema, tuples)
    }

    pub fn ints(tuple: &Tuple) -> Vec<i64> {
        tuple
            .iter()
            .map(|v| match v.atomize() {
                nimble_xml::Atomic::Int(i) => i,
                other => panic!("expected int, got {:?}", other),
            })
            .collect()
    }
}
