//! Physical operators (Volcano-style pull iterators with a vectorized
//! batch interface).
//!
//! Every operator implements [`Operator`]: `open` prepares state, `next`
//! yields one tuple, `close` releases resources. Operators own their
//! children as boxed trait objects; plans are trees built by the
//! mediator's planner.
//!
//! On top of the tuple-at-a-time contract sits [`Operator::next_batch`]:
//! consumers that can process many tuples per call (the engine's join
//! run, materializing parents like sorts and hash builds) pull batches
//! of ~[`DEFAULT_BATCH_SIZE`] tuples and pay one virtual dispatch per
//! batch instead of one per row. The default implementation loops
//! `next`, so third-party / opaque operators participate unchanged; the
//! hot built-ins override it with batch-native kernels.

mod empty;
mod filter;
mod group;
mod join;
mod limit;
mod metered;
mod navigate;
mod project;
mod scan;
mod setops;
mod sort;

pub use empty::EmptyOp;
pub use filter::FilterOp;
pub use group::{AggSpec, GroupAggOp};
pub use join::{HashJoinOp, JoinType, MergeJoinOp, NestedLoopJoinOp};
pub use limit::LimitOp;
pub use metered::{MeteredOp, OpProfile};
pub use navigate::NavigateOp;
pub use project::ProjectOp;
pub use scan::{LazySourceOp, ValuesOp};
pub use setops::{DistinctOp, UnionOp};
pub use sort::{SortKey, SortOp};

use crate::error::ExecError;
use crate::inspect::OpInfo;
use crate::schema::{Schema, Tuple};

/// Default number of tuples moved per `next_batch` call. Chosen so a
/// batch of small tuples stays cache-resident while amortizing the
/// per-call virtual dispatch to noise.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// The physical-operator interface.
pub trait Operator: Send {
    /// Output schema (variable names per column).
    fn schema(&self) -> &Schema;
    /// Prepare for iteration. Must be called before `next`.
    fn open(&mut self) -> Result<(), ExecError>;
    /// Produce the next tuple, or `None` at end of stream.
    fn next(&mut self) -> Result<Option<Tuple>, ExecError>;
    /// Append up to `max` tuples to `out`, returning how many were
    /// appended. `Ok(0)` means end of stream (callers must not retry).
    ///
    /// Contract notes:
    /// - `max` is a *hint*: batch-native operators whose unit of work
    ///   fans out (one probe row matching many build rows) may append a
    ///   few more than `max` rather than buffer the remainder.
    /// - The default implementation loops [`Operator::next`], so opaque
    ///   / third-party operators participate in batched pipelines
    ///   unchanged, just without the batch speedup.
    /// - Mixing `next` and `next_batch` on one open operator is
    ///   allowed; both draw from the same stream position.
    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let mut appended = 0;
        while appended < max {
            match self.next()? {
                Some(t) => {
                    out.push(t);
                    appended += 1;
                }
                None => break,
            }
        }
        Ok(appended)
    }
    /// Release resources. Idempotent.
    fn close(&mut self);
    /// One-line description for EXPLAIN output.
    fn describe(&self) -> String;
    /// Child operators, for plan walking.
    fn children(&self) -> Vec<&dyn Operator>;
    /// Tuples produced so far (monotonic across one execution).
    fn rows_out(&self) -> u64;
    /// Static metadata for plan verification (see `nimble-planck`). The
    /// default is an opaque node the verifier treats conservatively.
    fn introspect(&self) -> OpInfo {
        OpInfo::opaque(self.describe())
    }
    /// Measured execution profile, when this node is wrapped by
    /// [`MeteredOp`] (EXPLAIN ANALYZE). Plain operators report `None`.
    fn profile(&self) -> Option<OpProfile> {
        None
    }
    /// Planner-estimated output rows, rendered by EXPLAIN as `[est=N]`
    /// next to the actual `[rows=N]`. `None` when the planner had no
    /// statistics for this node.
    fn est_rows(&self) -> Option<u64> {
        None
    }
    /// Attach a cardinality estimate (called by cost-based planners;
    /// the default silently ignores it, so opaque operators need no
    /// changes).
    fn set_est_rows(&mut self, _rows: u64) {}
}

/// Boxed operator alias used throughout planners.
pub type BoxedOp = Box<dyn Operator>;

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use nimble_xml::Value;

    /// Schema + integer rows shorthand for operator tests.
    pub fn int_source(vars: &[&str], rows: &[&[i64]]) -> ValuesOp {
        let schema = Schema::new(vars.iter().map(|s| s.to_string()).collect());
        let tuples = rows
            .iter()
            .map(|r| r.iter().map(|&v| Value::from(v)).collect())
            .collect();
        ValuesOp::new(schema, tuples)
    }

    pub fn ints(tuple: &Tuple) -> Vec<i64> {
        tuple
            .iter()
            .map(|v| match v.atomize() {
                nimble_xml::Atomic::Int(i) => i,
                other => panic!("expected int, got {:?}", other),
            })
            .collect()
    }
}
