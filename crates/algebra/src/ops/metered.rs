//! Per-operator instrumentation: the EXPLAIN ANALYZE wrapper.
//!
//! [`MeteredOp`] wraps any operator and measures its open time, its
//! cumulative `next()` time, and the rows it produced, while staying
//! invisible to everything else: `schema`, `describe`, `children`,
//! `rows_out`, and `introspect` all delegate to the wrapped operator, so
//! EXPLAIN rendering and `nimble-planck` verification see the identical
//! plan. Times are *inclusive* — a parent's `next()` time contains its
//! children's, as in every EXPLAIN ANALYZE.
//!
//! The planner inserts these wrappers around every node it assembles
//! when `EngineConfig::profile` is on (or `Engine::explain_analyze`
//! forces it); with profiling off, plans carry no wrappers and pay no
//! per-tuple cost.

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::inspect::OpInfo;
use crate::schema::{Schema, Tuple};
use std::time::Instant;

/// Measurements one [`MeteredOp`] collected over the last execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// Time spent inside `open()` (hash builds, sorts, source fetches).
    pub open_ns: u64,
    /// Cumulative time inside `next()` calls, children included.
    pub next_ns: u64,
    /// Rows this operator produced.
    pub rows: u64,
    /// Largest buffered-state footprint the wrapped operator reported
    /// ([`Operator::mem_bytes`]), sampled after `open` and after each
    /// `next`/`next_batch` — the high-water mark of build tables, sort
    /// buffers, and scan batches during this execution.
    pub mem_bytes: u64,
}

impl OpProfile {
    /// Open + next time, in milliseconds.
    pub fn total_ms(&self) -> f64 {
        (self.open_ns + self.next_ns) as f64 / 1e6
    }
}

/// Transparent instrumentation wrapper (see module docs).
pub struct MeteredOp {
    inner: BoxedOp,
    open_ns: u64,
    next_ns: u64,
    rows: u64,
    mem_bytes: u64,
}

impl MeteredOp {
    pub fn new(inner: BoxedOp) -> MeteredOp {
        MeteredOp {
            inner,
            open_ns: 0,
            next_ns: 0,
            rows: 0,
            mem_bytes: 0,
        }
    }

    fn sample_mem(&mut self) {
        self.mem_bytes = self.mem_bytes.max(self.inner.mem_bytes());
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

impl Operator for MeteredOp {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.open_ns = 0;
        self.next_ns = 0;
        self.rows = 0;
        self.mem_bytes = 0;
        let start = Instant::now();
        let result = self.inner.open();
        self.open_ns = elapsed_ns(start);
        self.sample_mem();
        result
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        let start = Instant::now();
        let result = self.inner.next();
        self.next_ns += elapsed_ns(start);
        if let Ok(Some(_)) = &result {
            self.rows += 1;
        }
        self.sample_mem();
        result
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        // Forward to the inner operator's batch kernel (the default
        // trait impl would loop *our* `next`, silently de-vectorizing
        // every profiled plan). Batch time is accounted under `next_ns`.
        let start = Instant::now();
        let result = self.inner.next_batch(out, max);
        self.next_ns += elapsed_ns(start);
        if let Ok(n) = &result {
            self.rows += *n as u64;
        }
        self.sample_mem();
        result
    }

    fn close(&mut self) {
        self.inner.close();
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }

    fn children(&self) -> Vec<&dyn Operator> {
        self.inner.children()
    }

    fn rows_out(&self) -> u64 {
        self.inner.rows_out()
    }

    fn introspect(&self) -> OpInfo {
        self.inner.introspect()
    }

    fn est_rows(&self) -> Option<u64> {
        self.inner.est_rows()
    }

    fn set_est_rows(&mut self, rows: u64) {
        self.inner.set_est_rows(rows);
    }

    fn mem_bytes(&self) -> u64 {
        self.inner.mem_bytes()
    }

    fn par_profile(&self) -> Option<&super::ParProfile> {
        self.inner.par_profile()
    }

    fn lineage(&self) -> Option<&[crate::LineageMask]> {
        self.inner.lineage()
    }

    fn profile(&self) -> Option<OpProfile> {
        Some(OpProfile {
            open_ns: self.open_ns,
            next_ns: self.next_ns,
            rows: self.rows,
            mem_bytes: self.mem_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::int_source;
    use super::*;
    use crate::run_to_vec;

    #[test]
    fn metering_is_transparent_and_counts_rows() {
        let plain = int_source(&["x"], &[&[1], &[2], &[3]]);
        let mut metered = MeteredOp::new(Box::new(int_source(&["x"], &[&[1], &[2], &[3]])));
        assert_eq!(metered.schema(), plain.schema());
        assert_eq!(metered.describe(), plain.describe());
        assert_eq!(metered.introspect().name, plain.introspect().name);
        assert!(metered.children().is_empty());

        let rows = run_to_vec(&mut metered).unwrap();
        assert_eq!(rows.len(), 3);
        let p = metered.profile().unwrap();
        assert_eq!(p.rows, 3);
        assert_eq!(metered.rows_out(), 3);
        assert!(p.total_ms() >= 0.0);

        // Re-running resets the measurements.
        let _ = run_to_vec(&mut metered).unwrap();
        assert_eq!(metered.profile().unwrap().rows, 3);
    }

    #[test]
    fn unmetered_operators_have_no_profile() {
        let op = int_source(&["x"], &[&[1]]);
        assert!(op.profile().is_none());
    }
}
