//! Scatter-gather Exchange: fan a scan subtree out across shard-local
//! children and merge their streams.
//!
//! Each child produces one shard's slice of a partitioned collection
//! (typically a [`super::LazySourceOp`] wrapping a shard-local fetch).
//! `open` **gathers**: every child is opened and drained to completion —
//! in parallel over the process-wide morsel pool when one exists, one
//! pool task per child — and the buffered shard streams are then served
//! in child order through `next`/`next_batch`.
//!
//! A failing child is not fatal by default: the error is recorded as a
//! [`ShardFailure`] and the merge proceeds with the surviving shards —
//! the operator-level half of the mediator's partial-results story
//! (callers turn failures into `missing_sources` annotations).
//! [`ExchangeOp::fail_fast`] restores all-or-nothing semantics.

use super::{BoxedOp, Operator};
use crate::error::ExecError;
use crate::inspect::{OpInfo, SchemaRule};
use crate::schema::{Schema, Tuple};
use std::sync::Mutex;

/// One child that failed to produce its shard during gather.
#[derive(Debug)]
pub struct ShardFailure {
    /// Child index (shard position in the exchange).
    pub child: usize,
    /// The child's shard label.
    pub label: String,
    pub error: ExecError,
}

/// Scatter-gather merge of shard-local streams (see module docs).
pub struct ExchangeOp {
    children: Vec<BoxedOp>,
    labels: Vec<String>,
    fail_fast: bool,
    /// Per-child gathered buffers, in child order (empty for failures).
    gathered: Vec<Vec<Tuple>>,
    failures: Vec<ShardFailure>,
    /// True when the last gather ran as one pool task per child.
    parallel_gather: bool,
    current: usize,
    pos: usize,
    rows_out: u64,
    mem_bytes: u64,
}

/// Open + drain one child to completion. The child is closed before
/// returning so a shard's resources are released as soon as its slice
/// is buffered.
fn gather_child(child: &mut BoxedOp) -> Result<Vec<Tuple>, ExecError> {
    child.open()?;
    let mut buf = Vec::new();
    loop {
        let n = child.next_batch(&mut buf, super::DEFAULT_BATCH_SIZE)?;
        if n == 0 {
            break;
        }
    }
    child.close();
    Ok(buf)
}

impl ExchangeOp {
    /// Build an exchange over shard children with identical schemas.
    /// `labels` names each child (shard id / source label) for failure
    /// reporting; it must be parallel to `children`.
    pub fn new(children: Vec<BoxedOp>, labels: Vec<String>) -> Result<Self, ExecError> {
        if children.is_empty() {
            return Err(ExecError::Operator("exchange of zero inputs".into()));
        }
        if labels.len() != children.len() {
            return Err(ExecError::Operator(format!(
                "exchange: {} labels for {} children",
                labels.len(),
                children.len()
            )));
        }
        let first = children[0].schema().clone();
        for c in &children[1..] {
            if c.schema() != &first {
                return Err(ExecError::Operator(format!(
                    "exchange schema mismatch: {} vs {}",
                    first,
                    c.schema()
                )));
            }
        }
        Ok(ExchangeOp {
            children,
            labels,
            fail_fast: false,
            gathered: Vec::new(),
            failures: Vec::new(),
            parallel_gather: false,
            current: 0,
            pos: 0,
            rows_out: 0,
            mem_bytes: 0,
        })
    }

    /// All-or-nothing mode: the first child failure aborts `open`
    /// instead of degrading to a partial merge.
    pub fn fail_fast(mut self, yes: bool) -> Self {
        self.fail_fast = yes;
        self
    }

    /// Children that failed during the last gather, in child order.
    pub fn failures(&self) -> &[ShardFailure] {
        &self.failures
    }

    /// Tuples gathered from each child during the last `open`, in child
    /// order (0 for failed children). The merged stream emits exactly
    /// these, contiguously per child — callers attribute provenance per
    /// shard from the counts.
    pub fn gathered_counts(&self) -> Vec<usize> {
        self.gathered.iter().map(Vec::len).collect()
    }

    /// True when the last gather fanned out over the morsel pool (one
    /// task per child); false for the serial fallback.
    pub fn gathered_parallel(&self) -> bool {
        self.parallel_gather
    }

    /// Move the gathered buffers out (per child, in child order),
    /// consuming the operator. The engine's fetch path uses this to
    /// avoid re-copying the merged stream it just drove.
    pub fn into_gathered(self) -> (Vec<Vec<Tuple>>, Vec<ShardFailure>) {
        (self.gathered, self.failures)
    }
}

impl Operator for ExchangeOp {
    fn schema(&self) -> &Schema {
        self.children[0].schema()
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.rows_out = 0;
        self.current = 0;
        self.pos = 0;
        self.failures.clear();
        // Scatter: one pool task per child. `par_tasks` declines (no
        // pool, single child, nested round, or a panicked participant)
        // into the serial loop below; children must therefore be
        // replayable across a declined partial round, which holds for
        // the lazy per-shard producers the planner wires in.
        let results: Vec<Result<Vec<Tuple>, ExecError>> = {
            let slots: Vec<Mutex<&mut BoxedOp>> =
                self.children.iter_mut().map(Mutex::new).collect();
            match crate::par::par_tasks(slots.len(), |i| {
                let mut child = slots[i].lock().unwrap_or_else(|e| e.into_inner());
                gather_child(&mut child)
            }) {
                Some(results) => {
                    self.parallel_gather = true;
                    results
                }
                None => {
                    self.parallel_gather = false;
                    self.children.iter_mut().map(gather_child).collect()
                }
            }
        };
        self.gathered = Vec::with_capacity(results.len());
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(buf) => self.gathered.push(buf),
                Err(error) => {
                    if self.fail_fast {
                        self.gathered.clear();
                        return Err(error);
                    }
                    self.failures.push(ShardFailure {
                        child: i,
                        label: self.labels.get(i).cloned().unwrap_or_default(),
                        error,
                    });
                    self.gathered.push(Vec::new());
                }
            }
        }
        self.mem_bytes = self
            .gathered
            .iter()
            .map(|b| super::tuples_mem_bytes(b))
            .sum();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        while self.current < self.gathered.len() {
            if self.pos < self.gathered[self.current].len() {
                let t = self.gathered[self.current][self.pos].clone();
                self.pos += 1;
                self.rows_out += 1;
                return Ok(Some(t));
            }
            self.current += 1;
            self.pos = 0;
        }
        Ok(None)
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let mut appended = 0;
        while appended < max && self.current < self.gathered.len() {
            let buf = &self.gathered[self.current];
            let take = (max - appended).min(buf.len() - self.pos);
            if take == 0 {
                self.current += 1;
                self.pos = 0;
                continue;
            }
            out.extend_from_slice(&buf[self.pos..self.pos + take]);
            self.pos += take;
            appended += take;
        }
        self.rows_out += appended as u64;
        Ok(appended)
    }

    fn close(&mut self) {
        // Gathered buffers are kept: like other materializing operators,
        // counts/failures remain readable post-drain (the engine
        // harvests shard attribution after execution).
    }

    fn describe(&self) -> String {
        if self.failures.is_empty() {
            format!("Exchange ({} shards)", self.children.len())
        } else {
            format!(
                "Exchange ({} shards, {} failed)",
                self.children.len(),
                self.failures.len()
            )
        }
    }

    fn children(&self) -> Vec<&dyn Operator> {
        self.children.iter().map(|c| c.as_ref()).collect()
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::new("Exchange", SchemaRule::Uniform)
    }

    fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{int_source, ints};
    use crate::ops::LazySourceOp;
    use crate::run_to_vec;
    use crate::schema::Schema;

    fn shard(vals: &[i64]) -> BoxedOp {
        let rows: Vec<Vec<i64>> = vals.iter().map(|&v| vec![v]).collect();
        let slices: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        Box::new(int_source(&["x"], &slices))
    }

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard{}", i)).collect()
    }

    #[test]
    fn merges_shard_streams_in_child_order() {
        let mut op =
            ExchangeOp::new(vec![shard(&[1, 2]), shard(&[]), shard(&[3])], labels(3)).unwrap();
        let rows: Vec<i64> = run_to_vec(&mut op).unwrap().iter().map(|t| ints(t)[0]).collect();
        assert_eq!(rows, [1, 2, 3]);
        assert_eq!(op.gathered_counts(), vec![2, 0, 1]);
        assert!(op.failures().is_empty());
    }

    #[test]
    fn batch_interface_crosses_shard_boundaries() {
        let mut op = ExchangeOp::new(vec![shard(&[1, 2, 3]), shard(&[4, 5])], labels(2)).unwrap();
        op.open().unwrap();
        let mut out = Vec::new();
        // One batch call pulls across the child boundary.
        assert_eq!(op.next_batch(&mut out, 10).unwrap(), 5);
        assert_eq!(op.next_batch(&mut out, 10).unwrap(), 0);
        assert_eq!(out.len(), 5);
        assert_eq!(op.rows_out(), 5);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let a = int_source(&["x"], &[]);
        let b = int_source(&["y"], &[]);
        assert!(ExchangeOp::new(vec![Box::new(a), Box::new(b)], labels(2)).is_err());
        assert!(ExchangeOp::new(Vec::new(), Vec::new()).is_err());
    }

    fn failing_shard(label: &str) -> BoxedOp {
        let source = label.to_string();
        Box::new(LazySourceOp::new(
            Schema::new(vec!["x".into()]),
            label,
            move || {
                Err(ExecError::Source {
                    source: source.clone(),
                    message: "shard offline".into(),
                })
            },
        ))
    }

    #[test]
    fn dead_shard_degrades_to_partial_merge() {
        let mut op = ExchangeOp::new(
            vec![shard(&[1]), failing_shard("s#1"), shard(&[9])],
            vec!["s#0".into(), "s#1".into(), "s#2".into()],
        )
        .unwrap();
        let rows: Vec<i64> = run_to_vec(&mut op).unwrap().iter().map(|t| ints(t)[0]).collect();
        assert_eq!(rows, [1, 9], "surviving shards still merge");
        assert_eq!(op.failures().len(), 1);
        assert_eq!(op.failures()[0].child, 1);
        assert_eq!(op.failures()[0].label, "s#1");
        assert_eq!(op.gathered_counts(), vec![1, 0, 1]);
    }

    #[test]
    fn fail_fast_aborts_on_dead_shard() {
        let mut op = ExchangeOp::new(
            vec![shard(&[1]), failing_shard("s#1")],
            labels(2),
        )
        .unwrap()
        .fail_fast(true);
        assert!(op.open().is_err());
    }

    #[test]
    fn parallel_gather_on_a_pool_matches_serial() {
        // Force the pool path even on single-core hosts via a private
        // pool; results and counts must be identical to the serial path.
        let pool = crate::par::tests_pool();
        let make = || {
            ExchangeOp::new(
                vec![shard(&[1, 2]), shard(&[3]), shard(&[4, 5, 6]), shard(&[])],
                labels(4),
            )
            .unwrap()
        };
        let mut serial = make();
        let expect = run_to_vec(&mut serial).unwrap();
        let got = crate::par::par_tasks_on(pool, 2, |_| {
            // Run the whole exchange inside a pool task: its own nested
            // gather then declines to serial — exercising the guard.
            let mut op = make();
            run_to_vec(&mut op).map(|rows| (rows, op.gathered_parallel()))
        })
        .unwrap();
        for r in got {
            let (rows, parallel) = r.unwrap();
            assert_eq!(rows, expect);
            assert!(!parallel, "nested gather must have declined to serial");
        }
    }
}
