//! Tuple sources: in-memory values and lazily-produced batches.

use super::Operator;
use crate::error::ExecError;
use crate::inspect::OpInfo;
use crate::lineage::LineageMask;
use crate::schema::{Schema, Tuple};

/// An in-memory tuple source.
pub struct ValuesOp {
    schema: Schema,
    tuples: Vec<Tuple>,
    cursor: usize,
    rows_out: u64,
    label: String,
    drain: bool,
    est_rows: Option<u64>,
    /// Buffer footprint, computed once at `open` (drained tuples keep
    /// their accounted size — the scan did hold them).
    mem_bytes: u64,
    /// Uniform provenance of every tuple this scan emits; `None`
    /// disables lineage tracking entirely (the default).
    lin_mask: Option<LineageMask>,
    /// Per-tuple provenance, parallel to `tuples` — set when one scan
    /// carries rows from several units (a sharded collection merged by
    /// an Exchange). Takes precedence over `lin_mask`.
    lin_per_tuple: Option<Vec<LineageMask>>,
    lin: Vec<LineageMask>,
}

impl ValuesOp {
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Self {
        ValuesOp {
            schema,
            tuples,
            cursor: 0,
            rows_out: 0,
            label: "Values".to_string(),
            drain: false,
            est_rows: None,
            mem_bytes: 0,
            lin_mask: None,
            lin_per_tuple: None,
            lin: Vec::new(),
        }
    }

    /// Attach a display label (e.g. the source collection name).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Tag every emitted tuple with `mask` and turn this scan into a
    /// lineage-tracking leaf (see [`Operator::lineage`]).
    pub fn with_lineage(mut self, mask: LineageMask) -> Self {
        self.lin_mask = Some(mask);
        self
    }

    /// Tag each tuple with its own mask (parallel to the tuple vector)
    /// — the shape of a sharded scan, where one merged buffer carries
    /// rows attributed to different per-shard provenance units. `masks`
    /// shorter than the tuple vector pads with the empty mask.
    pub fn with_lineage_masks(mut self, masks: Vec<LineageMask>) -> Self {
        self.lin_per_tuple = Some(masks);
        self
    }

    /// Single-pass mode: emitted tuples are **moved** out instead of
    /// cloned, so a scan feeding one consumer pays no per-tuple clone.
    /// Trades away replayability — reopening after any tuple was emitted
    /// yields an empty scan (a fresh `ValuesOp` replays; see
    /// `values_replayable`). The engine sets this on scans it drives
    /// exactly once per query.
    pub fn drain_on_batch(mut self) -> Self {
        self.drain = true;
        self
    }
}

impl Operator for ValuesOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), ExecError> {
        if self.drain && self.cursor > 0 {
            // Tuples already handed out were moved, not cloned; a
            // replayed drain scan is defined to be empty rather than
            // yielding husks.
            self.tuples.clear();
        }
        self.cursor = 0;
        self.rows_out = 0;
        self.mem_bytes = super::tuples_mem_bytes(&self.tuples);
        if self.lin_mask.is_some() || self.lin_per_tuple.is_some() {
            self.lin.clear();
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.cursor < self.tuples.len() {
            let t = if self.drain {
                std::mem::take(&mut self.tuples[self.cursor])
            } else {
                self.tuples[self.cursor].clone()
            };
            self.cursor += 1;
            self.rows_out += 1;
            if let Some(masks) = &self.lin_per_tuple {
                self.lin
                    .push(masks.get(self.cursor - 1).copied().unwrap_or_default());
            } else if let Some(mask) = self.lin_mask {
                self.lin.push(mask);
            }
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let n = max.min(self.tuples.len().saturating_sub(self.cursor));
        if self.drain {
            out.extend(
                self.tuples[self.cursor..self.cursor + n]
                    .iter_mut()
                    .map(std::mem::take),
            );
        } else {
            out.extend_from_slice(&self.tuples[self.cursor..self.cursor + n]);
        }
        self.cursor += n;
        self.rows_out += n as u64;
        if let Some(masks) = &self.lin_per_tuple {
            for i in self.cursor - n..self.cursor {
                self.lin.push(masks.get(i).copied().unwrap_or_default());
            }
        } else if let Some(mask) = self.lin_mask {
            self.lin.resize(self.lin.len() + n, mask);
        }
        Ok(n)
    }

    fn close(&mut self) {}

    fn describe(&self) -> String {
        format!("{} {} ({} tuples)", self.label, self.schema, self.tuples.len())
    }

    fn children(&self) -> Vec<&dyn Operator> {
        Vec::new()
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::source("Values")
    }

    fn est_rows(&self) -> Option<u64> {
        self.est_rows
    }

    fn set_est_rows(&mut self, rows: u64) {
        self.est_rows = Some(rows);
    }

    fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    fn lineage(&self) -> Option<&[LineageMask]> {
        if self.lin_mask.is_some() || self.lin_per_tuple.is_some() {
            Some(self.lin.as_slice())
        } else {
            None
        }
    }
}

/// Producer invoked at `open` time by [`LazySourceOp`].
pub type TupleProducer = dyn FnMut() -> Result<Vec<Tuple>, ExecError> + Send;

/// A source whose tuples are produced when the plan opens — the hook the
/// mediator uses to wire remote source fetches (and their failures) into
/// plans without eager evaluation at plan-build time.
pub struct LazySourceOp {
    schema: Schema,
    producer: Box<TupleProducer>,
    buffered: Vec<Tuple>,
    cursor: usize,
    rows_out: u64,
    label: String,
    mem_bytes: u64,
}

impl LazySourceOp {
    pub fn new(
        schema: Schema,
        label: impl Into<String>,
        producer: impl FnMut() -> Result<Vec<Tuple>, ExecError> + Send + 'static,
    ) -> Self {
        LazySourceOp {
            schema,
            producer: Box::new(producer),
            buffered: Vec::new(),
            cursor: 0,
            rows_out: 0,
            label: label.into(),
            mem_bytes: 0,
        }
    }
}

impl Operator for LazySourceOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.buffered = (self.producer)()?;
        self.cursor = 0;
        self.rows_out = 0;
        self.mem_bytes = super::tuples_mem_bytes(&self.buffered);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        if self.cursor < self.buffered.len() {
            let t = self.buffered[self.cursor].clone();
            self.cursor += 1;
            self.rows_out += 1;
            Ok(Some(t))
        } else {
            Ok(None)
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<usize, ExecError> {
        let n = max.min(self.buffered.len().saturating_sub(self.cursor));
        out.extend_from_slice(&self.buffered[self.cursor..self.cursor + n]);
        self.cursor += n;
        self.rows_out += n as u64;
        Ok(n)
    }

    fn close(&mut self) {
        self.buffered.clear();
        self.cursor = 0;
    }

    fn describe(&self) -> String {
        format!("Source {} {}", self.label, self.schema)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        Vec::new()
    }

    fn rows_out(&self) -> u64 {
        self.rows_out
    }

    fn introspect(&self) -> OpInfo {
        OpInfo::source(format!("Source {}", self.label))
    }

    fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_to_vec;
    use nimble_xml::Value;

    #[test]
    fn values_replayable() {
        let schema = Schema::new(vec!["x".into()]);
        let mut op = ValuesOp::new(schema, vec![vec![Value::from(1i64)], vec![Value::from(2i64)]]);
        assert_eq!(run_to_vec(&mut op).unwrap().len(), 2);
        // Reopening restarts.
        assert_eq!(run_to_vec(&mut op).unwrap().len(), 2);
    }

    #[test]
    fn per_tuple_lineage_masks_attribute_each_row() {
        use crate::lineage::LineageMask;
        let schema = Schema::new(vec!["x".into()]);
        let tuples: Vec<_> = (0..3i64).map(|i| vec![Value::from(i)]).collect();
        let mut op = ValuesOp::new(schema, tuples)
            .with_lineage_masks(vec![LineageMask::single(0), LineageMask::single(1)]);
        op.open().unwrap();
        let mut out = Vec::new();
        while op.next_batch(&mut out, 2).unwrap() > 0 {}
        let lin = op.lineage().unwrap();
        assert_eq!(lin.len(), 3);
        assert!(lin[0].contains(0) && lin[1].contains(1));
        // Rows past the mask vector get the empty mask, not a panic.
        assert!(lin[2].is_empty());
    }

    #[test]
    fn lazy_source_defers_and_propagates_errors() {
        let schema = Schema::new(vec!["x".into()]);
        let mut calls = 0u32;
        let mut op = LazySourceOp::new(schema, "flaky", move || {
            calls += 1;
            if calls == 1 {
                Err(ExecError::Source {
                    source: "flaky".into(),
                    message: "offline".into(),
                })
            } else {
                Ok(vec![vec![Value::from(7i64)]])
            }
        });
        assert!(matches!(op.open(), Err(ExecError::Source { .. })));
        // Second attempt succeeds (source came back).
        op.open().unwrap();
        assert_eq!(op.next().unwrap().unwrap()[0].atomize().lexical(), "7");
    }
}
