//! Deterministic differential tests for the interned-atom fast paths:
//! the typed hash-join key, the cached-key vectorized sort, DISTINCT,
//! and grouping must treat every coercion-class edge case exactly like
//! the pre-interning string-rendered semantics. The edges under test:
//!
//! * `NaN` — all NaNs collapse to one join/group key.
//! * `0.0` vs `-0.0` — distinct (their lexical forms differ).
//! * `2^53` and `2^53 + 1` — the boundary where `i64` leaves the f64
//!   numeric class for the exact-int class.
//! * `""` — the empty string is a real string key, distinct from null.
//! * `Sym` vs `Str` of the same content — interning is invisible.
//! * Numeric strings (`"42"`, `" 42 "`) — coerce into the numeric
//!   class, whitespace-trimmed.
//!
//! The offline-harness counterpart of the cargo-only proptest suites:
//! these run everywhere, with fixed inputs.

use crate::ops::{DistinctOp, GroupAggOp, HashJoinOp, JoinType, Operator, SortKey, SortOp, ValuesOp};
use crate::run_to_vec;
use crate::schema::{Schema, Tuple};
use nimble_xml::{Atomic, Sym, Value};

/// The edge atoms, as a reusable column of values.
fn edge_values() -> Vec<Value> {
    vec![
        Value::Atomic(Atomic::Float(f64::NAN)),
        Value::Atomic(Atomic::Float(0.0)),
        Value::Atomic(Atomic::Float(-0.0)),
        Value::Atomic(Atomic::Int(1 << 53)),
        Value::Atomic(Atomic::Int((1i64 << 53) + 1)),
        Value::Atomic(Atomic::Float((1u64 << 53) as f64)),
        Value::Atomic(Atomic::Str(String::new())),
        Value::Atomic(Atomic::Str("42".to_string())),
        Value::Atomic(Atomic::Str(" 42 ".to_string())),
        Value::Atomic(Atomic::Int(42)),
        Value::Atomic(Atomic::Str("apple".to_string())),
        Value::Atomic(Atomic::Sym(Sym::intern("apple"))),
        Value::Atomic(Atomic::Str("pear".to_string())),
        Value::Atomic(Atomic::Bool(true)),
        Value::Atomic(Atomic::Bool(false)),
        Value::Atomic(Atomic::Null),
    ]
}

fn one_col_source(var: &str, vals: Vec<Value>) -> ValuesOp {
    let schema = Schema::new(vec![var.to_string()]);
    ValuesOp::new(schema, vals.into_iter().map(|v| vec![v]).collect())
}

/// Render a tuple to a comparable string: the lexical form of each
/// value plus a tag separating the float/int/string classes is NOT
/// used here on purpose — the point is observable output equality, and
/// lexical forms are the observable output.
fn render(t: &Tuple) -> String {
    t.iter()
        .map(|v| match v.atomize() {
            Atomic::Null => "\u{0}null".to_string(),
            other => other.lexical(),
        })
        .collect::<Vec<_>>()
        .join("\u{1}")
}

fn rows_rendered(op: &mut dyn Operator) -> Vec<String> {
    run_to_vec(op).unwrap().iter().map(render).collect()
}

#[test]
fn typed_hash_join_matches_string_keyed_scalar_on_edges() {
    // Scalar mode keys buckets on the rendered coercion-class string
    // (the pre-interning semantics); vectorized mode uses the typed
    // `(tag, bits)` key and the interner. Same build/probe inputs must
    // produce the same multiset of joined rows.
    let scalar = {
        let mut op = HashJoinOp::new(
            Box::new(one_col_source("l", edge_values())),
            Box::new(one_col_source("r", edge_values())),
            vec![0],
            vec![0],
            JoinType::Inner,
        );
        let mut rows = rows_rendered(&mut op);
        rows.sort();
        rows
    };
    let typed = {
        let mut op = HashJoinOp::new(
            Box::new(one_col_source("l", edge_values())),
            Box::new(one_col_source("r", edge_values())),
            vec![0],
            vec![0],
            JoinType::Inner,
        )
        .vectorized(false);
        let mut rows = rows_rendered(&mut op);
        rows.sort();
        rows
    };
    assert_eq!(scalar, typed);
    // Spot-check the semantics the classes promise: NaN self-joins
    // (one collapsed key), "42"/" 42 "/42 cross-join as one numeric
    // class, Sym("apple") joins Str("apple"), and 2^53 as float joins
    // 2^53 as int but not 2^53 + 1.
    let nan_pairs = scalar.iter().filter(|r| r.contains("NaN")).count();
    assert_eq!(nan_pairs, 1, "all NaNs must collapse to one key");
    let forty_two = scalar
        .iter()
        .filter(|r| r.split('\u{1}').all(|c| c.trim() == "42"))
        .count();
    assert_eq!(forty_two, 9, "three 42-class values must fully cross-join");
    let apples = scalar
        .iter()
        .filter(|r| r.split('\u{1}').all(|c| c == "apple"))
        .count();
    assert_eq!(apples, 4, "Sym and Str apples must be one key");
}

#[test]
fn hash_join_distinguishes_signed_zero_and_exact_ints() {
    let mut op = HashJoinOp::new(
        Box::new(one_col_source("l", edge_values())),
        Box::new(one_col_source("r", edge_values())),
        vec![0],
        vec![0],
        JoinType::Inner,
    )
    .vectorized(false);
    let rows = rows_rendered(&mut op);
    // -0.0 joins only itself; 0.0 joins only itself.
    assert_eq!(rows.iter().filter(|r| r.starts_with("-0")).count(), 1);
    // 2^53 appears twice in the input (int and float form) => a full
    // 2x2 cross; 2^53 + 1 joins only itself (exact-int class).
    let p53 = (1u64 << 53).to_string();
    let p53_1 = ((1u64 << 53) + 1).to_string();
    assert_eq!(
        rows.iter()
            .filter(|r| r.split('\u{1}').all(|c| c == p53))
            .count(),
        4
    );
    assert_eq!(
        rows.iter()
            .filter(|r| r.split('\u{1}').all(|c| c == p53_1))
            .count(),
        1
    );
    // The empty string joins itself but never null (and vice versa):
    // the join key classes are `s{}` and `0`, which differ even though
    // both render to empty text.
    assert_eq!(rows.iter().filter(|r| *r == "\u{1}").count(), 1);
    assert_eq!(
        rows.iter()
            .filter(|r| r.split('\u{1}').all(|c| c == "\u{0}null"))
            .count(),
        1
    );
}

#[test]
fn vectorized_sort_matches_scalar_on_edges() {
    let key = vec![SortKey {
        column: 0,
        descending: false,
    }];
    let mut scalar_op = SortOp::new(Box::new(one_col_source("x", edge_values())), key.clone());
    let scalar = rows_rendered(&mut scalar_op);
    let mut vec_op =
        SortOp::new(Box::new(one_col_source("x", edge_values())), key).vectorized(false);
    let vectorized = rows_rendered(&mut vec_op);
    assert_eq!(scalar, vectorized);
}

#[test]
fn distinct_treats_sym_and_str_identically() {
    let vals = vec![
        Value::Atomic(Atomic::Str("apple".to_string())),
        Value::Atomic(Atomic::Sym(Sym::intern("apple"))),
        Value::Atomic(Atomic::Str(String::new())),
        Value::Atomic(Atomic::Null),
        Value::Atomic(Atomic::Float(f64::NAN)),
        Value::Atomic(Atomic::Float(f64::NAN)),
        Value::Atomic(Atomic::Float(0.0)),
        Value::Atomic(Atomic::Float(-0.0)),
    ];
    let mut op = DistinctOp::new(Box::new(one_col_source("x", vals)));
    let rows = rows_rendered(&mut op);
    // DISTINCT keys on the *lexical* form (unchanged pre-interning
    // semantics): Sym/Str apples merge, NaNs merge, null merges with
    // the empty string (both render to empty text), 0.0 and -0.0 stay
    // apart => 5 rows.
    assert_eq!(rows.len(), 5, "rows: {:?}", rows);
    assert_eq!(rows.iter().filter(|r| *r == "apple").count(), 1);
    assert_eq!(rows.iter().filter(|r| r.contains("NaN")).count(), 1);
}

#[test]
fn group_keys_preserve_coercion_edges() {
    // Group a count over the edge column: group cardinality is exactly
    // DISTINCT cardinality under lexical-key semantics.
    let vals = vec![
        Value::Atomic(Atomic::Str("x".to_string())),
        Value::Atomic(Atomic::Sym(Sym::intern("x"))),
        Value::Atomic(Atomic::Float(f64::NAN)),
        Value::Atomic(Atomic::Float(f64::NAN)),
        Value::Atomic(Atomic::Float(0.0)),
        Value::Atomic(Atomic::Float(-0.0)),
        Value::Atomic(Atomic::Str(String::new())),
        Value::Atomic(Atomic::Null),
    ];
    let src = one_col_source("x", vals);
    let mut op = GroupAggOp::new(
        Box::new(src),
        vec![0],
        vec![crate::ops::AggSpec {
            func: crate::AggFunc::Count,
            input: None,
            output: "n".to_string(),
        }],
    );
    let rows = run_to_vec(&mut op).unwrap();
    // Lexical group keys (unchanged pre-interning semantics): x
    // (Sym+Str merged), NaN (merged), 0.0, -0.0, ""+null (both render
    // empty) => 5 groups.
    assert_eq!(rows.len(), 5, "groups: {:?}", rows);
    let counts: Vec<i64> = rows
        .iter()
        .map(|t| match t[1].atomize() {
            Atomic::Int(i) => i,
            other => panic!("count must be an int, got {:?}", other),
        })
        .collect();
    assert_eq!(counts.iter().sum::<i64>(), 8);
    assert_eq!(counts.iter().filter(|&&c| c == 2).count(), 3);
}
