//! Operator introspection for static plan verification.
//!
//! The paper compiles XML-QL straight to *physical* plans with no
//! logical-algebra layer (§3.1), so there is no intermediate
//! representation where schema or type errors can be caught before
//! execution. [`OpInfo`] closes that gap: every [`Operator`] can describe
//! — without running — which scalar expressions it evaluates, how its
//! output schema is derived from its children, and what ordering it
//! requires or establishes. `nimble-planck` consumes this metadata to
//! verify whole plans statically.
//!
//! The default [`Operator::introspect`] is conservative: an opaque node
//! whose schema the verifier accepts as-is. Operators opt in to stronger
//! checking by returning a more precise [`OpInfo`].
//!
//! [`Operator`]: crate::ops::Operator
//! [`Operator::introspect`]: crate::ops::Operator::introspect

use crate::expr::ScalarExpr;
use crate::ops::SortKey;
use std::fmt;

/// Coercion class of a field, the lattice the semantic type pass works
/// over. The classes mirror the runtime's join-key coercion semantics
/// (`numeric_key`): values that coerce to numbers compare numerically,
/// everything else compares lexically, and element-valued bindings are
/// structural. `Unknown` is the lattice top for *tolerance* — it joins
/// with anything without complaint — while `Mixed` records a witnessed
/// disagreement (e.g. union arms typing a column differently) and
/// `Never` marks a column that is declared to never be bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// Coerces to a number (Int/Float/numeric string).
    Numeric,
    /// Plain text; compares lexically.
    Text,
    /// An element node (ELEMENT_AS / CONTENT_AS bindings).
    Element,
    /// Not statically known; compatible with every class.
    Unknown,
    /// Witnessed disagreement between contributing types.
    Mixed,
    /// Declared never bound; any reference is an error.
    Never,
}

impl FieldType {
    /// Lattice join of two types: `Unknown` defers, equal types keep,
    /// `Never` is absorbed by the other side, anything else is `Mixed`.
    pub fn join(self, other: FieldType) -> FieldType {
        use FieldType::*;
        match (self, other) {
            (Unknown, t) | (t, Unknown) => t,
            (Never, t) | (t, Never) => t,
            (a, b) if a == b => a,
            _ => Mixed,
        }
    }

    /// The coercion class of a literal value, mirroring the runtime's
    /// `numeric_key` / `coerce_num` semantics: anything that coerces to
    /// a number is `Numeric` (including numeric-looking strings), other
    /// strings are `Text`, element nodes are `Element`, and values the
    /// lattice makes no claim about (Null, Bool, lists) are `Unknown`.
    pub fn of_literal(v: &nimble_xml::Value) -> FieldType {
        use nimble_xml::{Atomic, Value};
        match v {
            Value::Node(_) => FieldType::Element,
            Value::Atomic(a) => match a {
                Atomic::Int(_) | Atomic::Float(_) => FieldType::Numeric,
                Atomic::Str(_) | Atomic::Sym(_) => {
                    let s = a.as_str().unwrap_or("");
                    if s.trim().parse::<f64>().is_ok() {
                        FieldType::Numeric
                    } else {
                        FieldType::Text
                    }
                }
                _ => FieldType::Unknown,
            },
            _ => FieldType::Unknown,
        }
    }

    /// Whether values of the two classes can be meaningfully compared as
    /// join keys. `Unknown` and `Mixed` are tolerated (no static claim);
    /// `Never` is never comparable; otherwise classes must agree.
    pub fn comparable(self, other: FieldType) -> bool {
        use FieldType::*;
        match (self, other) {
            (Never, _) | (_, Never) => false,
            (Unknown, _) | (_, Unknown) | (Mixed, _) | (_, Mixed) => true,
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FieldType::Numeric => "numeric",
            FieldType::Text => "text",
            FieldType::Element => "element",
            FieldType::Unknown => "unknown",
            FieldType::Mixed => "mixed",
            FieldType::Never => "never",
        };
        f.write_str(s)
    }
}

/// The typed domain of one output field: coercion class plus
/// nullability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldDomain {
    pub ty: FieldType,
    pub nullable: bool,
}

impl FieldDomain {
    pub fn new(ty: FieldType) -> FieldDomain {
        FieldDomain { ty, nullable: false }
    }

    /// An entirely unconstrained field.
    pub fn unknown() -> FieldDomain {
        FieldDomain { ty: FieldType::Unknown, nullable: true }
    }

    pub fn nullable(mut self) -> FieldDomain {
        self.nullable = true;
        self
    }

    /// Join with another domain: lattice join on types, nullable if
    /// either side may be null.
    pub fn join(self, other: FieldDomain) -> FieldDomain {
        FieldDomain {
            ty: self.ty.join(other.ty),
            nullable: self.nullable || other.nullable,
        }
    }
}

impl fmt::Display for FieldDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nullable {
            write!(f, "{}?", self.ty)
        } else {
            write!(f, "{}", self.ty)
        }
    }
}

/// How an operator's output schema is derived from its children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaRule {
    /// A leaf: no children, the schema is self-contained.
    Source,
    /// Output schema equals the schema of child `i` (filters, sorts,
    /// limits, distinct).
    Inherit(usize),
    /// Output schema is `children[0].schema().concat(children[1].schema())`
    /// — the join contract; collision columns are renamed `var#2`.
    Concat,
    /// Output schema extends child `i`'s schema: the child's columns are a
    /// prefix, new columns are appended (navigation, pattern binding).
    Extends(usize),
    /// All children share the output schema exactly (set operations).
    Uniform,
    /// Each output column is produced by one entry of
    /// [`OpInfo::child_exprs`] over child 0 (projection).
    PerColumnExprs,
    /// No statically checkable relation between child and output schemas;
    /// the verifier only bounds-checks the declared column references.
    Opaque,
}

/// What an operator does to the ordering of its tuple stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderEffect {
    /// Establishes the ordering given by [`OpInfo::sort_keys`]
    /// regardless of input order.
    Establishes,
    /// Preserves whatever ordering child `i` delivers (column indices are
    /// remapped through [`OpInfo::projection_map`] when present).
    Preserves(usize),
    /// Destroys or does not guarantee any ordering.
    Unknown,
}

/// A scalar expression an operator evaluates over one child's tuples.
#[derive(Debug, Clone)]
pub struct ChildExpr {
    /// Index into [`Operator::children`](crate::ops::Operator::children).
    pub child: usize,
    /// Human-readable role for diagnostics (`"predicate"`, `"column $x"`).
    pub role: String,
    pub expr: ScalarExpr,
}

/// A single column reference into one child's schema.
#[derive(Debug, Clone)]
pub struct ChildCol {
    pub child: usize,
    /// Human-readable role for diagnostics (`"group key"`, `"agg input"`).
    pub role: String,
    pub col: usize,
}

/// Equi-join key columns; `left[i]` pairs with `right[i]`.
#[derive(Debug, Clone)]
pub struct JoinKeys {
    pub left: Vec<usize>,
    pub right: Vec<usize>,
}

/// Grouping structure of an aggregation operator.
#[derive(Debug, Clone)]
pub struct Grouping {
    /// Group-key columns into child 0's schema, in output order.
    pub cols: Vec<usize>,
    /// Number of aggregate output columns following the group keys.
    pub agg_outputs: usize,
}

/// Static metadata describing one operator node.
///
/// Built with [`OpInfo::new`] and the `with_*` builder methods; consumed
/// by `nimble-planck`'s verifier.
#[derive(Debug, Clone)]
pub struct OpInfo {
    /// Operator kind name used in diagnostics (`"HashJoin"`).
    pub name: String,
    pub schema_rule: SchemaRule,
    pub order: OrderEffect,
    /// Scalar expressions evaluated over child tuples. For joins the
    /// expression space is the *concatenation* of both children; use
    /// [`OpInfo::join_predicate`] instead.
    pub child_exprs: Vec<ChildExpr>,
    /// A predicate over the concatenated tuples of children 0 and 1.
    pub join_predicate: Option<ScalarExpr>,
    /// Equi-join keys, bounds-checked against both child schemas.
    pub join_keys: Option<JoinKeys>,
    /// Orderings the operator's children must provably deliver
    /// (`(child index, key)`), e.g. merge join inputs.
    pub requires_sorted: Vec<(usize, SortKey)>,
    /// The ordering this operator establishes when
    /// [`OpInfo::order`] is [`OrderEffect::Establishes`].
    pub sort_keys: Vec<SortKey>,
    /// Grouping structure, when the operator aggregates.
    pub grouping: Option<Grouping>,
    /// Plain column references into child schemas (navigation input,
    /// aggregate inputs).
    pub child_cols: Vec<ChildCol>,
    /// For [`SchemaRule::PerColumnExprs`]: `Some(i)` when the output
    /// column at that position is a pure copy of child column `i`. Lets
    /// the verifier carry sort orders through projections.
    pub projection_map: Option<Vec<Option<usize>>>,
    /// Declared typed domains of this operator's output columns (one per
    /// schema column), for leaves that know their types. `None` means
    /// "infer from children"; the semantic type pass fills the gap with
    /// [`FieldType::Unknown`] for underived leaves.
    pub out_types: Option<Vec<FieldDomain>>,
    /// Rewrite-provenance tags attached by the optimizer (e.g.
    /// `"pruned: unsatisfiable"`, `"build-side swapped"`). Purely
    /// informational: surfaced in diagnostics and EXPLAIN.
    pub provenance: Vec<String>,
}

impl OpInfo {
    /// Metadata with the given schema rule and no other claims.
    pub fn new(name: impl Into<String>, schema_rule: SchemaRule) -> OpInfo {
        OpInfo {
            name: name.into(),
            schema_rule,
            order: OrderEffect::Unknown,
            child_exprs: Vec::new(),
            join_predicate: None,
            join_keys: None,
            requires_sorted: Vec::new(),
            sort_keys: Vec::new(),
            grouping: None,
            child_cols: Vec::new(),
            projection_map: None,
            out_types: None,
            provenance: Vec::new(),
        }
    }

    /// A leaf source.
    pub fn source(name: impl Into<String>) -> OpInfo {
        OpInfo::new(name, SchemaRule::Source)
    }

    /// A single-child operator that passes its child's schema and order
    /// through unchanged.
    pub fn transform(name: impl Into<String>) -> OpInfo {
        OpInfo::new(name, SchemaRule::Inherit(0)).with_order(OrderEffect::Preserves(0))
    }

    /// The conservative default for operators without introspection.
    pub fn opaque(name: impl Into<String>) -> OpInfo {
        OpInfo::new(name, SchemaRule::Opaque)
    }

    pub fn with_order(mut self, order: OrderEffect) -> OpInfo {
        self.order = order;
        self
    }

    pub fn with_child_expr(
        mut self,
        child: usize,
        role: impl Into<String>,
        expr: ScalarExpr,
    ) -> OpInfo {
        self.child_exprs.push(ChildExpr {
            child,
            role: role.into(),
            expr,
        });
        self
    }

    pub fn with_join_predicate(mut self, predicate: ScalarExpr) -> OpInfo {
        self.join_predicate = Some(predicate);
        self
    }

    pub fn with_join_keys(mut self, left: Vec<usize>, right: Vec<usize>) -> OpInfo {
        self.join_keys = Some(JoinKeys { left, right });
        self
    }

    pub fn with_required_sort(mut self, child: usize, key: SortKey) -> OpInfo {
        self.requires_sorted.push((child, key));
        self
    }

    pub fn with_sort_keys(mut self, keys: Vec<SortKey>) -> OpInfo {
        self.sort_keys = keys;
        self
    }

    pub fn with_grouping(mut self, cols: Vec<usize>, agg_outputs: usize) -> OpInfo {
        self.grouping = Some(Grouping { cols, agg_outputs });
        self
    }

    pub fn with_child_col(mut self, child: usize, role: impl Into<String>, col: usize) -> OpInfo {
        self.child_cols.push(ChildCol {
            child,
            role: role.into(),
            col,
        });
        self
    }

    pub fn with_projection_map(mut self, map: Vec<Option<usize>>) -> OpInfo {
        self.projection_map = Some(map);
        self
    }

    /// Declare the typed domains of the output columns (one per column).
    pub fn with_out_types(mut self, types: Vec<FieldDomain>) -> OpInfo {
        self.out_types = Some(types);
        self
    }

    /// Attach a rewrite-provenance tag.
    pub fn with_provenance(mut self, tag: impl Into<String>) -> OpInfo {
        self.provenance.push(tag.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let info = OpInfo::new("HashJoin", SchemaRule::Concat)
            .with_join_keys(vec![0], vec![1])
            .with_order(OrderEffect::Unknown);
        assert_eq!(info.name, "HashJoin");
        assert_eq!(info.schema_rule, SchemaRule::Concat);
        let keys = info.join_keys.expect("keys recorded");
        assert_eq!((keys.left, keys.right), (vec![0], vec![1]));
    }

    #[test]
    fn transform_preserves_child_order() {
        let info = OpInfo::transform("Filter");
        assert_eq!(info.order, OrderEffect::Preserves(0));
        assert_eq!(info.schema_rule, SchemaRule::Inherit(0));
    }

    #[test]
    fn type_lattice_join_and_comparability() {
        use FieldType::*;
        assert_eq!(Numeric.join(Numeric), Numeric);
        assert_eq!(Numeric.join(Text), Mixed);
        assert_eq!(Unknown.join(Text), Text);
        assert_eq!(Never.join(Numeric), Numeric);
        assert!(Numeric.comparable(Numeric));
        assert!(Unknown.comparable(Element));
        assert!(Mixed.comparable(Text));
        assert!(!Numeric.comparable(Text));
        assert!(!Element.comparable(Numeric));
        assert!(!Never.comparable(Unknown));
    }

    #[test]
    fn domain_join_widens_nullability() {
        let a = FieldDomain::new(FieldType::Numeric);
        let b = FieldDomain::new(FieldType::Numeric).nullable();
        let j = a.join(b);
        assert_eq!(j.ty, FieldType::Numeric);
        assert!(j.nullable);
        assert_eq!(j.to_string(), "numeric?");
    }

    #[test]
    fn typed_and_provenance_builders() {
        let info = OpInfo::source("Values")
            .with_out_types(vec![FieldDomain::new(FieldType::Text)])
            .with_provenance("pruned: unsatisfiable");
        assert_eq!(info.out_types.as_ref().map(|t| t.len()), Some(1));
        assert_eq!(info.provenance, vec!["pruned: unsatisfiable"]);
    }
}
