//! The scalar function registry.
//!
//! The paper's product ships "general query language features (data types,
//! operators) equivalent to a 'standard' SQL query engine"; this registry
//! supplies the function half of that and is **extensible**: adapters and
//! applications may register custom functions (the data-cleaning layer
//! registers its normalization functions here so they are usable from
//! XML-QL predicates).

use crate::error::ExecError;
use nimble_xml::{Atomic, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A registered scalar function.
pub type ScalarFn = dyn Fn(&[Value]) -> Result<Value, ExecError> + Send + Sync;

/// Name → implementation map with the built-in SQL-ish core. Cloning is
/// cheap (implementations are shared behind `Arc`s), which is how engines
/// extend a registry copy-on-write.
#[derive(Clone)]
pub struct FunctionRegistry {
    funcs: HashMap<String, Arc<ScalarFn>>,
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        FunctionRegistry::with_builtins()
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.funcs.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("FunctionRegistry")
            .field("functions", &names)
            .finish()
    }
}

fn str_arg(func: &str, args: &[Value], i: usize) -> Result<String, ExecError> {
    args.get(i)
        .map(|v| v.atomize().lexical())
        .ok_or_else(|| ExecError::FunctionArgs {
            func: func.into(),
            message: format!("missing argument {}", i),
        })
}

fn num_arg(func: &str, args: &[Value], i: usize) -> Result<f64, ExecError> {
    let a = args.get(i).map(|v| v.atomize()).ok_or_else(|| {
        ExecError::FunctionArgs {
            func: func.into(),
            message: format!("missing argument {}", i),
        }
    })?;
    match a {
        Atomic::Int(v) => Ok(v as f64),
        Atomic::Float(v) => Ok(v),
        Atomic::Str(_) | Atomic::Sym(_) => {
            let s = a.as_str().unwrap_or("");
            s.trim().parse().map_err(|_| ExecError::FunctionArgs {
                func: func.into(),
                message: format!("argument {} is not numeric: {:?}", i, s),
            })
        }
        other => Err(ExecError::FunctionArgs {
            func: func.into(),
            message: format!("argument {} is not numeric: {:?}", i, other),
        }),
    }
}

impl FunctionRegistry {
    /// An empty registry (no functions at all).
    pub fn empty() -> Self {
        FunctionRegistry {
            funcs: HashMap::new(),
        }
    }

    /// The standard library: string, numeric, and node functions.
    pub fn with_builtins() -> Self {
        let mut r = FunctionRegistry::empty();

        // --- string functions ---
        r.register("lower", |args| {
            Ok(Value::from(str_arg("lower", args, 0)?.to_lowercase().as_str()))
        });
        r.register("upper", |args| {
            Ok(Value::from(str_arg("upper", args, 0)?.to_uppercase().as_str()))
        });
        r.register("trim", |args| {
            Ok(Value::from(str_arg("trim", args, 0)?.trim()))
        });
        r.register("length", |args| {
            Ok(Value::from(
                str_arg("length", args, 0)?.chars().count() as i64
            ))
        });
        r.register("contains", |args| {
            let hay = str_arg("contains", args, 0)?;
            let needle = str_arg("contains", args, 1)?;
            Ok(Value::Atomic(Atomic::Bool(hay.contains(&needle))))
        });
        r.register("starts_with", |args| {
            let hay = str_arg("starts_with", args, 0)?;
            let prefix = str_arg("starts_with", args, 1)?;
            Ok(Value::Atomic(Atomic::Bool(hay.starts_with(&prefix))))
        });
        r.register("ends_with", |args| {
            let hay = str_arg("ends_with", args, 0)?;
            let suffix = str_arg("ends_with", args, 1)?;
            Ok(Value::Atomic(Atomic::Bool(hay.ends_with(&suffix))))
        });
        r.register("concat", |args| {
            let mut out = String::new();
            for v in args {
                out.push_str(&v.atomize().lexical());
            }
            Ok(Value::from(out.as_str()))
        });
        r.register("substr", |args| {
            // substr(s, start [, len]) — 1-based, SQL style.
            let s = str_arg("substr", args, 0)?;
            let start = num_arg("substr", args, 1)? as i64;
            let chars: Vec<char> = s.chars().collect();
            let from = (start.max(1) - 1) as usize;
            let taken: String = if args.len() > 2 {
                let len = num_arg("substr", args, 2)?.max(0.0) as usize;
                chars.iter().skip(from).take(len).collect()
            } else {
                chars.iter().skip(from).collect()
            };
            Ok(Value::from(taken.as_str()))
        });
        r.register("replace", |args| {
            let s = str_arg("replace", args, 0)?;
            let from = str_arg("replace", args, 1)?;
            let to = str_arg("replace", args, 2)?;
            Ok(Value::from(s.replace(&from, &to).as_str()))
        });

        // --- numeric functions ---
        r.register("abs", |args| {
            let v = num_arg("abs", args, 0)?;
            Ok(Value::Atomic(Atomic::Float(v.abs())))
        });
        r.register("round", |args| {
            let v = num_arg("round", args, 0)?;
            Ok(Value::Atomic(Atomic::Int(v.round() as i64)))
        });
        r.register("floor", |args| {
            let v = num_arg("floor", args, 0)?;
            Ok(Value::Atomic(Atomic::Int(v.floor() as i64)))
        });
        r.register("ceil", |args| {
            let v = num_arg("ceil", args, 0)?;
            Ok(Value::Atomic(Atomic::Int(v.ceil() as i64)))
        });

        // --- value/node functions ---
        r.register("text", |args| {
            Ok(Value::from(str_arg("text", args, 0)?.as_str()))
        });
        r.register("name", |args| match args.first() {
            Some(Value::Node(n)) => Ok(Value::from(n.name().unwrap_or(""))),
            _ => Ok(Value::null()),
        });
        r.register("number", |args| {
            let v = num_arg("number", args, 0)?;
            if v == v.trunc() {
                Ok(Value::Atomic(Atomic::Int(v as i64)))
            } else {
                Ok(Value::Atomic(Atomic::Float(v)))
            }
        });
        r.register("is_null", |args| {
            Ok(Value::Atomic(Atomic::Bool(
                args.first().is_none_or(|v| v.is_null()),
            )))
        });
        r.register("coalesce", |args| {
            for v in args {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::null())
        });
        r
    }

    /// Register (or replace) a function.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value, ExecError> + Send + Sync + 'static,
    ) {
        self.funcs.insert(name.to_string(), Arc::new(f));
    }

    /// Call a function by name.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, ExecError> {
        match self.funcs.get(name) {
            Some(f) => f(args),
            None => Err(ExecError::UnknownFunction(name.to_string())),
        }
    }

    /// True if a function with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(name)
    }

    /// Names of all registered functions, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.funcs.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_builtins() {
        let r = FunctionRegistry::with_builtins();
        assert_eq!(
            r.call("lower", &[Value::from("ABC")]).unwrap().lexical(),
            "abc"
        );
        assert_eq!(
            r.call("substr", &[Value::from("hello"), Value::from(2i64), Value::from(3i64)])
                .unwrap()
                .lexical(),
            "ell"
        );
        assert_eq!(
            r.call("concat", &[Value::from("a"), Value::from(1i64)])
                .unwrap()
                .lexical(),
            "a1"
        );
    }

    #[test]
    fn numeric_builtins() {
        let r = FunctionRegistry::with_builtins();
        assert_eq!(
            r.call("round", &[Value::Atomic(Atomic::Float(2.6))])
                .unwrap()
                .atomize(),
            Atomic::Int(3)
        );
    }

    #[test]
    fn unknown_function_error() {
        let r = FunctionRegistry::with_builtins();
        assert!(matches!(
            r.call("nope", &[]),
            Err(ExecError::UnknownFunction(_))
        ));
    }

    #[test]
    fn custom_registration() {
        let mut r = FunctionRegistry::with_builtins();
        r.register("twice", |args| {
            let v = args[0].atomize();
            match v {
                Atomic::Int(i) => Ok(Value::from(i * 2)),
                other => Err(ExecError::FunctionArgs {
                    func: "twice".into(),
                    message: format!("{:?}", other),
                }),
            }
        });
        assert_eq!(
            r.call("twice", &[Value::from(21i64)]).unwrap().atomize(),
            Atomic::Int(42)
        );
    }

    #[test]
    fn coalesce_and_is_null() {
        let r = FunctionRegistry::with_builtins();
        assert_eq!(
            r.call("coalesce", &[Value::null(), Value::from("x")])
                .unwrap()
                .lexical(),
            "x"
        );
        assert!(r
            .call("is_null", &[Value::null()])
            .unwrap()
            .truthy());
    }
}
