//! Morsel-driven parallelism for batch kernels (hash-join build key
//! extraction and partitioned index build, sort-key extraction and
//! chunk sort).
//!
//! One process-wide pool of persistent workers replaces the previous
//! per-operator `std::thread::scope` fork/join: operators submit a
//! *job* (a closure every participant runs once), and participants pull
//! fixed-size **morsels** off a shared atomic cursor until the input is
//! exhausted. The submitting thread participates too, so a pool of
//! `N - 1` workers saturates `N` cores and a round trip never blocks on
//! a thread spawn.
//!
//! Callers always keep a serial path — [`par_chunks_profiled`] returns
//! `None` below the profitability threshold, when fewer than two
//! participants are available, or if any participant panicked, and the
//! caller falls back to the serial kernel (which will surface a
//! deterministic panic or error if the input itself is at fault).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// Inputs smaller than this are not worth a fork/join round trip. With
/// persistent workers the round trip is two condvar signals, so the
/// bar sits far below the old spawn-per-operator threshold.
pub(crate) const PAR_THRESHOLD: usize = 512;

/// Rows per morsel: small enough that a skewed chunk cannot strand one
/// participant with half the input, big enough that the cursor
/// `fetch_add` amortizes to nothing.
pub(crate) const MORSEL_SIZE: usize = 1024;

/// Upper bound on participants (pool workers + the submitting thread) —
/// the kernels parallelized here are memory-bound key extraction, which
/// stops scaling early.
const MAX_WORKERS: usize = 8;

/// Recover a poisoned pool lock: a worker panic already marks the
/// round as failed, so the state itself is never half-written.
macro_rules! pool_lock {
    ($m:expr) => {
        $m.lock().unwrap_or_else(|e| e.into_inner())
    };
}

thread_local! {
    /// True while this thread is executing a pool job — set around both
    /// the worker-loop job call and the submitter's own slot-0 run. See
    /// the re-entrancy guard in [`WorkerPool::run`].
    static IN_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Worker count for this machine (1 when parallelism is unavailable).
pub(crate) fn workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_WORKERS)
}

/// A published job: a fat pointer to the submitter's stack closure.
/// Valid only while the submitter blocks in [`WorkerPool::run`], which
/// never returns before every participant has finished the round.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for JobPtr {}

struct PoolState {
    job: Option<JobPtr>,
    /// Round number; each worker runs each round at most once.
    generation: u64,
    /// Workers still owing a finish for the current round.
    active: usize,
    /// A participant panicked during the current round.
    panicked: bool,
}

/// A persistent pool of workers driving morsel jobs.
///
/// The process-wide instance behind [`par_chunks_profiled`] is sized to
/// the machine; tests build small private pools to exercise the
/// parallel path on single-core hosts.
pub struct WorkerPool {
    m: Mutex<PoolState>,
    /// Wakes workers when a round is published.
    work_cv: Condvar,
    /// Wakes the submitter when the last worker finishes a round.
    done_cv: Condvar,
    /// Serializes submitters: one round in flight at a time.
    submit: Mutex<()>,
    /// Workers actually running (spawn failures just shrink the pool).
    live: AtomicUsize,
    /// Fork/join rounds completed (telemetry).
    rounds: AtomicU64,
    /// Morsels pulled across all rounds (telemetry).
    morsels: AtomicU64,
}

impl WorkerPool {
    /// Spawn a pool with `extra_workers` persistent threads (the
    /// submitting thread is participant 0, so total parallelism is
    /// `extra_workers + 1`). Workers park on a condvar between rounds.
    pub fn new(extra_workers: usize) -> &'static WorkerPool {
        let pool = Box::leak(Box::new(WorkerPool {
            m: Mutex::new(PoolState {
                job: None,
                generation: 0,
                active: 0,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submit: Mutex::new(()),
            live: AtomicUsize::new(0),
            rounds: AtomicU64::new(0),
            morsels: AtomicU64::new(0),
        }));
        let spawned: &'static WorkerPool = pool;
        let mut live = 0;
        for slot in 1..=extra_workers {
            let p: &'static WorkerPool = spawned;
            // Worker threads are daemons: they live for the process and
            // park between rounds, so handles are not retained.
            if thread::Builder::new()
                .name(format!("nimble-pool-{}", slot))
                .spawn(move || p.worker_loop(slot))
                .is_ok()
            {
                live += 1;
            }
        }
        spawned.live.store(live, Ordering::SeqCst);
        spawned
    }

    /// Participants a round can use (pool workers + the submitter).
    pub fn participants(&self) -> usize {
        self.live.load(Ordering::SeqCst) + 1
    }

    fn worker_loop(&'static self, slot: usize) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut st = pool_lock!(self.m);
                loop {
                    if st.generation != seen {
                        if let Some(j) = st.job {
                            seen = st.generation;
                            break j;
                        }
                    }
                    st = self
                        .work_cv
                        .wait(st)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            IN_JOB.with(|f| f.set(true));
            let ok = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.0 })(slot)));
            IN_JOB.with(|f| f.set(false));
            let mut st = pool_lock!(self.m);
            if ok.is_err() {
                st.panicked = true;
            }
            st.active -= 1;
            if st.active == 0 {
                st.job = None;
                self.done_cv.notify_all();
            }
        }
    }

    /// Run `job(slot)` once on every participant (the calling thread is
    /// slot 0) and wait for all of them. Returns `false` if any
    /// participant panicked — the caller must then fall back to its
    /// serial kernel. Never returns while a worker still holds the job
    /// pointer, which is what makes publishing a stack closure sound.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) -> bool {
        // Re-entrancy guard: a job already running on this pool must not
        // submit another round. The submitter blocks on `submit` until
        // the current round finishes, and the current round cannot finish
        // while one of its participants is blocked here — a deadlock.
        // Declining (like any other "could not parallelize" condition)
        // sends nested sections down their serial fallback instead.
        if IN_JOB.with(|f| f.get()) {
            return false;
        }
        let _turn = pool_lock!(self.submit);
        {
            // Erase the borrow lifetime: `JobPtr` defaults to `+ 'static`,
            // but the pointer is only ever dereferenced before this call
            // returns (see the doc invariant above).
            let ptr: *const (dyn Fn(usize) + Sync) = job;
            let ptr: *const (dyn Fn(usize) + Sync + 'static) =
                unsafe { std::mem::transmute(ptr) };
            let mut st = pool_lock!(self.m);
            st.job = Some(JobPtr(ptr));
            st.generation = st.generation.wrapping_add(1);
            st.active = self.live.load(Ordering::SeqCst);
            st.panicked = false;
        }
        self.work_cv.notify_all();
        IN_JOB.with(|f| f.set(true));
        let caller_ok = catch_unwind(AssertUnwindSafe(|| job(0))).is_ok();
        IN_JOB.with(|f| f.set(false));
        let mut st = pool_lock!(self.m);
        while st.active > 0 {
            st = self
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        self.rounds.fetch_add(1, Ordering::Relaxed);
        caller_ok && !st.panicked
    }
}

/// The process-wide pool, or `None` on single-core machines (parallel
/// sections then decline and callers run their serial kernels).
/// `NIMBLE_POOL_WORKERS` overrides the participant count (useful to
/// exercise the pool on CI hosts that report one core).
pub fn pool() -> Option<&'static WorkerPool> {
    static POOL: OnceLock<Option<&'static WorkerPool>> = OnceLock::new();
    *POOL.get_or_init(|| {
        let participants = std::env::var("NIMBLE_POOL_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(workers)
            .min(MAX_WORKERS);
        if participants < 2 {
            return None;
        }
        Some(WorkerPool::new(participants - 1))
    })
}

/// Pool telemetry snapshot: `(participants, rounds, morsels)`. All
/// zeros when no pool exists (single-core host).
pub fn pool_stats() -> (usize, u64, u64) {
    match pool() {
        Some(p) => (
            p.participants(),
            p.rounds.load(Ordering::Relaxed),
            p.morsels.load(Ordering::Relaxed),
        ),
        None => (0, 0, 0),
    }
}

/// Map `f` over morsels of `items` on the pool, concatenating the
/// per-morsel outputs in input order. `f` receives the morsel's base
/// index into `items` plus the morsel itself.
///
/// Returns `None` when the input is too small, no pool exists (single
/// core), or any participant panicked — callers must then run their
/// serial kernel instead.
#[cfg_attr(not(test), allow(dead_code))] // operators call the profiled variant
pub(crate) fn par_chunks<T, R, F>(items: &[T], f: F) -> Option<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    par_chunks_profiled(items, f).map(|(out, _)| out)
}

/// [`par_chunks`] plus per-participant busy times: each participant
/// measures its own wall-clock over the morsels it ran, so the caller
/// can surface utilization (and imbalance) instead of guessing it from
/// end-to-end time. Returns `None` under exactly the same conditions
/// as [`par_chunks`].
pub(crate) fn par_chunks_profiled<T, R, F>(
    items: &[T],
    f: F,
) -> Option<(Vec<R>, crate::ops::ParProfile)>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let pool = pool()?;
    if items.len() < PAR_THRESHOLD {
        return None;
    }
    par_chunks_on(pool, items, f)
}

/// [`par_chunks_profiled`] on an explicit pool, with no size gate —
/// the building block tests use to drive the parallel path
/// deterministically.
pub(crate) fn par_chunks_on<T, R, F>(
    pool: &WorkerPool,
    items: &[T],
    f: F,
) -> Option<(Vec<R>, crate::ops::ParProfile)>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let participants = pool.participants();
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    let busy: Vec<AtomicU64> = (0..participants).map(|_| AtomicU64::new(0)).collect();
    let pulled = AtomicU64::new(0);
    let job = |slot: usize| {
        let start = std::time::Instant::now();
        let mut local: Vec<(usize, Vec<R>)> = Vec::new();
        loop {
            let m = cursor.fetch_add(1, Ordering::Relaxed);
            let base = m * MORSEL_SIZE;
            if base >= items.len() {
                break;
            }
            let end = (base + MORSEL_SIZE).min(items.len());
            local.push((m, f(base, &items[base..end])));
        }
        if !local.is_empty() {
            pulled.fetch_add(local.len() as u64, Ordering::Relaxed);
            pool_lock!(parts).extend(local);
        }
        let busy_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        if let Some(b) = busy.get(slot) {
            b.store(busy_us, Ordering::Relaxed);
        }
    };
    if !pool.run(&job) {
        return None;
    }
    pool.morsels
        .fetch_add(pulled.load(Ordering::Relaxed), Ordering::Relaxed);
    let mut parts = parts.into_inner().unwrap_or_else(|e| e.into_inner());
    parts.sort_unstable_by_key(|(m, _)| *m);
    let mut out = Vec::with_capacity(items.len());
    for (_, p) in parts {
        out.extend(p);
    }
    let profile = crate::ops::ParProfile {
        workers: participants,
        busy_us: busy.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
    };
    Some((out, profile))
}

/// Run `n` independent coarse-grained tasks on the process-wide pool,
/// returning their results in task order. Unlike [`par_chunks`], which
/// carves one slice into fixed-size morsels, each *task index* here is
/// one unit of work — the shape of scatter-gather fan-out (one task per
/// shard) and of multi-source fetch (one task per source), where units
/// are few and heavy rather than many and tiny.
///
/// Returns `None` when there is at most one task, no pool exists
/// (single-core host), this thread is already inside a pool job (nested
/// submission declines, see [`WorkerPool::run`]), or a participant
/// panicked — the caller must then run its serial loop. On `None` some
/// tasks may already have executed; callers whose tasks are not
/// idempotent must re-run from scratch only if that is safe, or use the
/// serial path outright.
pub fn par_tasks<R, F>(n: usize, f: F) -> Option<Vec<R>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n < 2 {
        return None;
    }
    par_tasks_on(pool()?, n, f)
}

/// [`par_tasks`] on an explicit pool with no size gate — the building
/// block tests use to drive the parallel path on single-core hosts.
pub(crate) fn par_tasks_on<R, F>(pool: &WorkerPool, n: usize, f: F) -> Option<Vec<R>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let pulled = AtomicU64::new(0);
    let job = |_slot: usize| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let r = f(i);
        pulled.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = slots.get(i) {
            *pool_lock!(slot) = Some(r);
        }
    };
    if !pool.run(&job) {
        return None;
    }
    pool.morsels
        .fetch_add(pulled.load(Ordering::Relaxed), Ordering::Relaxed);
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.push(slot.into_inner().unwrap_or_else(|e| e.into_inner())?);
    }
    Some(out)
}

/// Sort `items` on a pool: split into one contiguous run per
/// participant, sort runs in parallel, then k-way merge on the calling
/// thread (k ≤ [`MAX_WORKERS`], so the per-element head scan stays
/// cheaper than the comparisons a full sort would spend). Always
/// returns the fully sorted vector — a panicked round falls back to a
/// serial sort internally. `cmp` must be a total order; the k-way merge
/// is stable across runs, so a last-position tiebreak in `cmp` keeps
/// the result deterministic.
pub(crate) fn par_sort_on<T, C>(pool: &WorkerPool, items: Vec<T>, cmp: &C) -> Vec<T>
where
    T: Send,
    C: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    let n = pool.participants();
    let len = items.len();
    let chunk = len.div_ceil(n).max(1);
    let mut runs: Vec<Vec<T>> = Vec::with_capacity(n);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        runs.push(rest);
        rest = tail;
    }
    runs.push(rest);
    let slots: Vec<Mutex<Vec<T>>> = runs.into_iter().map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let ok = pool.run(&|_slot| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= slots.len() {
            break;
        }
        pool_lock!(slots[i]).sort_unstable_by(cmp);
    });
    let runs: Vec<Vec<T>> = slots
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect();
    if !ok {
        // A participant panicked (a panicking comparator would panic
        // serially too — re-run it serially so the caller sees the
        // deterministic behavior). Runs may be part-sorted; flatten and
        // sort from scratch.
        let mut all: Vec<T> = runs.into_iter().flatten().collect();
        all.sort_unstable_by(cmp);
        return all;
    }
    // K-way merge by linear head scan.
    let mut iters: Vec<std::vec::IntoIter<T>> =
        runs.into_iter().map(|r| r.into_iter()).collect();
    let mut heads: Vec<Option<T>> = iters.iter_mut().map(|it| it.next()).collect();
    let mut out = Vec::with_capacity(len);
    loop {
        let mut best: Option<usize> = None;
        for i in 0..heads.len() {
            if let Some(h) = heads[i].as_ref() {
                best = match best {
                    None => Some(i),
                    Some(b) => match heads[b].as_ref() {
                        Some(hb) if cmp(h, hb) == std::cmp::Ordering::Less => Some(i),
                        _ => Some(b),
                    },
                };
            }
        }
        match best {
            None => break,
            Some(b) => {
                if let Some(v) = heads[b].take() {
                    out.push(v);
                }
                heads[b] = iters[b].next();
            }
        }
    }
    out
}

/// A small shared pool for exercising parallel paths deterministically
/// on single-core hosts (crate tests only).
#[cfg(test)]
pub(crate) fn tests_pool() -> &'static WorkerPool {
    static P: OnceLock<&'static WorkerPool> = OnceLock::new();
    P.get_or_init(|| WorkerPool::new(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pool() -> &'static WorkerPool {
        tests_pool()
    }

    #[test]
    fn small_inputs_decline() {
        let items: Vec<u32> = (0..100).collect();
        // Either no pool exists (single core) or the threshold gates.
        assert!(par_chunks(&items, |_, c| c.to_vec()).is_none());
    }

    #[test]
    fn profiled_variant_reports_one_busy_time_per_participant() {
        let items: Vec<u32> = (0..10_000).collect();
        let (mapped, profile) =
            par_chunks_on(test_pool(), &items, |_, c| c.to_vec()).unwrap();
        assert_eq!(mapped.len(), items.len());
        assert_eq!(profile.workers, 3);
        assert_eq!(profile.busy_us.len(), profile.workers);
    }

    #[test]
    fn preserves_order_across_morsels() {
        let items: Vec<u32> = (0..10_000).collect();
        let (mapped, _) = par_chunks_on(test_pool(), &items, |base, c| {
            c.iter()
                .enumerate()
                .map(|(i, v)| (base + i, *v * 2))
                .collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(mapped.len(), items.len());
        for (i, (idx, v)) in mapped.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*v, items[i] * 2);
        }
    }

    #[test]
    fn participant_panic_falls_back() {
        let items: Vec<u32> = (0..10_000).collect();
        let got = par_chunks_on(test_pool(), &items, |base, c| {
            if base == 0 {
                panic!("worker bug");
            }
            c.to_vec()
        });
        assert!(got.is_none());
    }

    #[test]
    fn pool_survives_a_panicked_round() {
        let items: Vec<u32> = (0..5_000).collect();
        let _ = par_chunks_on(test_pool(), &items, |base, c| {
            if base == 0 {
                panic!("worker bug");
            }
            c.to_vec()
        });
        // The same pool serves the next round normally.
        let (mapped, _) =
            par_chunks_on(test_pool(), &items, |_, c| c.to_vec()).unwrap();
        assert_eq!(mapped.len(), items.len());
    }

    #[test]
    fn par_sort_matches_serial_sort() {
        let items: Vec<u32> = (0u32..10_000).map(|i| i.wrapping_mul(2_654_435_761) % 9_973).collect();
        let mut expect = items.clone();
        expect.sort_unstable();
        let got = par_sort_on(test_pool(), items, &|a: &u32, b: &u32| a.cmp(b));
        assert_eq!(got, expect);
    }

    #[test]
    fn par_sort_survives_panicking_comparator_round() {
        // A comparator that panics poisons the round; par_sort still
        // returns a correctly sorted vector via its serial fallback.
        let items: Vec<u32> = (0..5_000).rev().collect();
        let hits = AtomicU64::new(0);
        let got = par_sort_on(test_pool(), items, &|a: &u32, b: &u32| {
            if hits.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("comparator bug");
            }
            a.cmp(b)
        });
        assert_eq!(got.len(), 5_000);
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn par_tasks_returns_results_in_task_order() {
        let got = par_tasks_on(test_pool(), 37, |i| i * 3).unwrap();
        assert_eq!(got, (0..37).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_tasks_declines_on_panicked_task() {
        let got = par_tasks_on(test_pool(), 8, |i| {
            if i == 3 {
                panic!("task bug");
            }
            i
        });
        assert!(got.is_none());
        // The pool still serves the next round.
        assert_eq!(par_tasks_on(test_pool(), 4, |i| i).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn par_tasks_declines_below_two_tasks() {
        // The public entry gates on task count before touching the pool.
        assert!(par_tasks(0, |i| i).is_none());
        assert!(par_tasks(1, |i| i).is_none());
    }

    #[test]
    fn nested_submission_declines_instead_of_deadlocking() {
        // A task that itself tries to run a pool round must get a clean
        // `false`/`None` (serial fallback), not a deadlock: the outer
        // round cannot finish while its participant waits on `submit`.
        let got = par_tasks_on(test_pool(), 6, |i| {
            let inner = par_tasks_on(test_pool(), 4, |j| j);
            assert!(inner.is_none(), "nested round must decline");
            i * 10
        })
        .unwrap();
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn many_rounds_reuse_the_same_workers() {
        let before = test_pool().rounds.load(Ordering::Relaxed);
        for _ in 0..20 {
            let items: Vec<u32> = (0..3_000).collect();
            let (mapped, _) =
                par_chunks_on(test_pool(), &items, |_, c| c.to_vec()).unwrap();
            assert_eq!(mapped.len(), items.len());
        }
        let after = test_pool().rounds.load(Ordering::Relaxed);
        assert!(after >= before + 20);
    }
}
