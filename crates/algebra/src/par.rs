//! Scoped-thread parallelism for batch kernels (hash-join build key
//! extraction, sort-key extraction).
//!
//! Deliberately tiny: fixed fork/join over chunks of a slice using
//! `std::thread::scope`, no pools, no work stealing. Callers always keep
//! a serial path — [`par_chunks`] returns `None` below the profitability
//! threshold, when only one core is available, or if a worker panicked,
//! and the caller falls back to the serial kernel.

use std::thread;

/// Inputs smaller than this are not worth a fork/join round trip.
pub(crate) const PAR_THRESHOLD: usize = 2048;

/// Upper bound on workers — the kernels parallelized here are
/// memory-bound string/key extraction, which stops scaling early.
const MAX_WORKERS: usize = 8;

/// Worker count for this machine (1 when parallelism is unavailable).
pub(crate) fn workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_WORKERS)
}

/// Map `f` over equal chunks of `items` on scoped threads, concatenating
/// the per-chunk outputs in input order. `f` receives the chunk's base
/// index into `items` plus the chunk itself.
///
/// Returns `None` when the input is too small, fewer than two workers
/// are available, or any worker panicked — callers must then run their
/// serial kernel instead (which will surface a deterministic panic or
/// error if the input itself is at fault).
#[cfg_attr(not(test), allow(dead_code))] // operators call the profiled variant
pub(crate) fn par_chunks<T, R, F>(items: &[T], f: F) -> Option<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    par_chunks_profiled(items, f).map(|(out, _)| out)
}

/// [`par_chunks`] plus per-worker busy times: each spawned worker
/// measures its own wall-clock from entry to exit, so the caller can
/// surface thread utilization (and imbalance) instead of guessing it
/// from end-to-end time. Returns `None` under exactly the same
/// conditions as [`par_chunks`].
pub(crate) fn par_chunks_profiled<T, R, F>(
    items: &[T],
    f: F,
) -> Option<(Vec<R>, crate::ops::ParProfile)>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let workers = workers();
    if items.len() < PAR_THRESHOLD || workers < 2 {
        return None;
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| {
                s.spawn(move || {
                    let start = std::time::Instant::now();
                    let part = f(i * chunk, c);
                    let busy_us =
                        start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    (part, busy_us)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        let mut busy = Vec::with_capacity(handles.len());
        for h in handles {
            match h.join() {
                Ok((part, busy_us)) => {
                    out.extend(part);
                    busy.push(busy_us);
                }
                Err(_) => return None,
            }
        }
        let profile = crate::ops::ParProfile {
            workers: busy.len(),
            busy_us: busy,
        };
        Some((out, profile))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_inputs_decline() {
        let items: Vec<u32> = (0..100).collect();
        assert!(par_chunks(&items, |_, c| c.to_vec()).is_none());
    }

    #[test]
    fn profiled_variant_reports_one_busy_time_per_worker() {
        let items: Vec<u32> = (0..10_000).collect();
        if let Some((mapped, profile)) =
            par_chunks_profiled(&items, |_, c| c.to_vec())
        {
            assert_eq!(mapped.len(), items.len());
            assert!(profile.workers >= 2);
            assert_eq!(profile.busy_us.len(), profile.workers);
        }
    }

    #[test]
    fn preserves_order_across_chunks() {
        let items: Vec<u32> = (0..10_000).collect();
        if let Some(mapped) = par_chunks(&items, |base, c| {
            c.iter()
                .enumerate()
                .map(|(i, v)| (base + i, *v * 2))
                .collect::<Vec<_>>()
        }) {
            assert_eq!(mapped.len(), items.len());
            for (i, (idx, v)) in mapped.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*v, items[i] * 2);
            }
        }
    }

    #[test]
    fn worker_panic_falls_back() {
        let items: Vec<u32> = (0..10_000).collect();
        let got = par_chunks(&items, |base, c| {
            if base == 0 {
                panic!("worker bug");
            }
            c.to_vec()
        });
        assert!(got.is_none());
    }
}
