//! Where-provenance lineage masks.
//!
//! A [`LineageMask`] names the set of per-query source ids a tuple was
//! derived from, packed into one `u64` so propagating provenance through
//! the executor costs a copy and an OR per tuple. Ids are *per-query*
//! interning indices (the engine assigns 0, 1, 2, … to the sources a
//! plan touches, in plan order), so the common mediator query — a
//! handful of sources — fits entirely in the direct bits.
//!
//! ## Encoding
//!
//! * Bits `0..=62` are **direct**: bit *i* set means source id *i*
//!   contributed. The empty mask is `0`, the OR-identity.
//! * Bit 63 is the **spill flag**: when a mask would need an id ≥ 63,
//!   the full sorted id set is interned into a process-global registry
//!   and the mask stores `SPILL | index`. Interning canonicalizes:
//!   equal sets always produce equal masks, so mask equality is set
//!   equality in both representations and `u64` dedup counts distinct
//!   lineage sets exactly.
//!
//! The registry only ever grows (bounded by the number of *distinct*
//! beyond-63-source sets a process materializes — pathological queries
//! only), and spilled masks stay valid for the life of the process, so
//! masks are freely copyable across threads and query boundaries.

use std::sync::{Mutex, OnceLock, PoisonError};

/// Ids `0..DIRECT_IDS` are representable as direct bits.
pub const DIRECT_IDS: u32 = 63;

const SPILL: u64 = 1 << 63;

/// A compact set of per-query source ids (see module docs for the
/// encoding). `Default`/`EMPTY` is the empty set and the OR-identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct LineageMask(u64);

/// Process-global store of spilled (beyond-63-id) sets, deduplicated so
/// interning is canonical.
struct SpillRegistry {
    sets: Vec<Vec<u32>>,
}

fn registry() -> &'static Mutex<SpillRegistry> {
    static REGISTRY: OnceLock<Mutex<SpillRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(SpillRegistry { sets: Vec::new() }))
}

fn intern(set: Vec<u32>) -> LineageMask {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(idx) = reg.sets.iter().position(|s| *s == set) {
        return LineageMask(SPILL | idx as u64);
    }
    reg.sets.push(set);
    LineageMask(SPILL | (reg.sets.len() - 1) as u64)
}

impl LineageMask {
    /// The empty set (no known provenance); OR-identity.
    pub const EMPTY: LineageMask = LineageMask(0);

    /// The singleton set `{id}`.
    pub fn single(id: u32) -> LineageMask {
        if id < DIRECT_IDS {
            LineageMask(1 << id)
        } else {
            intern(vec![id])
        }
    }

    /// Set union. Direct ∪ direct is a bitwise OR; anything touching a
    /// spilled mask re-interns the merged sorted set (canonical, so
    /// equality stays set equality).
    pub fn or(self, other: LineageMask) -> LineageMask {
        if self.0 & SPILL == 0 && other.0 & SPILL == 0 {
            return LineageMask(self.0 | other.0);
        }
        if self == other || other.0 == 0 {
            return self;
        }
        if self.0 == 0 {
            return other;
        }
        let mut ids = self.ids();
        for id in other.ids() {
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        // A merged set that fits the direct bits packs back down.
        if ids.last().is_some_and(|&max| max < DIRECT_IDS) {
            let mut bits = 0u64;
            for id in ids {
                bits |= 1 << id;
            }
            return LineageMask(bits);
        }
        intern(ids)
    }

    /// In-place union.
    pub fn merge(&mut self, other: LineageMask) {
        *self = self.or(other);
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The member ids, ascending.
    pub fn ids(self) -> Vec<u32> {
        if self.0 & SPILL == 0 {
            return (0..DIRECT_IDS).filter(|i| self.0 & (1 << i) != 0).collect();
        }
        let idx = (self.0 & !SPILL) as usize;
        let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.sets.get(idx).cloned().unwrap_or_default()
    }

    /// Number of member ids.
    pub fn count(self) -> usize {
        if self.0 & SPILL == 0 {
            self.0.count_ones() as usize
        } else {
            self.ids().len()
        }
    }

    /// Membership test.
    pub fn contains(self, id: u32) -> bool {
        if self.0 & SPILL == 0 {
            id < DIRECT_IDS && self.0 & (1 << id) != 0
        } else {
            self.ids().binary_search(&id).is_ok()
        }
    }
}

/// Number of distinct spilled sets interned so far (an `engine.
/// provenance.spilled_sets` gauge feed; 0 in every sane workload).
pub fn spilled_sets() -> usize {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .sets
        .len()
}

/// Distinct masks in a slice — the per-operator `[src=…]` cardinality
/// EXPLAIN ANALYZE prints. Sound as plain `u64` dedup because interning
/// is canonical.
pub fn distinct_masks(masks: &[LineageMask]) -> usize {
    let mut seen: Vec<u64> = masks.iter().map(|m| m.0).collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_or_identity() {
        let m = LineageMask::single(3);
        assert_eq!(LineageMask::EMPTY.or(m), m);
        assert_eq!(m.or(LineageMask::EMPTY), m);
        assert!(LineageMask::EMPTY.is_empty());
        assert_eq!(LineageMask::EMPTY.count(), 0);
    }

    #[test]
    fn direct_bits_or_and_ids() {
        let m = LineageMask::single(0).or(LineageMask::single(5));
        assert_eq!(m.ids(), vec![0, 5]);
        assert_eq!(m.count(), 2);
        assert!(m.contains(0) && m.contains(5) && !m.contains(1));
    }

    #[test]
    fn spill_past_direct_range() {
        let big = LineageMask::single(100);
        assert_eq!(big.ids(), vec![100]);
        assert!(big.contains(100));
        assert!(!big.contains(63));
        let merged = big.or(LineageMask::single(2));
        assert_eq!(merged.ids(), vec![2, 100]);
        assert_eq!(merged.count(), 2);
        assert!(spilled_sets() >= 2);
    }

    #[test]
    fn spill_interning_is_canonical() {
        let a = LineageMask::single(70).or(LineageMask::single(80));
        let b = LineageMask::single(80).or(LineageMask::single(70));
        assert_eq!(a, b, "equal sets must intern to equal masks");
    }

    #[test]
    fn spilled_union_packs_down_when_it_fits() {
        // or() over a spilled operand whose merged set fits direct bits
        // must produce the direct representation (canonical equality).
        let direct = LineageMask::single(1).or(LineageMask::single(2));
        let same_via_spill_path = {
            let spilled = LineageMask::single(90);
            // {90} ∪ {1,2} then… there's no subtraction; build {1,2}
            // through the spill-handling or() instead:
            let _ = spilled; // spill path exercised above
            LineageMask::single(2).or(direct)
        };
        assert_eq!(direct, same_via_spill_path);
    }

    #[test]
    fn sixty_four_sources_roundtrip() {
        let mut m = LineageMask::EMPTY;
        for id in 0..64 {
            m.merge(LineageMask::single(id));
        }
        assert_eq!(m.count(), 64);
        assert_eq!(m.ids(), (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn distinct_mask_counting() {
        let a = LineageMask::single(0);
        let b = LineageMask::single(1);
        assert_eq!(distinct_masks(&[a, b, a.or(b), a, b]), 3);
        assert_eq!(distinct_masks(&[]), 0);
    }

    fn tagged(vars: &[&str], rows: &[&[i64]], id: u32) -> crate::ops::ValuesOp {
        let schema = crate::schema::Schema::new(vars.iter().map(|v| v.to_string()).collect());
        let tuples = rows
            .iter()
            .map(|r| r.iter().map(|&v| nimble_xml::Value::from(v)).collect())
            .collect();
        crate::ops::ValuesOp::new(schema, tuples).with_lineage(LineageMask::single(id))
    }

    #[test]
    fn masks_flow_through_filter_sort_join_distinct() {
        use crate::expr::{CmpOp, ScalarExpr};
        use crate::funcs::FunctionRegistry;
        use crate::ops::{DistinctOp, FilterOp, HashJoinOp, JoinType, Operator, SortKey, SortOp};
        use crate::{run_to_vec, run_to_vec_batched};
        use std::sync::Arc;

        // left(src 0): k in {1,2,3}, filtered to k >= 2; right(src 1):
        // k in {2,3,4}. Joined rows must carry {0,1}; sort reorders them
        // without losing alignment; distinct keeps the masks of the
        // emitted representatives.
        for batched in [false, true] {
            let left = tagged(&["k"], &[&[1], &[3], &[2]], 0);
            let right = tagged(&["k2"], &[&[2], &[3], &[4]], 1);
            let filt = FilterOp::new(
                Box::new(left),
                ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::Col(0), ScalarExpr::lit(2i64)),
                Arc::new(FunctionRegistry::with_builtins()),
            );
            let join = HashJoinOp::new(
                Box::new(filt),
                Box::new(right),
                vec![0],
                vec![0],
                JoinType::Inner,
            );
            let join: Box<dyn crate::ops::Operator> = if batched {
                Box::new(join.vectorized(false))
            } else {
                Box::new(join)
            };
            let sort = SortOp::new(
                join,
                vec![SortKey {
                    column: 0,
                    descending: true,
                }],
            );
            let mut plan = DistinctOp::new(Box::new(sort));
            let rows = if batched {
                run_to_vec_batched(&mut plan, 4).unwrap().0
            } else {
                run_to_vec(&mut plan).unwrap()
            };
            assert_eq!(rows.len(), 2);
            let masks = plan.lineage().expect("pipeline tracks lineage");
            assert_eq!(masks.len(), 2);
            let both = LineageMask::single(0).or(LineageMask::single(1));
            assert!(masks.iter().all(|m| *m == both), "masks: {masks:?}");
        }
    }

    #[test]
    fn untagged_input_disables_tracking_downstream() {
        use crate::ops::{HashJoinOp, JoinType, Operator, ValuesOp};
        use crate::run_to_vec;
        use crate::schema::Schema;
        use nimble_xml::Value;

        let left = tagged(&["k"], &[&[1]], 0);
        let right = ValuesOp::new(
            Schema::new(vec!["k2".into()]),
            vec![vec![Value::from(1i64)]],
        );
        let mut join = HashJoinOp::new(
            Box::new(left),
            Box::new(right),
            vec![0],
            vec![0],
            JoinType::Inner,
        );
        assert_eq!(run_to_vec(&mut join).unwrap().len(), 1);
        assert!(join.lineage().is_none());
    }

    #[test]
    fn left_outer_pad_carries_probe_mask_only() {
        use crate::ops::{HashJoinOp, JoinType, Operator};
        use crate::run_to_vec;

        let left = tagged(&["k"], &[&[1], &[5]], 0);
        let right = tagged(&["k2"], &[&[1]], 1);
        let mut join = HashJoinOp::new(
            Box::new(left),
            Box::new(right),
            vec![0],
            vec![0],
            JoinType::LeftOuter,
        );
        let rows = run_to_vec(&mut join).unwrap();
        assert_eq!(rows.len(), 2);
        let masks = join.lineage().expect("both sides track");
        assert_eq!(
            masks,
            [
                LineageMask::single(0).or(LineageMask::single(1)),
                LineageMask::single(0),
            ]
        );
    }
}
