//! Scalar expressions evaluated against tuples.

use crate::error::ExecError;
use crate::funcs::FunctionRegistry;
use crate::schema::Tuple;
use nimble_xml::{Atomic, Path, Value};
use std::sync::Arc;

/// The value type carried by [`ScalarExpr::Lit`], re-exported so crates
/// that link only `nimble-algebra` (the static analyzer) can name it.
pub use nimble_xml::Value as LiteralValue;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// SQL LIKE with `%` (any run) and `_` (any char).
    Like,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Aggregate functions for [`crate::ops::GroupAggOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    /// Collect input values into a `Value::List` preserving arrival order
    /// (used by Skolem-ID grouping in CONSTRUCT).
    Collect,
}

/// A scalar expression tree over tuple columns.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Column reference by position.
    Col(usize),
    /// Literal value.
    Lit(Value),
    Cmp(CmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    Not(Box<ScalarExpr>),
    Arith(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
    Neg(Box<ScalarExpr>),
    /// Call into the function registry.
    Call(String, Vec<ScalarExpr>),
    /// Navigate a path from a node-valued expression; yields the first
    /// match or `Null`.
    PathFirst(Box<ScalarExpr>, Path),
}

impl ScalarExpr {
    /// Literal constructor accepting anything convertible to [`Value`].
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Lit(v.into())
    }

    /// Comparison constructor.
    pub fn cmp(op: CmpOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp(op, Box::new(left), Box::new(right))
    }

    /// Conjunction of a list of predicates (`true` when empty).
    pub fn conjunction(preds: Vec<ScalarExpr>) -> ScalarExpr {
        let mut it = preds.into_iter();
        match it.next() {
            None => ScalarExpr::Lit(Value::Atomic(Atomic::Bool(true))),
            Some(first) => it.fold(first, |acc, p| {
                ScalarExpr::And(Box::new(acc), Box::new(p))
            }),
        }
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple, funcs: &FunctionRegistry) -> Result<Value, ExecError> {
        match self {
            ScalarExpr::Col(i) => tuple
                .get(*i)
                .cloned()
                .ok_or(ExecError::ColumnOutOfRange {
                    index: *i,
                    width: tuple.len(),
                }),
            ScalarExpr::Lit(v) => Ok(v.clone()),
            ScalarExpr::Cmp(op, l, r) => {
                let lv = l.eval(tuple, funcs)?;
                let rv = r.eval(tuple, funcs)?;
                Ok(Value::Atomic(Atomic::Bool(compare(*op, &lv, &rv))))
            }
            ScalarExpr::And(l, r) => {
                // Short-circuit.
                if !l.eval(tuple, funcs)?.truthy() {
                    return Ok(Value::Atomic(Atomic::Bool(false)));
                }
                Ok(Value::Atomic(Atomic::Bool(r.eval(tuple, funcs)?.truthy())))
            }
            ScalarExpr::Or(l, r) => {
                if l.eval(tuple, funcs)?.truthy() {
                    return Ok(Value::Atomic(Atomic::Bool(true)));
                }
                Ok(Value::Atomic(Atomic::Bool(r.eval(tuple, funcs)?.truthy())))
            }
            ScalarExpr::Not(e) => Ok(Value::Atomic(Atomic::Bool(
                !e.eval(tuple, funcs)?.truthy(),
            ))),
            ScalarExpr::Arith(op, l, r) => {
                let lv = l.eval(tuple, funcs)?.atomize();
                let rv = r.eval(tuple, funcs)?.atomize();
                arith(*op, &lv, &rv).map(Value::Atomic)
            }
            ScalarExpr::Neg(e) => {
                let v = e.eval(tuple, funcs)?.atomize();
                match v {
                    Atomic::Int(i) => Ok(Value::Atomic(Atomic::Int(-i))),
                    Atomic::Float(f) => Ok(Value::Atomic(Atomic::Float(-f))),
                    other => Err(ExecError::Arithmetic(format!(
                        "cannot negate {:?}",
                        other
                    ))),
                }
            }
            ScalarExpr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(tuple, funcs)?);
                }
                funcs.call(name, &vals)
            }
            ScalarExpr::PathFirst(base, path) => {
                let v = base.eval(tuple, funcs)?;
                match v {
                    Value::Node(n) => Ok(path.eval_first(&n).unwrap_or_else(Value::null)),
                    _ => Ok(Value::null()),
                }
            }
        }
    }

    /// Evaluate as a boolean predicate.
    pub fn eval_bool(&self, tuple: &Tuple, funcs: &FunctionRegistry) -> Result<bool, ExecError> {
        Ok(self.eval(tuple, funcs)?.truthy())
    }

    /// Column indices referenced anywhere in the expression.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Col(i) => out.push(*i),
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Cmp(_, a, b)
            | ScalarExpr::And(a, b)
            | ScalarExpr::Or(a, b)
            | ScalarExpr::Arith(_, a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            ScalarExpr::Not(e) | ScalarExpr::Neg(e) | ScalarExpr::PathFirst(e, _) => {
                e.collect_columns(out)
            }
            ScalarExpr::Call(_, args) => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Rewrite column references through a mapping (old index → new index).
    /// Used when pushing expressions through projections and joins.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> ScalarExpr {
        match self {
            ScalarExpr::Col(i) => ScalarExpr::Col(map(*i)),
            ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
            ScalarExpr::Cmp(op, a, b) => ScalarExpr::Cmp(
                *op,
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            ScalarExpr::And(a, b) => ScalarExpr::And(
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            ScalarExpr::Or(a, b) => ScalarExpr::Or(
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.remap_columns(map))),
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.remap_columns(map))),
            ScalarExpr::Arith(op, a, b) => ScalarExpr::Arith(
                *op,
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            ScalarExpr::Call(name, args) => ScalarExpr::Call(
                name.clone(),
                args.iter().map(|a| a.remap_columns(map)).collect(),
            ),
            ScalarExpr::PathFirst(e, p) => {
                ScalarExpr::PathFirst(Box::new(e.remap_columns(map)), p.clone())
            }
        }
    }
}

/// Compare two values under the engine's coercion semantics: LIKE is
/// lexical, numeric-looking operands compare numerically, and any
/// comparison with Null is false except `Null = Null` / one-sided `!=`.
/// Public so the static analyzer can constant-fold literal comparisons
/// with exactly the runtime's semantics.
pub fn compare(op: CmpOp, l: &Value, r: &Value) -> bool {
    use std::cmp::Ordering;
    if op == CmpOp::Like {
        return like_match(&l.atomize().lexical(), &r.atomize().lexical());
    }
    let la = l.atomize();
    let ra = r.atomize();
    // SQL-ish null semantics for comparisons: anything compared with
    // Null is false except Null = Null.
    if la.is_null() || ra.is_null() {
        return match op {
            CmpOp::Eq => la.is_null() && ra.is_null(),
            CmpOp::Ne => la.is_null() != ra.is_null(),
            _ => false,
        };
    }
    // Numeric-looking strings compare numerically against numbers, which
    // matters because parsed XML content is textual.
    let ord = match (coerce_num(&la), coerce_num(&ra)) {
        (Some(x), Some(y)) => x.total_cmp(&y),
        _ => la.total_cmp(&ra),
    };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
        CmpOp::Like => unreachable!(),
    }
}

fn coerce_num(a: &Atomic) -> Option<f64> {
    match a {
        Atomic::Int(i) => Some(*i as f64),
        Atomic::Float(f) => Some(*f),
        Atomic::Str(_) | Atomic::Sym(_) => {
            a.as_str().and_then(|s| s.trim().parse::<f64>().ok())
        }
        _ => None,
    }
}

/// The numeric coercion of a literal value, if it has one — the same
/// rule `compare` and `arith` apply at runtime (Int, Float, or a
/// numeric-looking string). Used by the static analyzer's interval
/// propagation.
pub fn literal_num(v: &Value) -> Option<f64> {
    coerce_num(&v.atomize())
}

/// Whether a literal value is Null after atomization.
pub fn literal_is_null(v: &Value) -> bool {
    v.atomize().is_null()
}

/// Whether a literal value is truthy under the predicate semantics
/// `FilterOp` applies (`Value::truthy`).
pub fn literal_truth(v: &Value) -> bool {
    v.truthy()
}

/// The lexical form of a literal, as the runtime's LIKE and lexical
/// comparisons see it.
pub fn literal_lexical(v: &Value) -> String {
    v.atomize().lexical()
}

/// SQL LIKE matcher: `%` matches any run, `_` any single char.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => {
                (0..=t.len()).any(|k| rec(&t[k..], rest))
            }
            Some(('_', rest)) => match t.split_first() {
                Some((_, t_rest)) => rec(t_rest, rest),
                None => false,
            },
            Some((c, rest)) => match t.split_first() {
                Some((tc, t_rest)) => tc == c && rec(t_rest, rest),
                None => false,
            },
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

fn arith(op: ArithOp, l: &Atomic, r: &Atomic) -> Result<Atomic, ExecError> {
    // Integer arithmetic stays integral; anything float-tainted widens.
    if let (Atomic::Int(a), Atomic::Int(b)) = (l, r) {
        return match op {
            ArithOp::Add => Ok(Atomic::Int(a.wrapping_add(*b))),
            ArithOp::Sub => Ok(Atomic::Int(a.wrapping_sub(*b))),
            ArithOp::Mul => Ok(Atomic::Int(a.wrapping_mul(*b))),
            ArithOp::Div => {
                if *b == 0 {
                    Err(ExecError::Arithmetic("division by zero".into()))
                } else {
                    Ok(Atomic::Int(a / b))
                }
            }
            ArithOp::Mod => {
                if *b == 0 {
                    Err(ExecError::Arithmetic("modulo by zero".into()))
                } else {
                    Ok(Atomic::Int(a % b))
                }
            }
        };
    }
    let a = coerce_num(l)
        .ok_or_else(|| ExecError::Arithmetic(format!("non-numeric operand {:?}", l)))?;
    let b = coerce_num(r)
        .ok_or_else(|| ExecError::Arithmetic(format!("non-numeric operand {:?}", r)))?;
    let v = match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => {
            if b == 0.0 {
                return Err(ExecError::Arithmetic("division by zero".into()));
            }
            a / b
        }
        ArithOp::Mod => {
            if b == 0.0 {
                return Err(ExecError::Arithmetic("modulo by zero".into()));
            }
            a % b
        }
    };
    Ok(Atomic::Float(v))
}

/// Convenience: a registry wrapped for sharing across operators.
pub fn shared_registry() -> Arc<FunctionRegistry> {
    Arc::new(FunctionRegistry::with_builtins())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn funcs() -> FunctionRegistry {
        FunctionRegistry::with_builtins()
    }

    #[test]
    fn comparisons_numeric_coercion() {
        let f = funcs();
        let t: Tuple = vec![Value::from("10")];
        // "10" > 9 numerically, even though "10" < "9" lexically.
        let e = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::Col(0), ScalarExpr::lit(9i64));
        assert!(e.eval_bool(&t, &f).unwrap());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("data integration", "%integr%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("x", ""));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn arithmetic_int_and_float() {
        let f = funcs();
        let t: Tuple = vec![];
        let e = ScalarExpr::Arith(
            ArithOp::Add,
            Box::new(ScalarExpr::lit(2i64)),
            Box::new(ScalarExpr::lit(3i64)),
        );
        assert_eq!(e.eval(&t, &f).unwrap().atomize(), Atomic::Int(5));
        let e = ScalarExpr::Arith(
            ArithOp::Div,
            Box::new(ScalarExpr::lit(1i64)),
            Box::new(ScalarExpr::Lit(Value::Atomic(Atomic::Float(2.0)))),
        );
        assert_eq!(e.eval(&t, &f).unwrap().atomize(), Atomic::Float(0.5));
    }

    #[test]
    fn division_by_zero() {
        let f = funcs();
        let e = ScalarExpr::Arith(
            ArithOp::Div,
            Box::new(ScalarExpr::lit(1i64)),
            Box::new(ScalarExpr::lit(0i64)),
        );
        assert!(matches!(
            e.eval(&vec![], &f),
            Err(ExecError::Arithmetic(_))
        ));
    }

    #[test]
    fn null_comparison_semantics() {
        let f = funcs();
        let t: Tuple = vec![Value::null()];
        let eq_null = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(0), ScalarExpr::lit(1i64));
        assert!(!eq_null.eval_bool(&t, &f).unwrap());
        let lt_null = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::Col(0), ScalarExpr::lit(1i64));
        assert!(!lt_null.eval_bool(&t, &f).unwrap());
    }

    #[test]
    fn short_circuit_and() {
        let f = funcs();
        // Right side would error (unknown function) but must not run.
        let e = ScalarExpr::And(
            Box::new(ScalarExpr::lit(false)),
            Box::new(ScalarExpr::Call("no_such_fn".into(), vec![])),
        );
        assert!(!e.eval_bool(&vec![], &f).unwrap());
    }

    #[test]
    fn column_tracking_and_remap() {
        let e = ScalarExpr::And(
            Box::new(ScalarExpr::cmp(
                CmpOp::Eq,
                ScalarExpr::Col(2),
                ScalarExpr::Col(0),
            )),
            Box::new(ScalarExpr::Not(Box::new(ScalarExpr::Col(2)))),
        );
        assert_eq!(e.columns(), vec![0, 2]);
        let remapped = e.remap_columns(&|i| i + 10);
        assert_eq!(remapped.columns(), vec![10, 12]);
    }

    #[test]
    fn conjunction_builder() {
        let f = funcs();
        assert!(ScalarExpr::conjunction(vec![])
            .eval_bool(&vec![], &f)
            .unwrap());
        let e = ScalarExpr::conjunction(vec![
            ScalarExpr::lit(true),
            ScalarExpr::lit(true),
            ScalarExpr::lit(false),
        ]);
        assert!(!e.eval_bool(&vec![], &f).unwrap());
    }
}
