//! Property-based tests for the physical algebra: join-strategy
//! equivalence, sort/distinct laws, and the LIKE matcher against a
//! reference implementation.

use nimble_algebra::ops::{
    DistinctOp, HashJoinOp, JoinType, MergeJoinOp, NestedLoopJoinOp, SortKey, SortOp, ValuesOp,
};
use nimble_algebra::{run_to_vec, CmpOp, FunctionRegistry, ScalarExpr, Schema, Tuple};
use nimble_algebra::expr::like_match;
use nimble_xml::Value;
use proptest::prelude::*;
use std::sync::Arc;

fn tuples_of(rows: &[(i64, i64)], vars: [&str; 2]) -> (Schema, Vec<Tuple>) {
    (
        Schema::new(vec![vars[0].to_string(), vars[1].to_string()]),
        rows.iter()
            .map(|&(a, b)| vec![Value::from(a), Value::from(b)])
            .collect(),
    )
}

fn normalize(rows: Vec<Tuple>) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = rows
        .iter()
        .map(|t| t.iter().map(|v| v.atomize().lexical()).collect())
        .collect();
    out.sort();
    out
}

proptest! {
    /// Hash join, nested-loop join, and merge join (over sorted inputs)
    /// produce identical result multisets for equi-joins.
    #[test]
    fn join_strategies_agree(
        left in proptest::collection::vec((0i64..8, any::<i64>()), 0..24),
        right in proptest::collection::vec((0i64..8, any::<i64>()), 0..24),
    ) {
        let funcs = Arc::new(FunctionRegistry::with_builtins());
        let (ls, lt) = tuples_of(&left, ["k", "x"]);
        let (rs, rt) = tuples_of(&right, ["k2", "y"]);

        let mut hash = HashJoinOp::new(
            Box::new(ValuesOp::new(ls.clone(), lt.clone())),
            Box::new(ValuesOp::new(rs.clone(), rt.clone())),
            vec![0],
            vec![0],
            JoinType::Inner,
        );
        let hash_rows = normalize(run_to_vec(&mut hash).unwrap());

        let pred = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(0), ScalarExpr::Col(2));
        let mut nl = NestedLoopJoinOp::new(
            Box::new(ValuesOp::new(ls.clone(), lt.clone())),
            Box::new(ValuesOp::new(rs.clone(), rt.clone())),
            Some(pred),
            JoinType::Inner,
            funcs,
        );
        let nl_rows = normalize(run_to_vec(&mut nl).unwrap());
        prop_assert_eq!(&hash_rows, &nl_rows);

        // Merge join needs sorted inputs.
        let mut lt_sorted = lt;
        lt_sorted.sort_by(|a, b| a[0].total_cmp(&b[0]));
        let mut rt_sorted = rt;
        rt_sorted.sort_by(|a, b| a[0].total_cmp(&b[0]));
        let mut merge = MergeJoinOp::new(
            Box::new(ValuesOp::new(ls, lt_sorted)),
            Box::new(ValuesOp::new(rs, rt_sorted)),
            0,
            0,
        );
        let merge_rows = normalize(run_to_vec(&mut merge).unwrap());
        prop_assert_eq!(hash_rows, merge_rows);
    }

    /// Left-outer join preserves every left tuple exactly
    /// max(1, matches) times.
    #[test]
    fn left_outer_preserves_left(
        left in proptest::collection::vec((0i64..6, any::<i64>()), 0..16),
        right in proptest::collection::vec((0i64..6, any::<i64>()), 0..16),
    ) {
        let (ls, lt) = tuples_of(&left, ["k", "x"]);
        let (rs, rt) = tuples_of(&right, ["k2", "y"]);
        let mut op = HashJoinOp::new(
            Box::new(ValuesOp::new(ls, lt)),
            Box::new(ValuesOp::new(rs, rt)),
            vec![0],
            vec![0],
            JoinType::LeftOuter,
        );
        let rows = run_to_vec(&mut op).unwrap();
        let expected: usize = left
            .iter()
            .map(|(k, _)| right.iter().filter(|(rk, _)| rk == k).count().max(1))
            .sum();
        prop_assert_eq!(rows.len(), expected);
    }

    /// Sort output is a permutation of the input and is ordered.
    #[test]
    fn sort_is_ordered_permutation(rows in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..40)) {
        let (s, t) = tuples_of(&rows, ["a", "b"]);
        let mut op = SortOp::new(
            Box::new(ValuesOp::new(s, t.clone())),
            vec![SortKey { column: 0, descending: false }],
        );
        let sorted = run_to_vec(&mut op).unwrap();
        prop_assert_eq!(sorted.len(), t.len());
        for w in sorted.windows(2) {
            prop_assert_ne!(
                w[0][0].total_cmp(&w[1][0]),
                std::cmp::Ordering::Greater
            );
        }
        prop_assert_eq!(normalize(sorted), normalize(t));
    }

    /// Distinct is idempotent and yields no duplicate tuples.
    #[test]
    fn distinct_laws(rows in proptest::collection::vec((0i64..5, 0i64..5), 0..40)) {
        let (s, t) = tuples_of(&rows, ["a", "b"]);
        let mut op = DistinctOp::new(Box::new(ValuesOp::new(s.clone(), t)));
        let once = run_to_vec(&mut op).unwrap();
        let as_set: std::collections::HashSet<Vec<String>> =
            normalize(once.clone()).into_iter().collect();
        prop_assert_eq!(as_set.len(), once.len());

        let mut op2 = DistinctOp::new(Box::new(ValuesOp::new(s, once.clone())));
        let twice = run_to_vec(&mut op2).unwrap();
        prop_assert_eq!(normalize(once), normalize(twice));
    }

    /// LIKE agrees with a naive reference matcher.
    #[test]
    fn like_matches_reference(text in "[ab%_]{0,8}", pattern in "[ab%_]{0,6}") {
        prop_assert_eq!(like_match(&text, &pattern), reference_like(&text, &pattern));
    }
}

/// Exponential reference implementation of SQL LIKE.
fn reference_like(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    fn go(t: &[char], p: &[char]) -> bool {
        match (t.first(), p.first()) {
            (_, None) => t.is_empty(),
            (_, Some('%')) => go(t, &p[1..]) || (!t.is_empty() && go(&t[1..], p)),
            (Some(tc), Some('_')) => {
                let _ = tc;
                go(&t[1..], &p[1..])
            }
            (Some(tc), Some(pc)) => tc == pc && go(&t[1..], &p[1..]),
            (None, Some(_)) => false,
        }
    }
    go(&t, &p)
}
