//! Property-based tests for the SQL substrate: the planner's index
//! choices never change answers, and WHERE evaluation matches a direct
//! reference filter.

use nimble_relational::Database;
use nimble_xml::Atomic;
use proptest::prelude::*;

fn build_db(rows: &[(i64, i64, String)]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INT, v INT, s TEXT)").unwrap();
    for (k, v, s) in rows {
        db.execute(&format!(
            "INSERT INTO t VALUES ({}, {}, '{}')",
            k,
            v,
            s.replace('\'', "''")
        ))
        .unwrap();
    }
    db
}

fn rows_of(db: &mut Database, sql: &str) -> Vec<Vec<String>> {
    let rs = db.execute(sql).unwrap();
    let mut out: Vec<Vec<String>> = rs
        .rows
        .iter()
        .map(|r| r.iter().map(Atomic::lexical).collect())
        .collect();
    out.sort();
    out
}

proptest! {
    /// Arbitrary input never panics the SQL front end or executor.
    #[test]
    fn sql_never_panics(input in "\\PC{0,60}") {
        let mut db = build_db(&[]);
        let _ = db.execute(&input);
    }

    /// SQL-token soup never panics either.
    #[test]
    fn sql_token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("SELECT".to_string()),
            Just("FROM".to_string()),
            Just("WHERE".to_string()),
            Just("JOIN".to_string()),
            Just("GROUP".to_string()),
            Just("BY".to_string()),
            Just("t".to_string()),
            Just("k".to_string()),
            Just("*".to_string()),
            Just("=".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just(",".to_string()),
            Just("'s'".to_string()),
            Just("1".to_string()),
            Just("COUNT".to_string()),
        ],
        0..15,
    )) {
        let mut db = build_db(&[(1, 2, "a".to_string())]);
        let _ = db.execute(&tokens.join(" "));
    }

    /// Answers are identical with no index, a hash index, and a B-tree
    /// index — across equality, range, IN, and BETWEEN predicates.
    #[test]
    fn index_choice_never_changes_answers(
        rows in proptest::collection::vec((0i64..10, -20i64..20, "[a-c]{0,3}"), 0..30),
        probe in 0i64..10,
        lo in -20i64..0,
        hi in 0i64..20,
    ) {
        let queries = [
            format!("SELECT k, v, s FROM t WHERE k = {}", probe),
            format!("SELECT k, v, s FROM t WHERE k > {}", probe),
            format!("SELECT k, v, s FROM t WHERE v BETWEEN {} AND {}", lo, hi),
            format!("SELECT k, v, s FROM t WHERE k IN (1, 3, {})", probe),
            "SELECT k, COUNT(*) AS n FROM t GROUP BY k".to_string(),
        ];
        let mut plain = build_db(&rows);
        let mut hashed = build_db(&rows);
        hashed.execute("CREATE INDEX ON t (k) USING HASH").unwrap();
        let mut btreed = build_db(&rows);
        btreed.execute("CREATE INDEX ON t (k)").unwrap();
        btreed.execute("CREATE INDEX ON t (v)").unwrap();
        for q in &queries {
            let expected = rows_of(&mut plain, q);
            prop_assert_eq!(&rows_of(&mut hashed, q), &expected, "hash index diverged on {}", q);
            prop_assert_eq!(&rows_of(&mut btreed, q), &expected, "btree index diverged on {}", q);
        }
    }

    /// WHERE k = c matches exactly the rows a direct scan predicts.
    #[test]
    fn where_matches_reference_filter(
        rows in proptest::collection::vec((0i64..6, -5i64..5, "[ab]{0,2}"), 0..25),
        probe in 0i64..6,
    ) {
        let mut db = build_db(&rows);
        let got = rows_of(&mut db, &format!("SELECT k, v, s FROM t WHERE k = {}", probe));
        let mut expected: Vec<Vec<String>> = rows
            .iter()
            .filter(|(k, _, _)| *k == probe)
            .map(|(k, v, s)| vec![k.to_string(), v.to_string(), s.clone()])
            .collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// ORDER BY really sorts and LIMIT really truncates.
    #[test]
    fn order_and_limit(
        rows in proptest::collection::vec((0i64..50, 0i64..50, "[a-z]{1,2}"), 1..25),
        limit in 1usize..10,
    ) {
        let mut db = build_db(&rows);
        let rs = db
            .execute(&format!("SELECT v FROM t ORDER BY v DESC LIMIT {}", limit))
            .unwrap();
        prop_assert!(rs.rows.len() <= limit);
        for w in rs.rows.windows(2) {
            prop_assert_ne!(
                w[0][0].total_cmp(&w[1][0]),
                std::cmp::Ordering::Less
            );
        }
        let mut all: Vec<i64> = rows.iter().map(|(_, v, _)| *v).collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        let expected: Vec<String> = all.into_iter().take(limit).map(|v| v.to_string()).collect();
        let got: Vec<String> = rs.rows.iter().map(|r| r[0].lexical()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Aggregates agree with direct computation.
    #[test]
    fn aggregates_match_reference(rows in proptest::collection::vec((0i64..4, -100i64..100), 1..30)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        for (k, v) in &rows {
            db.execute(&format!("INSERT INTO t VALUES ({}, {})", k, v)).unwrap();
        }
        let rs = db
            .execute("SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi FROM t GROUP BY k")
            .unwrap();
        for row in &rs.rows {
            let k: i64 = match row[0] { Atomic::Int(i) => i, _ => unreachable!() };
            let group: Vec<i64> = rows.iter().filter(|(rk, _)| *rk == k).map(|(_, v)| *v).collect();
            prop_assert_eq!(row[1].clone(), Atomic::Int(group.len() as i64));
            prop_assert_eq!(row[2].clone(), Atomic::Int(group.iter().sum()));
            prop_assert_eq!(row[3].clone(), Atomic::Int(*group.iter().min().unwrap()));
            prop_assert_eq!(row[4].clone(), Atomic::Int(*group.iter().max().unwrap()));
        }
    }
}
