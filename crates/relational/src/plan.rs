//! Name resolution and access-path selection.
//!
//! The planner is deliberately simple but real: single-table conjuncts are
//! pushed to base-table scans, where an applicable index (hash for
//! equality, B-tree for equality or ranges) replaces the sequential scan;
//! joins execute left-deep with hash joins on their equi-conditions. The
//! decisions are observable through [`crate::database::ExecStats`], which
//! is what the mediator's cost model and experiment E5 consume.

use crate::error::SqlError;
use crate::sql::ast::*;
use crate::types::Column;
use nimble_xml::Atomic;

/// One table binding of the FROM/JOIN list, with its flat column offset.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Alias (or table name) other clauses use.
    pub name: String,
    /// Underlying table name.
    pub table: String,
    pub columns: Vec<Column>,
    /// Offset of this binding's first column in the joined flat row.
    pub offset: usize,
}

/// Resolves column references against the bindings of a query.
#[derive(Debug, Clone)]
pub struct Resolver {
    pub bindings: Vec<Binding>,
}

impl Resolver {
    /// Flat column index of a reference; errors on unknown or ambiguous
    /// names.
    pub fn resolve(&self, col: &ColRef) -> Result<usize, SqlError> {
        match &col.table {
            Some(t) => {
                let b = self
                    .bindings
                    .iter()
                    .find(|b| &b.name == t)
                    .ok_or_else(|| SqlError::new(format!("unknown table {:?}", t)))?;
                let ci = b
                    .columns
                    .iter()
                    .position(|c| c.name == col.column)
                    .ok_or_else(|| {
                        SqlError::new(format!("no column {:?} in {}", col.column, b.table))
                    })?;
                Ok(b.offset + ci)
            }
            None => {
                let mut found = None;
                for b in &self.bindings {
                    if let Some(ci) = b.columns.iter().position(|c| c.name == col.column) {
                        if found.is_some() {
                            return Err(SqlError::new(format!(
                                "ambiguous column {:?}",
                                col.column
                            )));
                        }
                        found = Some(b.offset + ci);
                    }
                }
                found.ok_or_else(|| SqlError::new(format!("unknown column {:?}", col.column)))
            }
        }
    }

    /// The binding that owns a flat column index.
    pub fn binding_of(&self, flat: usize) -> &Binding {
        self.bindings
            .iter()
            .rev()
            .find(|b| flat >= b.offset)
            .expect("flat index within bindings")
    }

    /// Total width of the joined row.
    pub fn width(&self) -> usize {
        self.bindings
            .last()
            .map(|b| b.offset + b.columns.len())
            .unwrap_or(0)
    }

    /// Qualified output names (`binding.column`) for `SELECT *`.
    pub fn all_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        for b in &self.bindings {
            for c in &b.columns {
                out.push(format!("{}.{}", b.name, c.name));
            }
        }
        out
    }
}

/// How a base table will be accessed.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Read every row.
    FullScan,
    /// Probe an index for equality on a column.
    IndexEq { column: String, key: Atomic },
    /// Range scan of a B-tree index.
    IndexRange {
        column: String,
        low: Option<(Atomic, bool)>,
        high: Option<(Atomic, bool)>,
    },
}

/// Pick the best single-column access path for a table given its pushed
/// conjuncts. Preference: equality probe > range scan > full scan.
pub fn choose_access_path(
    indexed: &[(String, crate::table::IndexKind)],
    conjuncts: &[SqlExpr],
    binding: &str,
) -> AccessPath {
    use crate::table::IndexKind;
    // Equality probes first (hash or btree both serve them).
    for c in conjuncts {
        if let SqlExpr::Cmp(SqlCmp::Eq, l, r) = c {
            if let Some((col, lit)) = col_lit(l, r, binding) {
                if indexed.iter().any(|(n, _)| n == &col) {
                    return AccessPath::IndexEq {
                        column: col,
                        key: lit,
                    };
                }
            }
        }
    }
    // Ranges need a B-tree.
    for c in conjuncts {
        let (op, l, r) = match c {
            SqlExpr::Cmp(op, l, r) => (*op, l, r),
            SqlExpr::Between(e, lo, hi) => {
                if let SqlExpr::Col(cr) = e.as_ref() {
                    if owned_by(cr, binding) {
                        let col = cr.column.clone();
                        if indexed
                            .iter()
                            .any(|(n, k)| n == &col && *k == IndexKind::BTree)
                        {
                            return AccessPath::IndexRange {
                                column: col,
                                low: Some((lo.clone(), true)),
                                high: Some((hi.clone(), true)),
                            };
                        }
                    }
                }
                continue;
            }
            _ => continue,
        };
        if let Some((col, lit)) = col_lit(l, r, binding) {
            let has_btree = indexed
                .iter()
                .any(|(n, k)| n == &col && *k == IndexKind::BTree);
            if !has_btree {
                continue;
            }
            // Orient the operator so the column is on the left.
            let col_on_left = matches!(l.as_ref(), SqlExpr::Col(_));
            let op = if col_on_left { op } else { flip(op) };
            let path = match op {
                SqlCmp::Lt => AccessPath::IndexRange {
                    column: col,
                    low: None,
                    high: Some((lit, false)),
                },
                SqlCmp::Le => AccessPath::IndexRange {
                    column: col,
                    low: None,
                    high: Some((lit, true)),
                },
                SqlCmp::Gt => AccessPath::IndexRange {
                    column: col,
                    low: Some((lit, false)),
                    high: None,
                },
                SqlCmp::Ge => AccessPath::IndexRange {
                    column: col,
                    low: Some((lit, true)),
                    high: None,
                },
                _ => continue,
            };
            return path;
        }
    }
    AccessPath::FullScan
}

/// If the comparison is `col <op> literal` (either orientation) with the
/// column owned by `binding`, return the column name and literal.
fn col_lit(l: &SqlExpr, r: &SqlExpr, binding: &str) -> Option<(String, Atomic)> {
    match (l, r) {
        (SqlExpr::Col(c), SqlExpr::Lit(v)) if owned_by(c, binding) => {
            Some((c.column.clone(), v.clone()))
        }
        (SqlExpr::Lit(v), SqlExpr::Col(c)) if owned_by(c, binding) => {
            Some((c.column.clone(), v.clone()))
        }
        _ => None,
    }
}

fn owned_by(c: &ColRef, binding: &str) -> bool {
    match &c.table {
        Some(t) => t == binding,
        // Unqualified columns reach here only when the query has a single
        // binding, so ownership is unambiguous.
        None => true,
    }
}

fn flip(op: SqlCmp) -> SqlCmp {
    match op {
        SqlCmp::Lt => SqlCmp::Gt,
        SqlCmp::Le => SqlCmp::Ge,
        SqlCmp::Gt => SqlCmp::Lt,
        SqlCmp::Ge => SqlCmp::Le,
        other => other,
    }
}

/// True when every column the expression references is available among
/// the given binding names — the pushdown test.
pub fn refers_only_to(expr: &SqlExpr, bindings: &[&str]) -> bool {
    expr.columns().iter().all(|c| match &c.table {
        Some(t) => bindings.contains(&t.as_str()),
        None => bindings.len() == 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::IndexKind;

    fn eq(col: &str, v: i64) -> SqlExpr {
        SqlExpr::Cmp(
            SqlCmp::Eq,
            Box::new(SqlExpr::Col(ColRef::new(Some("t"), col))),
            Box::new(SqlExpr::Lit(Atomic::Int(v))),
        )
    }

    #[test]
    fn equality_beats_range() {
        let indexed = vec![
            ("a".to_string(), IndexKind::BTree),
            ("b".to_string(), IndexKind::Hash),
        ];
        let conj = vec![
            SqlExpr::Cmp(
                SqlCmp::Gt,
                Box::new(SqlExpr::Col(ColRef::new(Some("t"), "a"))),
                Box::new(SqlExpr::Lit(Atomic::Int(5))),
            ),
            eq("b", 3),
        ];
        match choose_access_path(&indexed, &conj, "t") {
            AccessPath::IndexEq { column, .. } => assert_eq!(column, "b"),
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn range_requires_btree() {
        let hash_only = vec![("a".to_string(), IndexKind::Hash)];
        let conj = vec![SqlExpr::Cmp(
            SqlCmp::Lt,
            Box::new(SqlExpr::Col(ColRef::new(Some("t"), "a"))),
            Box::new(SqlExpr::Lit(Atomic::Int(5))),
        )];
        assert_eq!(
            choose_access_path(&hash_only, &conj, "t"),
            AccessPath::FullScan
        );
        let btree = vec![("a".to_string(), IndexKind::BTree)];
        assert!(matches!(
            choose_access_path(&btree, &conj, "t"),
            AccessPath::IndexRange { .. }
        ));
    }

    #[test]
    fn flipped_literal_orientation() {
        let btree = vec![("a".to_string(), IndexKind::BTree)];
        // 5 < t.a  ≡  t.a > 5
        let conj = vec![SqlExpr::Cmp(
            SqlCmp::Lt,
            Box::new(SqlExpr::Lit(Atomic::Int(5))),
            Box::new(SqlExpr::Col(ColRef::new(Some("t"), "a"))),
        )];
        match choose_access_path(&btree, &conj, "t") {
            AccessPath::IndexRange { low, high, .. } => {
                assert_eq!(low, Some((Atomic::Int(5), false)));
                assert_eq!(high, None);
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn no_index_full_scan() {
        assert_eq!(
            choose_access_path(&[], &[eq("a", 1)], "t"),
            AccessPath::FullScan
        );
    }
}
