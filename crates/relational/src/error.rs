//! SQL-engine errors.

use std::fmt;

/// Any failure in the SQL substrate: lexing, parsing, catalog lookups,
/// type mismatches, or runtime evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    pub message: String,
}

impl SqlError {
    pub fn new(message: impl Into<String>) -> Self {
        SqlError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error: {}", self.message)
    }
}

impl std::error::Error for SqlError {}
