//! Column types and coercions.

use crate::error::SqlError;
use nimble_xml::Atomic;
use std::fmt;

/// SQL column types supported by the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    Float,
    Text,
    Bool,
}

impl ColumnType {
    /// Parse a type name from DDL (case-insensitive, with the common
    /// aliases real databases accept).
    pub fn parse(name: &str) -> Result<ColumnType, SqlError> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Ok(ColumnType::Int),
            "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" => Ok(ColumnType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Ok(ColumnType::Text),
            "BOOL" | "BOOLEAN" => Ok(ColumnType::Bool),
            other => Err(SqlError::new(format!("unknown column type {:?}", other))),
        }
    }

    /// Coerce a value into this column type at insert time; `Null` passes
    /// through.
    pub fn coerce(self, value: Atomic) -> Result<Atomic, SqlError> {
        if value.is_null() {
            return Ok(Atomic::Null);
        }
        match (self, &value) {
            (ColumnType::Int, Atomic::Int(_))
            | (ColumnType::Float, Atomic::Float(_))
            | (ColumnType::Text, Atomic::Str(_) | Atomic::Sym(_))
            | (ColumnType::Bool, Atomic::Bool(_)) => Ok(value),
            (ColumnType::Float, Atomic::Int(i)) => Ok(Atomic::Float(*i as f64)),
            (ColumnType::Int, Atomic::Float(f)) if f.fract() == 0.0 => {
                Ok(Atomic::Int(*f as i64))
            }
            (ColumnType::Int, Atomic::Str(_) | Atomic::Sym(_)) => {
                let s = value.as_str().unwrap_or("");
                s.trim()
                    .parse::<i64>()
                    .map(Atomic::Int)
                    .map_err(|_| SqlError::new(format!("cannot coerce {:?} to INT", s)))
            }
            (ColumnType::Float, Atomic::Str(_) | Atomic::Sym(_)) => {
                let s = value.as_str().unwrap_or("");
                s.trim()
                    .parse::<f64>()
                    .map(Atomic::Float)
                    .map_err(|_| SqlError::new(format!("cannot coerce {:?} to FLOAT", s)))
            }
            (ColumnType::Text, other) => Ok(Atomic::Str(other.lexical())),
            (ColumnType::Bool, Atomic::Str(_) | Atomic::Sym(_)) => {
                let s = value.as_str().unwrap_or("");
                match s.trim() {
                    "true" | "TRUE" | "1" => Ok(Atomic::Bool(true)),
                    "false" | "FALSE" | "0" => Ok(Atomic::Bool(false)),
                    _ => Err(SqlError::new(format!("cannot coerce {:?} to BOOL", s))),
                }
            }
            (ty, other) => Err(SqlError::new(format!(
                "cannot coerce {:?} to {:?}",
                other, ty
            ))),
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Text => "TEXT",
            ColumnType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

impl Column {
    pub fn new(name: &str, ty: ColumnType) -> Column {
        Column {
            name: name.to_string(),
            ty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_aliases() {
        assert_eq!(ColumnType::parse("varchar").unwrap(), ColumnType::Text);
        assert_eq!(ColumnType::parse("INTEGER").unwrap(), ColumnType::Int);
        assert!(ColumnType::parse("BLOB").is_err());
    }

    #[test]
    fn coercions() {
        assert_eq!(
            ColumnType::Float.coerce(Atomic::Int(2)).unwrap(),
            Atomic::Float(2.0)
        );
        assert_eq!(
            ColumnType::Int.coerce(Atomic::Str("42".into())).unwrap(),
            Atomic::Int(42)
        );
        assert!(ColumnType::Int.coerce(Atomic::Str("x".into())).is_err());
        assert_eq!(
            ColumnType::Text.coerce(Atomic::Int(1)).unwrap(),
            Atomic::Str("1".into())
        );
        assert_eq!(ColumnType::Int.coerce(Atomic::Null).unwrap(), Atomic::Null);
    }
}
