//! Recursive-descent SQL parser.

use super::ast::*;
use super::lexer::{tokenize_sql, SqlToken};
use crate::error::SqlError;
use crate::table::IndexKind;
use crate::types::{Column, ColumnType};
use nimble_xml::Atomic;

/// Parse one SQL statement.
pub fn parse_statement(sql: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize_sql(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    // A trailing semicolon-free end is required; we never lex ';' so just
    // check for EOF.
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<SqlToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &SqlToken {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> SqlToken {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, SqlError> {
        Err(SqlError::new(format!(
            "{} (near {:?})",
            msg.into(),
            self.peek()
        )))
    }

    fn expect_eof(&self) -> Result<(), SqlError> {
        if matches!(self.peek(), SqlToken::Eof) {
            Ok(())
        } else {
            self.err("trailing tokens after statement")
        }
    }

    /// Consume a keyword (uppercase match); false if not present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let SqlToken::Word { upper, .. } = self.peek() {
            if upper == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {}", kw))
        }
    }

    fn eat_tok(&mut self, t: &SqlToken) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: &SqlToken) -> Result<(), SqlError> {
        if self.eat_tok(t) {
            Ok(())
        } else {
            self.err(format!("expected {:?}", t))
        }
    }

    /// An identifier (non-keyword match is not enforced; SQL's reserved
    /// words are contextual in this dialect).
    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek().clone() {
            SqlToken::Word { raw, .. } => {
                self.bump();
                Ok(raw)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            if self.eat_kw("INDEX") {
                return self.create_index();
            }
            return self.err("expected TABLE or INDEX after CREATE");
        }
        if self.eat_kw("DROP") {
            self.expect_kw("INDEX")?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_tok(&SqlToken::LParen)?;
            let column = self.ident()?;
            self.expect_tok(&SqlToken::RParen)?;
            return Ok(Statement::DropIndex { table, column });
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if matches!(self.peek(), SqlToken::Word { upper, .. } if upper == "SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        self.err("expected CREATE, DROP, INSERT, or SELECT")
    }

    fn create_table(&mut self) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        self.expect_tok(&SqlToken::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_name = self.ident()?;
            // Swallow optional length like VARCHAR(100).
            if self.eat_tok(&SqlToken::LParen) {
                while !matches!(self.peek(), SqlToken::RParen | SqlToken::Eof) {
                    self.bump();
                }
                self.expect_tok(&SqlToken::RParen)?;
            }
            columns.push(Column::new(&col, ColumnType::parse(&ty_name)?));
            if !self.eat_tok(&SqlToken::Comma) {
                break;
            }
        }
        self.expect_tok(&SqlToken::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_tok(&SqlToken::LParen)?;
        let column = self.ident()?;
        self.expect_tok(&SqlToken::RParen)?;
        let kind = if self.eat_kw("USING") {
            let k = self.ident()?;
            match k.to_ascii_uppercase().as_str() {
                "HASH" => IndexKind::Hash,
                "BTREE" => IndexKind::BTree,
                other => return Err(SqlError::new(format!("unknown index kind {:?}", other))),
            }
        } else {
            IndexKind::BTree
        };
        Ok(Statement::CreateIndex {
            table,
            column,
            kind,
        })
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_tok(&SqlToken::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_tok(&SqlToken::Comma) {
                    break;
                }
            }
            self.expect_tok(&SqlToken::RParen)?;
            rows.push(row);
            if !self.eat_tok(&SqlToken::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn literal(&mut self) -> Result<Atomic, SqlError> {
        let negate = self.eat_tok(&SqlToken::Minus);
        match self.bump() {
            SqlToken::Int(i) => Ok(Atomic::Int(if negate { -i } else { i })),
            SqlToken::Float(f) => Ok(Atomic::Float(if negate { -f } else { f })),
            SqlToken::Str(s) if !negate => Ok(Atomic::Sym(nimble_xml::Sym::intern(&s))),
            SqlToken::Word { upper, .. } if !negate => match upper.as_str() {
                "NULL" => Ok(Atomic::Null),
                "TRUE" => Ok(Atomic::Bool(true)),
                "FALSE" => Ok(Atomic::Bool(false)),
                other => Err(SqlError::new(format!("expected literal, found {}", other))),
            },
            other => Err(SqlError::new(format!(
                "expected literal, found {:?}",
                other
            ))),
        }
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_tok(&SqlToken::Star) {
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_tok(&SqlToken::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let left_outer = if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                true
            } else if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                false
            } else if self.eat_kw("JOIN") {
                false
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let on_left = self.col_ref()?;
            self.expect_tok(&SqlToken::Eq)?;
            let on_right = self.col_ref()?;
            joins.push(Join {
                table,
                left_outer,
                on_left,
                on_right,
            });
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.col_ref()?);
                if !self.eat_tok(&SqlToken::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let col = self.col_ref()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push((col, desc));
                if !self.eat_tok(&SqlToken::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                SqlToken::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(SqlError::new(format!("bad LIMIT {:?}", other))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.ident()?;
        // Optional alias: `FROM t x` or `FROM t AS x` — but the next word
        // must not be a clause keyword.
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let SqlToken::Word { upper, raw } = self.peek().clone() {
            const CLAUSES: &[&str] = &[
                "WHERE", "GROUP", "ORDER", "LIMIT", "JOIN", "LEFT", "INNER", "ON",
            ];
            if CLAUSES.contains(&upper.as_str()) {
                None
            } else {
                self.bump();
                Some(raw)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn col_ref(&mut self) -> Result<ColRef, SqlError> {
        let first = self.ident()?;
        if self.eat_tok(&SqlToken::Dot) {
            let column = self.ident()?;
            Ok(ColRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }

    // Expression grammar: OR > AND > NOT > cmp/IN/LIKE/BETWEEN > +- > */ > primary.
    fn expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = SqlExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = SqlExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, SqlError> {
        if self.eat_kw("NOT") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<SqlExpr, SqlError> {
        let left = self.add_expr()?;
        // Postfix predicate forms.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(SqlExpr::IsNull(Box::new(left), negated));
        }
        let negated = {
            // `x NOT IN (...)` / `x NOT LIKE '...'` / `x NOT BETWEEN a AND b`
            if let SqlToken::Word { upper, .. } = self.peek() {
                if upper == "NOT" {
                    if let Some(SqlToken::Word { upper: next, .. }) =
                        self.tokens.get(self.pos + 1)
                    {
                        if matches!(next.as_str(), "IN" | "LIKE" | "BETWEEN") {
                            self.bump();
                            true
                        } else {
                            false
                        }
                    } else {
                        false
                    }
                } else {
                    false
                }
            } else {
                false
            }
        };
        if self.eat_kw("IN") {
            self.expect_tok(&SqlToken::LParen)?;
            let mut items = Vec::new();
            loop {
                items.push(self.literal()?);
                if !self.eat_tok(&SqlToken::Comma) {
                    break;
                }
            }
            self.expect_tok(&SqlToken::RParen)?;
            let e = SqlExpr::In(Box::new(left), items);
            return Ok(if negated {
                SqlExpr::Not(Box::new(e))
            } else {
                e
            });
        }
        if self.eat_kw("LIKE") {
            let pat = match self.bump() {
                SqlToken::Str(s) => s,
                other => return Err(SqlError::new(format!("LIKE expects string, got {:?}", other))),
            };
            let e = SqlExpr::Like(Box::new(left), pat);
            return Ok(if negated {
                SqlExpr::Not(Box::new(e))
            } else {
                e
            });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.literal()?;
            self.expect_kw("AND")?;
            let hi = self.literal()?;
            let e = SqlExpr::Between(Box::new(left), lo, hi);
            return Ok(if negated {
                SqlExpr::Not(Box::new(e))
            } else {
                e
            });
        }
        let op = match self.peek() {
            SqlToken::Eq => SqlCmp::Eq,
            SqlToken::Ne => SqlCmp::Ne,
            SqlToken::Lt => SqlCmp::Lt,
            SqlToken::Le => SqlCmp::Le,
            SqlToken::Gt => SqlCmp::Gt,
            SqlToken::Ge => SqlCmp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.add_expr()?;
        Ok(SqlExpr::Cmp(op, Box::new(left), Box::new(right)))
    }

    fn add_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                SqlToken::Plus => SqlArith::Add,
                SqlToken::Minus => SqlArith::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = SqlExpr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                SqlToken::Star => SqlArith::Mul,
                SqlToken::Slash => SqlArith::Div,
                _ => break,
            };
            self.bump();
            let right = self.primary()?;
            left = SqlExpr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<SqlExpr, SqlError> {
        match self.peek().clone() {
            SqlToken::Int(_) | SqlToken::Float(_) | SqlToken::Str(_) | SqlToken::Minus => {
                Ok(SqlExpr::Lit(self.literal()?))
            }
            SqlToken::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect_tok(&SqlToken::RParen)?;
                Ok(e)
            }
            SqlToken::Word { upper, .. } => {
                // Aggregates.
                let agg = match upper.as_str() {
                    "COUNT" => Some(AggKind::Count),
                    "SUM" => Some(AggKind::Sum),
                    "MIN" => Some(AggKind::Min),
                    "MAX" => Some(AggKind::Max),
                    "AVG" => Some(AggKind::Avg),
                    _ => None,
                };
                if let Some(kind) = agg {
                    if matches!(self.tokens.get(self.pos + 1), Some(SqlToken::LParen)) {
                        self.bump(); // function name
                        self.bump(); // (
                        if self.eat_tok(&SqlToken::Star) {
                            self.expect_tok(&SqlToken::RParen)?;
                            return Ok(SqlExpr::Agg(kind, None));
                        }
                        let inner = self.expr()?;
                        self.expect_tok(&SqlToken::RParen)?;
                        return Ok(SqlExpr::Agg(kind, Some(Box::new(inner))));
                    }
                }
                match upper.as_str() {
                    "NULL" | "TRUE" | "FALSE" => Ok(SqlExpr::Lit(self.literal()?)),
                    _ => Ok(SqlExpr::Col(self.col_ref()?)),
                }
            }
            other => Err(SqlError::new(format!(
                "expected expression, found {:?}",
                other
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse_statement("CREATE TABLE t (id INT, name VARCHAR(40), w FLOAT)").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1].ty, ColumnType::Text);
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn insert_multi_row() {
        let s = parse_statement("INSERT INTO t VALUES (1, 'a', NULL), (-2, 'b', 3.5)").unwrap();
        match s {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][2], Atomic::Null);
                assert_eq!(rows[1][0], Atomic::Int(-2));
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn select_with_everything() {
        let s = parse_statement(
            "SELECT o.id, c.name AS customer, COUNT(*) AS n \
             FROM orders o JOIN customers c ON o.cust_id = c.id \
             WHERE o.total > 100 AND c.region IN ('NW', 'SW') \
             GROUP BY o.id, c.name ORDER BY n DESC LIMIT 10",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 3);
                assert_eq!(sel.joins.len(), 1);
                assert_eq!(sel.group_by.len(), 2);
                assert_eq!(sel.limit, Some(10));
                assert!(sel.order_by[0].1);
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn like_between_not_in() {
        let s = parse_statement(
            "SELECT * FROM t WHERE a LIKE '%x%' AND b BETWEEN 1 AND 5 AND c NOT IN (1,2)",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                let conjuncts = sel.where_clause.unwrap().split_conjuncts();
                assert_eq!(conjuncts.len(), 3);
                assert!(matches!(conjuncts[0], SqlExpr::Like(..)));
                assert!(matches!(conjuncts[1], SqlExpr::Between(..)));
                assert!(matches!(conjuncts[2], SqlExpr::Not(..)));
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn is_null() {
        let s = parse_statement("SELECT * FROM t WHERE a IS NOT NULL").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    sel.where_clause.unwrap(),
                    SqlExpr::IsNull(_, true)
                ));
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn create_index_kinds() {
        match parse_statement("CREATE INDEX ON t (a) USING HASH").unwrap() {
            Statement::CreateIndex { kind, .. } => assert_eq!(kind, IndexKind::Hash),
            other => panic!("{:?}", other),
        }
        match parse_statement("CREATE INDEX ON t (a)").unwrap() {
            Statement::CreateIndex { kind, .. } => assert_eq!(kind, IndexKind::BTree),
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_statement("SELECT * FROM t garbage garbage").is_err());
    }

    #[test]
    fn alias_not_confused_with_clause() {
        let s = parse_statement("SELECT * FROM t WHERE x = 1").unwrap();
        match s {
            Statement::Select(sel) => assert_eq!(sel.from.alias, None),
            other => panic!("{:?}", other),
        }
    }
}
