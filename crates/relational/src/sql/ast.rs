//! SQL abstract syntax.

use crate::table::IndexKind;
use crate::types::Column;
use nimble_xml::Atomic;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<Column>,
    },
    CreateIndex {
        table: String,
        column: String,
        kind: IndexKind,
    },
    DropIndex {
        table: String,
        column: String,
    },
    Insert {
        table: String,
        rows: Vec<Vec<Atomic>>,
    },
    Select(SelectStmt),
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<Join>,
    pub where_clause: Option<SqlExpr>,
    pub group_by: Vec<ColRef>,
    pub order_by: Vec<(ColRef, bool)>,
    pub limit: Option<usize>,
}

/// One output column of a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns of all tables in FROM order.
    Star,
    /// An expression with an optional alias.
    Expr { expr: SqlExpr, alias: Option<String> },
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name other clauses refer to this table by.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// An `[INNER|LEFT] JOIN t ON a.x = b.y` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableRef,
    pub left_outer: bool,
    pub on_left: ColRef,
    pub on_right: ColRef,
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColRef {
    pub fn new(table: Option<&str>, column: &str) -> ColRef {
        ColRef {
            table: table.map(str::to_string),
            column: column.to_string(),
        }
    }
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{}.{}", t, self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// SQL comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlCmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// SQL arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlArith {
    Add,
    Sub,
    Mul,
    Div,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// SQL scalar / boolean expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Col(ColRef),
    Lit(Atomic),
    Cmp(SqlCmp, Box<SqlExpr>, Box<SqlExpr>),
    And(Box<SqlExpr>, Box<SqlExpr>),
    Or(Box<SqlExpr>, Box<SqlExpr>),
    Not(Box<SqlExpr>),
    Arith(SqlArith, Box<SqlExpr>, Box<SqlExpr>),
    Like(Box<SqlExpr>, String),
    In(Box<SqlExpr>, Vec<Atomic>),
    Between(Box<SqlExpr>, Atomic, Atomic),
    IsNull(Box<SqlExpr>, /*negated=*/ bool),
    /// `COUNT(*)` has no argument.
    Agg(AggKind, Option<Box<SqlExpr>>),
}

impl SqlExpr {
    /// All column references in the expression.
    pub fn columns(&self) -> Vec<&ColRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColRef>) {
        match self {
            SqlExpr::Col(c) => out.push(c),
            SqlExpr::Lit(_) => {}
            SqlExpr::Cmp(_, a, b) | SqlExpr::And(a, b) | SqlExpr::Or(a, b)
            | SqlExpr::Arith(_, a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            SqlExpr::Not(e)
            | SqlExpr::Like(e, _)
            | SqlExpr::In(e, _)
            | SqlExpr::Between(e, _, _)
            | SqlExpr::IsNull(e, _) => e.collect_columns(out),
            SqlExpr::Agg(_, e) => {
                if let Some(e) = e {
                    e.collect_columns(out);
                }
            }
        }
    }

    /// True if the expression contains any aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            SqlExpr::Agg(..) => true,
            SqlExpr::Col(_) | SqlExpr::Lit(_) => false,
            SqlExpr::Cmp(_, a, b) | SqlExpr::And(a, b) | SqlExpr::Or(a, b)
            | SqlExpr::Arith(_, a, b) => a.has_aggregate() || b.has_aggregate(),
            SqlExpr::Not(e)
            | SqlExpr::Like(e, _)
            | SqlExpr::In(e, _)
            | SqlExpr::Between(e, _, _)
            | SqlExpr::IsNull(e, _) => e.has_aggregate(),
        }
    }

    /// Split a conjunctive expression into its AND-ed parts.
    pub fn split_conjuncts(self) -> Vec<SqlExpr> {
        match self {
            SqlExpr::And(a, b) => {
                let mut out = a.split_conjuncts();
                out.extend(b.split_conjuncts());
                out
            }
            other => vec![other],
        }
    }
}
