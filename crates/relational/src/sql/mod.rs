//! The SQL front end of the relational substrate: lexer, AST, parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use parser::parse_statement;
