//! SQL tokenizer.

use crate::error::SqlError;

/// SQL tokens. Keywords are recognized case-insensitively and carried as
/// uppercase `Word`s; the parser matches on the uppercase spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlToken {
    /// A keyword or identifier; `upper` is the uppercase form, `raw` the
    /// original spelling (identifiers keep their case).
    Word { upper: String, raw: String },
    Str(String),
    Int(i64),
    Float(f64),
    Comma,
    Dot,
    Star,
    LParen,
    RParen,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Slash,
    Eof,
}

/// Tokenize a SQL string.
pub fn tokenize_sql(input: &str) -> Result<Vec<SqlToken>, SqlError> {
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // SQL line comment.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push(SqlToken::Comma);
                i += 1;
            }
            '.' => {
                out.push(SqlToken::Dot);
                i += 1;
            }
            '*' => {
                out.push(SqlToken::Star);
                i += 1;
            }
            '(' => {
                out.push(SqlToken::LParen);
                i += 1;
            }
            ')' => {
                out.push(SqlToken::RParen);
                i += 1;
            }
            '+' => {
                out.push(SqlToken::Plus);
                i += 1;
            }
            '-' => {
                out.push(SqlToken::Minus);
                i += 1;
            }
            '/' => {
                out.push(SqlToken::Slash);
                i += 1;
            }
            '=' => {
                out.push(SqlToken::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(SqlToken::Ne);
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(SqlToken::Le);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(SqlToken::Ne);
                    i += 2;
                } else {
                    out.push(SqlToken::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(SqlToken::Ge);
                    i += 2;
                } else {
                    out.push(SqlToken::Gt);
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(SqlError::new("unterminated string literal")),
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            // Doubled quote escapes a quote, SQL style.
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&d) => {
                            s.push(d);
                            i += 1;
                        }
                    }
                }
                out.push(SqlToken::Str(s));
            }
            '"' => {
                // Quoted identifier.
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(SqlError::new("unterminated quoted identifier")),
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some(&d) => {
                            s.push(d);
                            i += 1;
                        }
                    }
                }
                out.push(SqlToken::Word {
                    upper: s.to_ascii_uppercase(),
                    raw: s,
                });
            }
            d if d.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(|x| x.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(SqlToken::Float(text.parse().unwrap()));
                } else {
                    out.push(SqlToken::Int(text.parse().map_err(|_| {
                        SqlError::new(format!("integer literal {} overflows i64", text))
                    })?));
                }
            }
            a if a.is_alphabetic() || a == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_')
                {
                    i += 1;
                }
                let raw: String = chars[start..i].iter().collect();
                out.push(SqlToken::Word {
                    upper: raw.to_ascii_uppercase(),
                    raw,
                });
            }
            other => {
                return Err(SqlError::new(format!(
                    "unexpected character {:?} in SQL",
                    other
                )))
            }
        }
    }
    out.push(SqlToken::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_identifiers() {
        let toks = tokenize_sql("SELECT name FROM People").unwrap();
        match &toks[0] {
            SqlToken::Word { upper, .. } => assert_eq!(upper, "SELECT"),
            other => panic!("{:?}", other),
        }
        match &toks[3] {
            SqlToken::Word { raw, .. } => assert_eq!(raw, "People"),
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn strings_with_doubled_quotes() {
        let toks = tokenize_sql("'it''s'").unwrap();
        assert_eq!(toks[0], SqlToken::Str("it's".into()));
    }

    #[test]
    fn comparison_tokens() {
        let toks = tokenize_sql("<= >= <> != < >").unwrap();
        assert_eq!(
            &toks[..6],
            &[
                SqlToken::Le,
                SqlToken::Ge,
                SqlToken::Ne,
                SqlToken::Ne,
                SqlToken::Lt,
                SqlToken::Gt
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize_sql("SELECT -- everything\n1").unwrap();
        assert_eq!(toks.len(), 3);
    }
}
