//! The database catalog and statement dispatch.

use crate::error::SqlError;
use crate::exec::execute_select;
use crate::sql::ast::Statement;
use crate::sql::parse_statement;
use crate::table::Table;
use nimble_xml::Atomic;
use std::collections::BTreeMap;

/// Rows returned by a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Atomic>>,
}

impl ResultSet {
    /// An empty result (DDL/DML statements return this).
    pub fn empty() -> ResultSet {
        ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Index of an output column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// Execution statistics accumulated per statement — the observable the
/// pushdown/index experiments read.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Base-table rows fetched (full scans count every row; index
    /// accesses count only matches).
    pub rows_scanned: u64,
    /// Number of index probes performed.
    pub index_lookups: u64,
    /// `table.column` names of indexes used.
    pub used_indexes: Vec<String>,
    /// Number of statements executed since the last reset.
    pub statements: u64,
}

/// An in-memory SQL database: a catalog of [`Table`]s plus statement
/// execution.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    stats: ExecStats,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable table lookup (bulk-loading adapters use this).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Register a prebuilt table, replacing any existing one of that name.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Zero the statistics (experiments call this between measurements).
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// Parse and execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet, SqlError> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(stmt)
    }

    /// Execute a pre-parsed statement.
    pub fn execute_statement(&mut self, stmt: Statement) -> Result<ResultSet, SqlError> {
        self.stats.statements += 1;
        match stmt {
            Statement::CreateTable { name, columns } => {
                if self.tables.contains_key(&name) {
                    return Err(SqlError::new(format!("table {:?} already exists", name)));
                }
                self.tables.insert(name.clone(), Table::new(&name, columns));
                Ok(ResultSet::empty())
            }
            Statement::CreateIndex {
                table,
                column,
                kind,
            } => {
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| SqlError::new(format!("no table {:?}", table)))?;
                t.create_index(&column, kind)?;
                Ok(ResultSet::empty())
            }
            Statement::DropIndex { table, column } => {
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| SqlError::new(format!("no table {:?}", table)))?;
                if !t.drop_index(&column) {
                    return Err(SqlError::new(format!(
                        "no index on {}.{}",
                        table, column
                    )));
                }
                Ok(ResultSet::empty())
            }
            Statement::Insert { table, rows } => {
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| SqlError::new(format!("no table {:?}", table)))?;
                for row in rows {
                    t.insert(row)?;
                }
                Ok(ResultSet::empty())
            }
            Statement::Select(sel) => {
                let mut stats = std::mem::take(&mut self.stats);
                let result = execute_select(self, &sel, &mut stats);
                self.stats = stats;
                result
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE customers (id INT, name TEXT, region TEXT)")
            .unwrap();
        db.execute("CREATE TABLE orders (id INT, cust_id INT, total FLOAT)")
            .unwrap();
        db.execute(
            "INSERT INTO customers VALUES \
             (1, 'Acme', 'NW'), (2, 'Globex', 'SW'), (3, 'Initech', 'NW')",
        )
        .unwrap();
        db.execute(
            "INSERT INTO orders VALUES \
             (10, 1, 250.0), (11, 1, 75.5), (12, 2, 120.0), (13, 9, 5.0)",
        )
        .unwrap();
        db
    }

    #[test]
    fn simple_select_where() {
        let mut db = sample_db();
        let rs = db
            .execute("SELECT name FROM customers WHERE region = 'NW' ORDER BY name")
            .unwrap();
        assert_eq!(rs.columns, vec!["name"]);
        let names: Vec<String> = rs.rows.iter().map(|r| r[0].lexical()).collect();
        assert_eq!(names, ["Acme", "Initech"]);
    }

    #[test]
    fn join_inner_and_left() {
        let mut db = sample_db();
        let rs = db
            .execute(
                "SELECT c.name, o.total FROM customers c \
                 JOIN orders o ON o.cust_id = c.id ORDER BY total DESC",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0].lexical(), "Acme");

        let rs = db
            .execute(
                "SELECT c.name, o.id FROM customers c \
                 LEFT JOIN orders o ON o.cust_id = c.id WHERE c.region = 'NW'",
            )
            .unwrap();
        // Acme has 2 orders, Initech none (padded with NULL).
        assert_eq!(rs.rows.len(), 3);
        assert!(rs.rows.iter().any(|r| r[1].is_null()));
    }

    #[test]
    fn aggregates_group_by() {
        let mut db = sample_db();
        let rs = db
            .execute(
                "SELECT cust_id, COUNT(*) AS n, SUM(total) AS t FROM orders \
                 GROUP BY cust_id ORDER BY n DESC",
            )
            .unwrap();
        assert_eq!(rs.rows[0][1], Atomic::Int(2));
        assert_eq!(rs.rows[0][2], Atomic::Float(325.5));
    }

    #[test]
    fn global_aggregate_on_empty() {
        let mut db = sample_db();
        let rs = db
            .execute("SELECT COUNT(*) FROM orders WHERE total > 9999")
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Atomic::Int(0));
    }

    #[test]
    fn index_used_and_counted() {
        let mut db = sample_db();
        db.execute("CREATE INDEX ON customers (id) USING HASH")
            .unwrap();
        db.reset_stats();
        db.execute("SELECT name FROM customers WHERE id = 2").unwrap();
        assert_eq!(db.stats().index_lookups, 1);
        assert_eq!(db.stats().rows_scanned, 1);
        assert_eq!(db.stats().used_indexes, vec!["customers.id"]);

        db.execute("DROP INDEX ON customers (id)").unwrap();
        db.reset_stats();
        db.execute("SELECT name FROM customers WHERE id = 2").unwrap();
        assert_eq!(db.stats().index_lookups, 0);
        assert_eq!(db.stats().rows_scanned, 3);
    }

    #[test]
    fn btree_range_scan() {
        let mut db = sample_db();
        db.execute("CREATE INDEX ON orders (total)").unwrap();
        db.reset_stats();
        let rs = db
            .execute("SELECT id FROM orders WHERE total >= 100.0 ORDER BY id")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(db.stats().rows_scanned, 2);
        assert_eq!(db.stats().index_lookups, 1);
    }

    #[test]
    fn distinct_and_limit() {
        let mut db = sample_db();
        let rs = db
            .execute("SELECT DISTINCT region FROM customers ORDER BY region")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        let rs = db
            .execute("SELECT id FROM orders ORDER BY id LIMIT 2")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn in_like_between() {
        let mut db = sample_db();
        let rs = db
            .execute("SELECT name FROM customers WHERE region IN ('SW')")
            .unwrap();
        assert_eq!(rs.rows[0][0].lexical(), "Globex");
        let rs = db
            .execute("SELECT name FROM customers WHERE name LIKE '%ni%'")
            .unwrap();
        assert_eq!(rs.rows[0][0].lexical(), "Initech");
        let rs = db
            .execute("SELECT id FROM orders WHERE total BETWEEN 70.0 AND 130.0 ORDER BY id")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn computed_columns() {
        let mut db = sample_db();
        let rs = db
            .execute("SELECT id, total * 2 AS double FROM orders WHERE id = 10")
            .unwrap();
        assert_eq!(rs.rows[0][1], Atomic::Float(500.0));
    }

    #[test]
    fn errors_surface() {
        let mut db = sample_db();
        assert!(db.execute("SELECT nope FROM customers").is_err());
        assert!(db.execute("SELECT * FROM missing").is_err());
        assert!(db.execute("CREATE TABLE customers (x INT)").is_err());
        assert!(db
            .execute("INSERT INTO customers VALUES (1)")
            .is_err());
    }

    #[test]
    fn ambiguous_order_by_is_rejected() {
        let mut db = sample_db();
        let err = db
            .execute(
                "SELECT c.id, o.id FROM customers c JOIN orders o ON o.cust_id = c.id \
                 ORDER BY id",
            )
            .unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{}", err);
        // Qualifying resolves it.
        assert!(db
            .execute(
                "SELECT c.id, o.id FROM customers c JOIN orders o ON o.cust_id = c.id \
                 ORDER BY o.id",
            )
            .is_ok());
    }

    #[test]
    fn select_star_qualified_names() {
        let mut db = sample_db();
        let rs = db.execute("SELECT * FROM customers LIMIT 1").unwrap();
        assert_eq!(rs.columns, vec!["id", "name", "region"]);
        let rs = db
            .execute("SELECT * FROM customers c JOIN orders o ON o.cust_id = c.id LIMIT 1")
            .unwrap();
        assert_eq!(rs.columns.len(), 6);
        assert!(rs.columns[3].starts_with("o."));
    }
}
