//! SELECT execution over heap tables.

use crate::database::{Database, ExecStats, ResultSet};
use crate::error::SqlError;
use crate::plan::{choose_access_path, refers_only_to, AccessPath, Binding, Resolver};
use crate::sql::ast::*;
use nimble_xml::Atomic;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Execute a SELECT, updating scan statistics.
pub fn execute_select(
    db: &Database,
    sel: &SelectStmt,
    stats: &mut ExecStats,
) -> Result<ResultSet, SqlError> {
    // --- resolve bindings ---
    let mut bindings = Vec::new();
    let mut offset = 0usize;
    let push_binding = |tref: &TableRef, offset: &mut usize| -> Result<Binding, SqlError> {
        let table = db
            .table(&tref.table)
            .ok_or_else(|| SqlError::new(format!("no table {:?}", tref.table)))?;
        let b = Binding {
            name: tref.binding().to_string(),
            table: tref.table.clone(),
            columns: table.columns.clone(),
            offset: *offset,
        };
        *offset += table.columns.len();
        Ok(b)
    };
    bindings.push(push_binding(&sel.from, &mut offset)?);
    for j in &sel.joins {
        bindings.push(push_binding(&j.table, &mut offset)?);
    }
    let resolver = Resolver { bindings };

    let conjuncts: Vec<SqlExpr> = sel
        .where_clause
        .clone()
        .map(|w| w.split_conjuncts())
        .unwrap_or_default();
    let mut consumed = vec![false; conjuncts.len()];

    // --- base rows of the driving table ---
    let mut rows = fetch_base_rows(
        db,
        &resolver,
        0,
        &conjuncts,
        &mut consumed,
        stats,
    )?;

    // --- left-deep joins ---
    for (ji, join) in sel.joins.iter().enumerate() {
        let bidx = ji + 1;
        let right_rows = fetch_base_rows(db, &resolver, bidx, &conjuncts, &mut consumed, stats)?;
        let left_flat_a = resolver.resolve(&join.on_left)?;
        let left_flat_b = resolver.resolve(&join.on_right)?;
        let right_offset = resolver.bindings[bidx].offset;
        let right_width = resolver.bindings[bidx].columns.len();
        // Orient keys: one side is in the accumulated prefix, the other in
        // the newly joined table.
        let (acc_key, new_key) = if left_flat_a >= right_offset {
            (left_flat_b, left_flat_a - right_offset)
        } else {
            (left_flat_a, left_flat_b - right_offset)
        };
        if acc_key >= right_offset {
            return Err(SqlError::new(format!(
                "join condition {} = {} does not connect to earlier tables",
                join.on_left, join.on_right
            )));
        }
        // Hash the new table rows on their key.
        let mut table_map: HashMap<String, Vec<&Vec<Atomic>>> = HashMap::new();
        for r in &right_rows {
            table_map.entry(hash_key(&r[new_key])).or_default().push(r);
        }
        let mut joined = Vec::new();
        for left_row in &rows {
            let k = hash_key(&left_row[acc_key]);
            match table_map.get(&k) {
                Some(matches) => {
                    for m in matches {
                        let mut combined = left_row.clone();
                        combined.extend(m.iter().cloned());
                        joined.push(combined);
                    }
                }
                None if join.left_outer => {
                    let mut combined = left_row.clone();
                    combined.extend(std::iter::repeat_n(Atomic::Null, right_width));
                    joined.push(combined);
                }
                None => {}
            }
        }
        rows = joined;
    }

    // --- residual predicates ---
    for (ci, c) in conjuncts.iter().enumerate() {
        if consumed[ci] {
            continue;
        }
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows {
            if eval_expr(c, &r, &resolver)?.truthy() {
                kept.push(r);
            }
        }
        rows = kept;
    }

    // --- aggregation ---
    let has_agg = !sel.group_by.is_empty()
        || sel.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.has_aggregate(),
            SelectItem::Star => false,
        });

    let (mut out_names, mut out_rows): (Vec<String>, Vec<Vec<Atomic>>) = if has_agg {
        aggregate(sel, &rows, &resolver)?
    } else {
        project(sel, &rows, &resolver)?
    };

    // --- distinct ---
    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|r| {
            seen.insert(
                r.iter()
                    .map(|a| a.lexical())
                    .collect::<Vec<_>>()
                    .join("\u{1}"),
            )
        });
    }

    // --- order by ---
    if !sel.order_by.is_empty() {
        // Resolve each key against output names first (aliases / bare
        // column names), falling back to qualified output names.
        let mut key_indices = Vec::new();
        for (col, desc) in &sel.order_by {
            let target = col.to_string();
            // Exact match (alias or qualified name) wins; otherwise an
            // unqualified name may match a single qualified output — two
            // or more matches is an ambiguity error, not a silent pick.
            let idx = match out_names.iter().position(|n| n == &target || n == &col.column) {
                Some(i) => i,
                None => {
                    let suffix = format!(".{}", target);
                    let matches: Vec<usize> = out_names
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| n.ends_with(&suffix))
                        .map(|(i, _)| i)
                        .collect();
                    match matches.as_slice() {
                        [one] => *one,
                        [] => {
                            return Err(SqlError::new(format!(
                                "ORDER BY column {:?} not in output",
                                target
                            )))
                        }
                        _ => {
                            return Err(SqlError::new(format!(
                                "ORDER BY column {:?} is ambiguous; qualify it",
                                target
                            )))
                        }
                    }
                }
            };
            key_indices.push((idx, *desc));
        }
        out_rows.sort_by(|a, b| {
            for (idx, desc) in &key_indices {
                let ord = cmp_atomics(&a[*idx], &b[*idx]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    // --- limit ---
    if let Some(n) = sel.limit {
        out_rows.truncate(n);
    }

    // Strip qualification from single-table outputs for friendlier names.
    if resolver.bindings.len() == 1 {
        for n in out_names.iter_mut() {
            if let Some(stripped) = n.split('.').nth(1) {
                *n = stripped.to_string();
            }
        }
    }

    Ok(ResultSet {
        columns: out_names,
        rows: out_rows,
    })
}

/// Fetch the rows of one binding, using an index when the pushed
/// conjuncts allow it, and filtering by every single-table conjunct.
fn fetch_base_rows(
    db: &Database,
    resolver: &Resolver,
    bidx: usize,
    conjuncts: &[SqlExpr],
    consumed: &mut [bool],
    stats: &mut ExecStats,
) -> Result<Vec<Vec<Atomic>>, SqlError> {
    let binding = &resolver.bindings[bidx];
    let table = db
        .table(&binding.table)
        .ok_or_else(|| SqlError::new(format!("no table {:?}", binding.table)))?;

    let single_binding_query = resolver.bindings.len() == 1;
    let local: Vec<(usize, &SqlExpr)> = conjuncts
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            if single_binding_query {
                refers_only_to(c, &[binding.name.as_str()])
            } else {
                // With multiple bindings, only qualified references can be
                // pushed safely.
                c.columns().iter().all(|cr| cr.table.as_deref() == Some(binding.name.as_str()))
            }
        })
        .collect();
    let local_exprs: Vec<SqlExpr> = local.iter().map(|(_, c)| (*c).clone()).collect();

    let path = choose_access_path(&table.indexed_columns(), &local_exprs, &binding.name);
    let candidate_ids: Vec<usize> = match &path {
        AccessPath::FullScan => (0..table.row_count()).collect(),
        AccessPath::IndexEq { column, key } => {
            stats.index_lookups += 1;
            stats
                .used_indexes
                .push(format!("{}.{}", binding.table, column));
            // The planner only chooses indexed paths over indexed
            // columns; a full scan is the safe (and correct) fallback
            // should that invariant ever break.
            match table.index_on(column) {
                Some(ix) => ix.lookup_eq(key),
                None => (0..table.row_count()).collect(),
            }
        }
        AccessPath::IndexRange { column, low, high } => {
            stats.index_lookups += 1;
            stats
                .used_indexes
                .push(format!("{}.{}", binding.table, column));
            table
                .index_on(column)
                .and_then(|ix| {
                    ix.lookup_range(
                        low.as_ref().map(|(a, inc)| (a, *inc)),
                        high.as_ref().map(|(a, inc)| (a, *inc)),
                    )
                })
                .unwrap_or_else(|| (0..table.row_count()).collect())
        }
    };
    stats.rows_scanned += candidate_ids.len() as u64;

    // Evaluate local conjuncts against a widened row (nulls elsewhere) so
    // flat indices resolve; only this binding's columns are referenced.
    let width = resolver.width();
    let mut out = Vec::new();
    'rows: for rid in candidate_ids {
        let row = &table.rows()[rid];
        let mut wide = vec![Atomic::Null; width];
        wide[binding.offset..binding.offset + row.len()].clone_from_slice(row);
        for (_, c) in &local {
            if !eval_expr(c, &wide, resolver)?.truthy() {
                continue 'rows;
            }
        }
        out.push(row.clone());
    }
    for (ci, _) in &local {
        consumed[*ci] = true;
    }

    // The caller concatenates binding rows left-deep, so return rows in
    // this binding's local width; re-widen happens during joins. For the
    // driving table the accumulated row is exactly this table's columns.
    Ok(out)
}

/// Projection without aggregates.
fn project(
    sel: &SelectStmt,
    rows: &[Vec<Atomic>],
    resolver: &Resolver,
) -> Result<(Vec<String>, Vec<Vec<Atomic>>), SqlError> {
    let mut names = Vec::new();
    let mut exprs: Vec<Option<&SqlExpr>> = Vec::new();
    for (i, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Star => {
                for n in resolver.all_columns() {
                    names.push(n);
                    exprs.push(None);
                }
            }
            SelectItem::Expr { expr, alias } => {
                names.push(output_name(expr, alias, i));
                exprs.push(Some(expr));
            }
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut r = Vec::with_capacity(names.len());
        let mut star_cursor = 0usize;
        for e in &exprs {
            match e {
                None => {
                    r.push(row[star_cursor].clone());
                    star_cursor += 1;
                }
                Some(expr) => r.push(eval_expr(expr, row, resolver)?.clone()),
            }
        }
        out.push(r);
    }
    Ok((names, out))
}

/// Projection with grouping and aggregates.
fn aggregate(
    sel: &SelectStmt,
    rows: &[Vec<Atomic>],
    resolver: &Resolver,
) -> Result<(Vec<String>, Vec<Vec<Atomic>>), SqlError> {
    let group_cols: Vec<usize> = sel
        .group_by
        .iter()
        .map(|c| resolver.resolve(c))
        .collect::<Result<_, _>>()?;

    // group key → (representative row, member rows)
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, (Vec<Atomic>, Vec<Vec<Atomic>>)> = HashMap::new();
    for row in rows {
        let key: String = group_cols
            .iter()
            .map(|&c| row[c].lexical())
            .collect::<Vec<_>>()
            .join("\u{1}");
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        let entry = groups
            .entry(key)
            .or_insert_with(|| (row.clone(), Vec::new()));
        entry.1.push(row.clone());
    }
    // Global aggregate over empty input still produces one row.
    if group_cols.is_empty() && groups.is_empty() {
        order.push(String::new());
        groups.insert(
            String::new(),
            (vec![Atomic::Null; resolver.width()], Vec::new()),
        );
    }

    let mut names = Vec::new();
    for (i, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Star => {
                return Err(SqlError::new(
                    "SELECT * cannot be combined with GROUP BY/aggregates",
                ))
            }
            SelectItem::Expr { expr, alias } => names.push(output_name(expr, alias, i)),
        }
    }

    let mut out_rows = Vec::new();
    for key in order {
        let (rep, members) = &groups[&key];
        let mut row = Vec::with_capacity(sel.items.len());
        for item in &sel.items {
            if let SelectItem::Expr { expr, .. } = item {
                row.push(eval_with_aggs(expr, rep, members, resolver)?);
            }
        }
        out_rows.push(row);
    }
    Ok((names, out_rows))
}

fn output_name(expr: &SqlExpr, alias: &Option<String>, i: usize) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match expr {
        SqlExpr::Col(c) => c.to_string(),
        SqlExpr::Agg(kind, _) => format!("{:?}", kind).to_lowercase(),
        _ => format!("expr{}", i + 1),
    }
}

/// Evaluate an expression that may contain aggregate nodes: aggregates
/// compute over the group's member rows, the rest over the representative
/// row.
fn eval_with_aggs(
    expr: &SqlExpr,
    rep: &[Atomic],
    members: &[Vec<Atomic>],
    resolver: &Resolver,
) -> Result<Atomic, SqlError> {
    match expr {
        SqlExpr::Agg(kind, arg) => {
            let values: Vec<Atomic> = match arg {
                None => members.iter().map(|_| Atomic::Bool(true)).collect(),
                Some(e) => members
                    .iter()
                    .map(|r| eval_expr(e, r, resolver))
                    .collect::<Result<_, _>>()?,
            };
            agg_compute(*kind, &values)
        }
        SqlExpr::Arith(op, a, b) => {
            let l = eval_with_aggs(a, rep, members, resolver)?;
            let r = eval_with_aggs(b, rep, members, resolver)?;
            arith(*op, &l, &r)
        }
        other => eval_expr(other, rep, resolver),
    }
}

fn agg_compute(kind: AggKind, values: &[Atomic]) -> Result<Atomic, SqlError> {
    let non_null: Vec<&Atomic> = values.iter().filter(|v| !v.is_null()).collect();
    match kind {
        AggKind::Count => Ok(Atomic::Int(non_null.len() as i64)),
        AggKind::Sum => {
            if non_null.is_empty() {
                return Ok(Atomic::Null);
            }
            let mut all_int = true;
            let mut total = 0.0;
            for v in &non_null {
                match v {
                    Atomic::Int(i) => total += *i as f64,
                    Atomic::Float(f) => {
                        total += f;
                        all_int = false;
                    }
                    other => {
                        return Err(SqlError::new(format!("SUM over non-number {:?}", other)))
                    }
                }
            }
            Ok(if all_int {
                Atomic::Int(total as i64)
            } else {
                Atomic::Float(total)
            })
        }
        AggKind::Min => Ok(non_null
            .iter()
            .min_by(|a, b| cmp_atomics(a, b))
            .map(|v| (*v).clone())
            .unwrap_or(Atomic::Null)),
        AggKind::Max => Ok(non_null
            .iter()
            .max_by(|a, b| cmp_atomics(a, b))
            .map(|v| (*v).clone())
            .unwrap_or(Atomic::Null)),
        AggKind::Avg => {
            let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Ok(Atomic::Null)
            } else {
                Ok(Atomic::Float(nums.iter().sum::<f64>() / nums.len() as f64))
            }
        }
    }
}

/// Evaluate an aggregate-free expression on one flat row.
pub fn eval_expr(
    expr: &SqlExpr,
    row: &[Atomic],
    resolver: &Resolver,
) -> Result<Atomic, SqlError> {
    match expr {
        SqlExpr::Col(c) => Ok(row[resolver.resolve(c)?].clone()),
        SqlExpr::Lit(v) => Ok(v.clone()),
        SqlExpr::Cmp(op, l, r) => {
            let lv = eval_expr(l, row, resolver)?;
            let rv = eval_expr(r, row, resolver)?;
            if lv.is_null() || rv.is_null() {
                // SQL three-valued logic collapsed to false.
                return Ok(Atomic::Bool(false));
            }
            let ord = cmp_atomics(&lv, &rv);
            let b = match op {
                SqlCmp::Eq => ord == Ordering::Equal,
                SqlCmp::Ne => ord != Ordering::Equal,
                SqlCmp::Lt => ord == Ordering::Less,
                SqlCmp::Le => ord != Ordering::Greater,
                SqlCmp::Gt => ord == Ordering::Greater,
                SqlCmp::Ge => ord != Ordering::Less,
            };
            Ok(Atomic::Bool(b))
        }
        SqlExpr::And(a, b) => Ok(Atomic::Bool(
            eval_expr(a, row, resolver)?.truthy() && eval_expr(b, row, resolver)?.truthy(),
        )),
        SqlExpr::Or(a, b) => Ok(Atomic::Bool(
            eval_expr(a, row, resolver)?.truthy() || eval_expr(b, row, resolver)?.truthy(),
        )),
        SqlExpr::Not(e) => Ok(Atomic::Bool(!eval_expr(e, row, resolver)?.truthy())),
        SqlExpr::Arith(op, a, b) => {
            let l = eval_expr(a, row, resolver)?;
            let r = eval_expr(b, row, resolver)?;
            arith(*op, &l, &r)
        }
        SqlExpr::Like(e, pattern) => {
            let v = eval_expr(e, row, resolver)?;
            Ok(Atomic::Bool(like_match(&v.lexical(), pattern)))
        }
        SqlExpr::In(e, items) => {
            let v = eval_expr(e, row, resolver)?;
            Ok(Atomic::Bool(items.iter().any(|i| v.key_eq(i))))
        }
        SqlExpr::Between(e, lo, hi) => {
            let v = eval_expr(e, row, resolver)?;
            if v.is_null() {
                return Ok(Atomic::Bool(false));
            }
            Ok(Atomic::Bool(
                cmp_atomics(&v, lo) != Ordering::Less && cmp_atomics(&v, hi) != Ordering::Greater,
            ))
        }
        SqlExpr::IsNull(e, negated) => {
            let v = eval_expr(e, row, resolver)?;
            Ok(Atomic::Bool(v.is_null() != *negated))
        }
        SqlExpr::Agg(..) => Err(SqlError::new(
            "aggregate used outside GROUP BY context",
        )),
    }
}

fn arith(op: SqlArith, l: &Atomic, r: &Atomic) -> Result<Atomic, SqlError> {
    if let (Atomic::Int(a), Atomic::Int(b)) = (l, r) {
        return match op {
            SqlArith::Add => Ok(Atomic::Int(a + b)),
            SqlArith::Sub => Ok(Atomic::Int(a - b)),
            SqlArith::Mul => Ok(Atomic::Int(a * b)),
            SqlArith::Div => {
                if *b == 0 {
                    Err(SqlError::new("division by zero"))
                } else {
                    Ok(Atomic::Int(a / b))
                }
            }
        };
    }
    let a = l
        .as_f64()
        .ok_or_else(|| SqlError::new(format!("non-numeric operand {:?}", l)))?;
    let b = r
        .as_f64()
        .ok_or_else(|| SqlError::new(format!("non-numeric operand {:?}", r)))?;
    match op {
        SqlArith::Add => Ok(Atomic::Float(a + b)),
        SqlArith::Sub => Ok(Atomic::Float(a - b)),
        SqlArith::Mul => Ok(Atomic::Float(a * b)),
        SqlArith::Div => {
            if b == 0.0 {
                Err(SqlError::new("division by zero"))
            } else {
                Ok(Atomic::Float(a / b))
            }
        }
    }
}

fn cmp_atomics(a: &Atomic, b: &Atomic) -> Ordering {
    a.total_cmp(b)
}

fn hash_key(a: &Atomic) -> String {
    match a {
        // Integers exactly representable as f64 coerce through f64 so
        // INT/FLOAT keys join; larger ones render exactly so distinct
        // i64 keys beyond 2^53 never conflate.
        Atomic::Int(i) if (*i as f64) as i64 == *i => format!("n{}", *i as f64),
        Atomic::Int(i) => format!("ix{}", i),
        Atomic::Float(f) => format!("n{}", f),
        other => format!("s{}", other.lexical()),
    }
}

fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => (0..=t.len()).any(|k| rec(&t[k..], rest)),
            Some(('_', rest)) => t
                .split_first()
                .is_some_and(|(_, t_rest)| rec(t_rest, rest)),
            Some((c, rest)) => t
                .split_first()
                .is_some_and(|(tc, t_rest)| tc == c && rec(t_rest, rest)),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}
