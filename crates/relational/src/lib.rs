//! # nimble-relational
//!
//! An in-memory relational engine substrate.
//!
//! The Nimble paper's compiler "translates each fragment into the
//! appropriate query language for the destination source; for example, if
//! an RDB is being queried, then the compiler generates SQL", and it
//! "considers both the type of the underlying source … and the presence of
//! indices on the data". Reproducing that faithfully requires an actual
//! SQL-speaking relational system for the mediator to talk to — this crate
//! is that system:
//!
//! * typed columns (`INT`, `FLOAT`, `TEXT`, `BOOL`) over heap tables,
//! * hash and B-tree secondary indexes,
//! * a SQL subset (SELECT–PROJECT–JOIN, aggregates, `ORDER BY`, `LIMIT`,
//!   `IN`, `LIKE`, `BETWEEN`; plus `CREATE TABLE`, `CREATE INDEX`,
//!   `INSERT`) with its own lexer and parser,
//! * a planner that picks index access paths and hash joins,
//! * execution statistics (`rows_scanned`, `index_lookups`) that the
//!   pushdown experiments (E5) read.
//!
//! The mediator never touches these internals: its relational adapter
//! ships SQL **text**, exactly as it would to a remote database.
//!
//! ```
//! use nimble_relational::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'ada'), (2, 'alan')").unwrap();
//! let rs = db.execute("SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(rs.rows[0][0].lexical(), "alan");
//! ```

pub mod database;
pub mod error;
pub mod exec;
pub mod plan;
pub mod sql;
pub mod table;
pub mod types;

pub use database::{Database, ExecStats, ResultSet};
pub use error::SqlError;
pub use table::{IndexKind, Table};
pub use types::{Column, ColumnType};
