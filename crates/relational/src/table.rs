//! Heap tables with secondary indexes.

use crate::error::SqlError;
use crate::types::{Column, ColumnType};
use nimble_xml::{Atomic, AtomicKey};
use std::collections::{BTreeMap, HashMap};

/// Index structure choice: hash supports equality probes, B-tree also
/// supports ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IndexKind {
    Hash,
    BTree,
}

#[derive(Debug, Clone)]
pub(crate) enum Index {
    Hash(HashMap<AtomicKey, Vec<usize>>),
    BTree(BTreeMap<AtomicKey, Vec<usize>>),
}

impl Index {
    fn new(kind: IndexKind) -> Index {
        match kind {
            IndexKind::Hash => Index::Hash(HashMap::new()),
            IndexKind::BTree => Index::BTree(BTreeMap::new()),
        }
    }

    fn insert(&mut self, key: Atomic, row: usize) {
        match self {
            Index::Hash(m) => m.entry(AtomicKey(key)).or_default().push(row),
            Index::BTree(m) => m.entry(AtomicKey(key)).or_default().push(row),
        }
    }

    pub(crate) fn kind(&self) -> IndexKind {
        match self {
            Index::Hash(_) => IndexKind::Hash,
            Index::BTree(_) => IndexKind::BTree,
        }
    }

    /// Row ids matching an equality probe.
    pub(crate) fn lookup_eq(&self, key: &Atomic) -> Vec<usize> {
        let k = AtomicKey(key.clone());
        match self {
            Index::Hash(m) => m.get(&k).cloned().unwrap_or_default(),
            Index::BTree(m) => m.get(&k).cloned().unwrap_or_default(),
        }
    }

    /// Row ids for a (closed/open) range; only B-tree supports this.
    pub(crate) fn lookup_range(
        &self,
        low: Option<(&Atomic, bool)>,
        high: Option<(&Atomic, bool)>,
    ) -> Option<Vec<usize>> {
        let m = match self {
            Index::BTree(m) => m,
            Index::Hash(_) => return None,
        };
        use std::ops::Bound;
        let lo = match low {
            None => Bound::Unbounded,
            Some((a, inclusive)) => {
                let k = AtomicKey(a.clone());
                if inclusive {
                    Bound::Included(k)
                } else {
                    Bound::Excluded(k)
                }
            }
        };
        let hi = match high {
            None => Bound::Unbounded,
            Some((a, inclusive)) => {
                let k = AtomicKey(a.clone());
                if inclusive {
                    Bound::Included(k)
                } else {
                    Bound::Excluded(k)
                }
            }
        };
        let mut out = Vec::new();
        for (_, rows) in m.range((lo, hi)) {
            out.extend_from_slice(rows);
        }
        Some(out)
    }
}

/// A heap table: column metadata, row storage, and per-column indexes.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    pub(crate) rows: Vec<Vec<Atomic>>,
    pub(crate) indexes: HashMap<String, Index>,
}

impl Table {
    pub fn new(name: &str, columns: Vec<Column>) -> Table {
        Table {
            name: name.to_string(),
            columns,
            rows: Vec::new(),
            indexes: HashMap::new(),
        }
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column type by name.
    pub fn column_type(&self, name: &str) -> Option<ColumnType> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.ty)
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Borrow the raw rows (used by adapters that export the whole table).
    pub fn rows(&self) -> &[Vec<Atomic>] {
        &self.rows
    }

    /// Insert a row, coercing values to column types and maintaining all
    /// indexes.
    pub fn insert(&mut self, values: Vec<Atomic>) -> Result<(), SqlError> {
        if values.len() != self.columns.len() {
            return Err(SqlError::new(format!(
                "table {} expects {} values, got {}",
                self.name,
                self.columns.len(),
                values.len()
            )));
        }
        let mut row = Vec::with_capacity(values.len());
        for (col, v) in self.columns.iter().zip(values) {
            row.push(col.ty.coerce(v)?);
        }
        let rid = self.rows.len();
        for (col_name, index) in self.indexes.iter_mut() {
            let ci = self
                .columns
                .iter()
                .position(|c| &c.name == col_name)
                .expect("index on known column");
            index.insert(row[ci].clone(), rid);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Create an index over an existing column, back-filling current rows.
    pub fn create_index(&mut self, column: &str, kind: IndexKind) -> Result<(), SqlError> {
        let ci = self
            .column_index(column)
            .ok_or_else(|| SqlError::new(format!("no column {:?} in {}", column, self.name)))?;
        let mut idx = Index::new(kind);
        for (rid, row) in self.rows.iter().enumerate() {
            idx.insert(row[ci].clone(), rid);
        }
        self.indexes.insert(column.to_string(), idx);
        Ok(())
    }

    /// Drop an index if present.
    pub fn drop_index(&mut self, column: &str) -> bool {
        self.indexes.remove(column).is_some()
    }

    /// Names of indexed columns.
    pub fn indexed_columns(&self) -> Vec<(String, IndexKind)> {
        let mut v: Vec<(String, IndexKind)> = self
            .indexes
            .iter()
            .map(|(c, i)| (c.clone(), i.kind()))
            .collect();
        v.sort();
        v
    }

    pub(crate) fn index_on(&self, column: &str) -> Option<&Index> {
        self.indexes.get(column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new(
            "people",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("age", ColumnType::Int),
            ],
        );
        for (id, name, age) in [(1, "ada", 36), (2, "alan", 41), (3, "grace", 36)] {
            t.insert(vec![
                Atomic::Int(id),
                Atomic::Str(name.into()),
                Atomic::Int(age),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_coerces_and_validates() {
        let mut t = people();
        assert!(t
            .insert(vec![Atomic::Str("4".into()), Atomic::Str("x".into()), Atomic::Int(1)])
            .is_ok());
        assert!(t.insert(vec![Atomic::Int(5)]).is_err());
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.rows()[3][0], Atomic::Int(4));
    }

    #[test]
    fn hash_index_lookup() {
        let mut t = people();
        t.create_index("age", IndexKind::Hash).unwrap();
        let idx = t.index_on("age").unwrap();
        let rows = idx.lookup_eq(&Atomic::Int(36));
        assert_eq!(rows, vec![0, 2]);
        assert!(idx.lookup_range(None, None).is_none());
    }

    #[test]
    fn btree_index_range() {
        let mut t = people();
        t.create_index("age", IndexKind::BTree).unwrap();
        let idx = t.index_on("age").unwrap();
        let rows = idx
            .lookup_range(Some((&Atomic::Int(37), true)), None)
            .unwrap();
        assert_eq!(rows, vec![1]);
        let rows = idx
            .lookup_range(Some((&Atomic::Int(36), true)), Some((&Atomic::Int(36), true)))
            .unwrap();
        assert_eq!(rows, vec![0, 2]);
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = people();
        t.create_index("id", IndexKind::Hash).unwrap();
        t.insert(vec![
            Atomic::Int(9),
            Atomic::Str("new".into()),
            Atomic::Int(20),
        ])
        .unwrap();
        assert_eq!(t.index_on("id").unwrap().lookup_eq(&Atomic::Int(9)), vec![3]);
    }
}
