//! # nimble-cleaning
//!
//! Dynamic data cleaning (paper §3.2).
//!
//! Cleaning in a data-integration system differs from warehouse ETL:
//! "the source data is unchanged, and at least some of the cleansing and
//! matching need to be performed dynamically." This crate implements the
//! full §3.2 feature list:
//!
//! * **Extensible normalization & matching** — [`normalize`] ships
//!   case/whitespace, abbreviation expansion, name standardization, and
//!   US-address parsing (the paper's *translation problem*: source A's
//!   `city, state` vs. source B's single `address`); [`matching`] ships
//!   Levenshtein, Jaro-Winkler, q-gram Jaccard, Soundex, and weighted
//!   composites. Both are open traits — "domain-specific and
//!   customer-provided normalization and matching functions are
//!   supported".
//! * **Concordance database** — [`concordance`]: "a separate data store
//!   … created to serve to match records from two or more different
//!   original data sources", recording object-identity decisions so the
//!   *extraction* phase can reapply past human decisions autonomously.
//! * **Two phases** — [`pipeline`]: the interactive *data-mining* phase
//!   surfaces uncertain pairs for a human; the autonomous *extraction*
//!   phase applies known decisions and traps exceptions "to allow
//!   extraction to continue with cleanup applied post-hoc".
//! * **Merge/purge baseline** — [`merge_purge`]: the sorted-neighborhood
//!   method of Hernández & Stolfo (the paper's references 10 and 11),
//!   used as the comparison arm of experiment E4.
//! * **Lineage** — [`lineage`]: "recording data ancestry, human
//!   decisions, and supporting roll-back whenever possible".
//! * **Declarative flows** — [`flow`]: cleaning pipelines as data
//!   ("We use a declarative representation of the flow"), serializable
//!   with `serde_json` so flows can be stored and shipped.
//! * **Synthetic dirty data** — [`synth`]: the stand-in for proprietary
//!   customer databases, with parameterized error rates and ground
//!   truth for precision/recall measurement.

pub mod concordance;
pub mod flow;
pub mod lineage;
pub mod matching;
pub mod merge_purge;
pub mod normalize;
pub mod pipeline;
pub mod record;
pub mod synth;

pub use concordance::{ConcordanceDb, Decision};
pub use flow::{CleaningFlow, FlowStep};
pub use lineage::{LineageLog, LineageOp};
pub use matching::{CompositeMatcher, MatchOutcome, Matcher};
pub use merge_purge::{merge_purge, MergePurgeConfig};
pub use normalize::Normalizer;
pub use pipeline::{CleaningPipeline, PipelineReport};
pub use record::{Record, RecordSet};
