//! Declarative cleaning flows.
//!
//! "We use a declarative representation of the flow" (after Galhardas et
//! al., the paper's reference 7): a [`CleaningFlow`] is data — a named sequence
//! of steps — serializable with serde so flows can be stored by the
//! management tools, versioned, and shipped between deployments. "It
//! will be easy to add new data sources to an existing flow": a flow is
//! applied per record set, so adding a source means running the same
//! flow over it.

use crate::lineage::{LineageLog, LineageOp};
use crate::normalize;
use crate::record::RecordSet;
use serde::{Deserialize, Serialize};

/// One declarative step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum FlowStep {
    /// Apply a named normalizer to a field in place.
    Normalize { field: String, normalizer: String },
    /// Split a single-field address into `number/street/city/state/zip`
    /// fields (the translation problem, A→B direction).
    SplitAddress { field: String },
    /// Merge several fields into one with a separator (B→A direction).
    MergeFields {
        inputs: Vec<String>,
        output: String,
        separator: String,
    },
    /// Copy a field under a new name (before destructive normalization).
    Copy { from: String, to: String },
    /// Drop records whose field is empty.
    RequireField { field: String },
}

/// A named, ordered cleaning flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleaningFlow {
    pub name: String,
    pub steps: Vec<FlowStep>,
}

/// Errors applying a flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowError(pub String);

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cleaning flow error: {}", self.0)
    }
}
impl std::error::Error for FlowError {}

impl CleaningFlow {
    pub fn new(name: &str) -> CleaningFlow {
        CleaningFlow {
            name: name.to_string(),
            steps: Vec::new(),
        }
    }

    /// Builder-style step appender.
    pub fn step(mut self, step: FlowStep) -> CleaningFlow {
        self.steps.push(step);
        self
    }

    /// Serialize to JSON (the storable representation).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("flow serializes")
    }

    /// Load from JSON.
    pub fn from_json(text: &str) -> Result<CleaningFlow, FlowError> {
        serde_json::from_str(text).map_err(|e| FlowError(e.to_string()))
    }

    /// Apply the flow to a record set in place, logging every change.
    pub fn apply(&self, records: &mut RecordSet, log: &mut LineageLog) -> Result<(), FlowError> {
        for step in &self.steps {
            match step {
                FlowStep::Normalize { field, normalizer } => {
                    let n = normalize::by_name(normalizer).ok_or_else(|| {
                        FlowError(format!("unknown normalizer {:?}", normalizer))
                    })?;
                    for r in records.iter_mut() {
                        if !r.has(field) {
                            continue;
                        }
                        let before = r.get(field).to_string();
                        let after = n.normalize(&before);
                        if after != before {
                            log.record(
                                LineageOp::Normalize {
                                    record: r.id.clone(),
                                    field: field.clone(),
                                    before,
                                    after: after.clone(),
                                },
                                "system",
                            );
                            r.set(field, after);
                        }
                    }
                }
                FlowStep::SplitAddress { field } => {
                    for r in records.iter_mut() {
                        if !r.has(field) {
                            continue;
                        }
                        let parsed = normalize::parse_address(r.get(field));
                        r.set("number", parsed.number);
                        r.set("street", parsed.street);
                        r.set("city", parsed.city);
                        r.set("state", parsed.state);
                        r.set("zip", parsed.zip);
                    }
                }
                FlowStep::MergeFields {
                    inputs,
                    output,
                    separator,
                } => {
                    for r in records.iter_mut() {
                        let merged = inputs
                            .iter()
                            .map(|f| r.get(f))
                            .filter(|v| !v.is_empty())
                            .collect::<Vec<_>>()
                            .join(separator);
                        r.set(output, merged);
                    }
                }
                FlowStep::Copy { from, to } => {
                    for r in records.iter_mut() {
                        let v = r.get(from).to_string();
                        r.set(to, v);
                    }
                }
                FlowStep::RequireField { field } => {
                    records.retain(|r| r.has(field));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn dirty() -> RecordSet {
        vec![
            Record::new("a:1", "a")
                .with("name", "LOVELACE,   Ada")
                .with("addr", "123 Main St, Seattle, WA 98101"),
            Record::new("a:2", "a").with("name", "").with("addr", "1 Oak Ave, Portland, OR"),
        ]
    }

    fn flow() -> CleaningFlow {
        CleaningFlow::new("standardize_people")
            .step(FlowStep::Copy {
                from: "name".into(),
                to: "raw_name".into(),
            })
            .step(FlowStep::Normalize {
                field: "name".into(),
                normalizer: "name".into(),
            })
            .step(FlowStep::SplitAddress {
                field: "addr".into(),
            })
            .step(FlowStep::MergeFields {
                inputs: vec!["city".into(), "state".into()],
                output: "region".into(),
                separator: ", ".into(),
            })
            .step(FlowStep::RequireField {
                field: "name".into(),
            })
    }

    #[test]
    fn flow_applies_in_order() {
        let mut rs = dirty();
        let mut log = LineageLog::new();
        flow().apply(&mut rs, &mut log).unwrap();
        // Record 2 dropped by RequireField.
        assert_eq!(rs.len(), 1);
        let r = &rs[0];
        assert_eq!(r.get("name"), "ada lovelace");
        assert_eq!(r.get("raw_name"), "LOVELACE,   Ada");
        assert_eq!(r.get("city"), "seattle");
        assert_eq!(r.get("region"), "seattle, wa");
        // Normalization was logged with before/after.
        assert!(log
            .entries()
            .iter()
            .any(|e| matches!(&e.op, LineageOp::Normalize { before, .. } if before.contains("LOVELACE"))));
    }

    #[test]
    fn json_roundtrip() {
        let f = flow();
        let json = f.to_json();
        let back = CleaningFlow::from_json(&json).unwrap();
        assert_eq!(back, f);
        assert!(CleaningFlow::from_json("{bad json").is_err());
    }

    #[test]
    fn unknown_normalizer_errors() {
        let f = CleaningFlow::new("x").step(FlowStep::Normalize {
            field: "name".into(),
            normalizer: "martian".into(),
        });
        let mut rs = dirty();
        let mut log = LineageLog::new();
        assert!(f.apply(&mut rs, &mut log).is_err());
    }
}
