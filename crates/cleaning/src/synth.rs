//! Synthetic dirty customer data with ground truth.
//!
//! The paper's evaluation context — Fortune-500 customer databases
//! "scattered across multiple databases in the organization" — is
//! proprietary, so experiments run over this generator instead: clean
//! entities are synthesized, then duplicated across sources with
//! parameterized corruption (typos, abbreviations, field splits, name
//! reordering, dropped fields). Each record carries a hidden entity id,
//! giving exact precision/recall for any matcher.

use crate::record::Record;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const FIRST_NAMES: &[&str] = &[
    "ada", "alan", "grace", "edsger", "donald", "barbara", "john", "leslie", "tony", "edgar",
    "margaret", "dennis", "ken", "bjarne", "james", "niklaus", "frances", "jean", "kathleen",
    "maurice",
];
const LAST_NAMES: &[&str] = &[
    "lovelace", "turing", "hopper", "dijkstra", "knuth", "liskov", "mccarthy", "lamport",
    "hoare", "codd", "hamilton", "ritchie", "thompson", "stroustrup", "gosling", "wirth",
    "allen", "bartik", "booth", "wilkes",
];
const STREETS: &[&str] = &[
    "main street", "oak avenue", "pine road", "cedar boulevard", "maple drive", "first street",
    "lake road", "hill lane", "park avenue", "river road",
];
const CITIES: &[(&str, &str)] = &[
    ("seattle", "wa"),
    ("portland", "or"),
    ("austin", "tx"),
    ("boston", "ma"),
    ("denver", "co"),
    ("chicago", "il"),
    ("atlanta", "ga"),
    ("phoenix", "az"),
];

/// Abbreviation corruption: the inverse of the cleaner's expander.
const ABBREVS: &[(&str, &str)] = &[
    ("street", "st"),
    ("avenue", "ave"),
    ("road", "rd"),
    ("boulevard", "blvd"),
    ("drive", "dr"),
    ("lane", "ln"),
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Distinct real-world entities.
    pub entities: usize,
    /// Sources records are spread across.
    pub sources: Vec<String>,
    /// Probability an entity gets an extra (duplicate) record beyond its
    /// first, evaluated per potential duplicate (up to `sources.len()`).
    pub duplicate_rate: f64,
    /// Per-duplicate probability of each corruption.
    pub typo_rate: f64,
    pub abbrev_rate: f64,
    pub reorder_name_rate: f64,
    pub drop_field_rate: f64,
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            entities: 100,
            sources: vec!["crm".into(), "billing".into(), "support".into()],
            duplicate_rate: 0.4,
            typo_rate: 0.3,
            abbrev_rate: 0.5,
            reorder_name_rate: 0.3,
            drop_field_rate: 0.1,
            seed: 17,
        }
    }
}

/// Generated data plus the ground truth: record id → entity number.
pub struct SynthData {
    pub records: Vec<Record>,
    pub truth: HashMap<String, usize>,
}

impl SynthData {
    /// All true duplicate pairs `(id, id)` with id-sorted components.
    pub fn true_pairs(&self) -> Vec<(String, String)> {
        let mut by_entity: HashMap<usize, Vec<&String>> = HashMap::new();
        for (id, e) in &self.truth {
            by_entity.entry(*e).or_default().push(id);
        }
        let mut out = Vec::new();
        for ids in by_entity.values() {
            for i in 0..ids.len() {
                for j in i + 1..ids.len() {
                    let (a, b) = if ids[i] <= ids[j] {
                        (ids[i].clone(), ids[j].clone())
                    } else {
                        (ids[j].clone(), ids[i].clone())
                    };
                    out.push((a, b));
                }
            }
        }
        out.sort();
        out
    }

    /// Precision/recall/F1 of predicted duplicate clusters against the
    /// ground truth, pairwise.
    pub fn evaluate(&self, clusters: &[Vec<String>]) -> Evaluation {
        let truth: std::collections::HashSet<(String, String)> =
            self.true_pairs().into_iter().collect();
        let mut predicted = std::collections::HashSet::new();
        for cluster in clusters {
            for i in 0..cluster.len() {
                for j in i + 1..cluster.len() {
                    let (a, b) = if cluster[i] <= cluster[j] {
                        (cluster[i].clone(), cluster[j].clone())
                    } else {
                        (cluster[j].clone(), cluster[i].clone())
                    };
                    predicted.insert((a, b));
                }
            }
        }
        let tp = predicted.intersection(&truth).count() as f64;
        let precision = if predicted.is_empty() {
            1.0
        } else {
            tp / predicted.len() as f64
        };
        let recall = if truth.is_empty() {
            1.0
        } else {
            tp / truth.len() as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Evaluation {
            precision,
            recall,
            f1,
            true_pairs: truth.len(),
            predicted_pairs: predicted.len(),
        }
    }
}

/// Pairwise evaluation result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub true_pairs: usize,
    pub predicted_pairs: usize,
}

/// Generate dirty data per the configuration (deterministic in the
/// seed).
pub fn generate(config: &SynthConfig) -> SynthData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut records = Vec::new();
    let mut truth = HashMap::new();
    let mut counters: HashMap<String, usize> = HashMap::new();

    for entity in 0..config.entities {
        let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        let name = format!("{} {}", first, last);
        let number = rng.gen_range(1..999);
        let street = STREETS[rng.gen_range(0..STREETS.len())];
        let (city, state) = CITIES[rng.gen_range(0..CITIES.len())];
        let address = format!("{} {}, {}, {}", number, street, city, state);
        let phone = format!(
            "{:03}-{:03}-{:04}",
            rng.gen_range(200..999),
            rng.gen_range(200..999),
            rng.gen_range(0..9999)
        );

        // The entity's first record goes to a random source, clean-ish.
        let mut homes: Vec<&String> = config.sources.iter().collect();
        homes.shuffle(&mut rng);
        let mut copies = 1;
        for _ in 1..homes.len() {
            if rng.gen_bool(config.duplicate_rate) {
                copies += 1;
            }
        }
        for (c, source) in homes.into_iter().take(copies).enumerate() {
            let n = counters.entry(source.clone()).or_insert(0);
            *n += 1;
            let id = format!("{}:{}", source, n);
            let mut rec = Record::new(&id, source)
                .with("name", &name)
                .with("address", &address)
                .with("phone", &phone);
            // The first copy stays clean; duplicates get corrupted.
            if c > 0 {
                corrupt(&mut rec, config, &mut rng);
            }
            truth.insert(id, entity);
            records.push(rec);
        }
    }
    SynthData { records, truth }
}

fn corrupt(rec: &mut Record, config: &SynthConfig, rng: &mut StdRng) {
    if rng.gen_bool(config.typo_rate) {
        let v = typo(rec.get("name"), rng);
        rec.set("name", v);
    }
    if rng.gen_bool(config.abbrev_rate) {
        let mut addr = rec.get("address").to_string();
        for (long, short) in ABBREVS {
            addr = addr.replace(long, short);
        }
        rec.set("address", addr);
    }
    if rng.gen_bool(config.reorder_name_rate) {
        let name = rec.get("name").to_string();
        if let Some((first, last)) = name.rsplit_once(' ') {
            rec.set("name", format!("{}, {}", last, first));
        }
    }
    if rng.gen_bool(config.drop_field_rate) {
        rec.set("phone", String::new());
    }
    if rng.gen_bool(config.typo_rate / 2.0) {
        let v = typo(rec.get("address"), rng);
        rec.set("address", v);
    }
}

/// One random character edit: swap, delete, insert, or replace.
fn typo(s: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_string();
    }
    let i = rng.gen_range(0..chars.len() - 1);
    match rng.gen_range(0..4) {
        0 => chars.swap(i, i + 1),
        1 => {
            chars.remove(i);
        }
        2 => chars.insert(i, (b'a' + rng.gen_range(0..26)) as char),
        _ => chars[i] = (b'a' + rng.gen_range(0..26)) as char,
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let config = SynthConfig::default();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.records, b.records);
        let different = generate(&SynthConfig {
            seed: 99,
            ..config
        });
        assert_ne!(a.records, different.records);
    }

    #[test]
    fn duplicates_exist_and_truth_covers_all() {
        let data = generate(&SynthConfig {
            entities: 50,
            duplicate_rate: 0.8,
            ..SynthConfig::default()
        });
        assert_eq!(data.truth.len(), data.records.len());
        assert!(data.records.len() > 50, "duplicates were generated");
        assert!(!data.true_pairs().is_empty());
    }

    #[test]
    fn evaluation_extremes() {
        let data = generate(&SynthConfig {
            entities: 20,
            duplicate_rate: 1.0,
            ..SynthConfig::default()
        });
        // Perfect prediction: clusters = truth groups.
        let mut by_entity: HashMap<usize, Vec<String>> = HashMap::new();
        for (id, e) in &data.truth {
            by_entity.entry(*e).or_default().push(id.clone());
        }
        let clusters: Vec<Vec<String>> = by_entity.into_values().collect();
        let eval = data.evaluate(&clusters);
        assert!((eval.precision - 1.0).abs() < 1e-9);
        assert!((eval.recall - 1.0).abs() < 1e-9);

        // Empty prediction: perfect precision, zero recall.
        let eval = data.evaluate(&[]);
        assert_eq!(eval.precision, 1.0);
        assert_eq!(eval.recall, 0.0);
        assert_eq!(eval.f1, 0.0);
    }

    #[test]
    fn corruption_rates_zero_yields_exact_duplicates() {
        let data = generate(&SynthConfig {
            entities: 10,
            duplicate_rate: 1.0,
            typo_rate: 0.0,
            abbrev_rate: 0.0,
            reorder_name_rate: 0.0,
            drop_field_rate: 0.0,
            ..SynthConfig::default()
        });
        // Any two records of the same entity have identical fields.
        let mut by_entity: HashMap<usize, Vec<&Record>> = HashMap::new();
        for r in &data.records {
            by_entity.entry(data.truth[&r.id]).or_default().push(r);
        }
        for group in by_entity.values() {
            for r in group.iter().skip(1) {
                assert_eq!(r.fields, group[0].fields);
            }
        }
    }
}
