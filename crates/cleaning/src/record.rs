//! Records: the unit of cleaning.

use std::collections::BTreeMap;
use std::fmt;

/// A flat record with named string fields, tagged with its origin source
/// (object identity spans sources, so provenance matters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Unique id, conventionally `source:local_id`.
    pub id: String,
    /// The source this record came from.
    pub source: String,
    pub fields: BTreeMap<String, String>,
}

impl Record {
    pub fn new(id: &str, source: &str) -> Record {
        Record {
            id: id.to_string(),
            source: source.to_string(),
            fields: BTreeMap::new(),
        }
    }

    /// Builder-style field setter.
    pub fn with(mut self, field: &str, value: &str) -> Record {
        self.fields.insert(field.to_string(), value.to_string());
        self
    }

    /// Field value (empty string when absent).
    pub fn get(&self, field: &str) -> &str {
        self.fields.get(field).map(String::as_str).unwrap_or("")
    }

    /// Set a field in place.
    pub fn set(&mut self, field: &str, value: String) {
        self.fields.insert(field.to_string(), value);
    }

    /// True if the field exists and is non-empty.
    pub fn has(&self, field: &str) -> bool {
        !self.get(field).is_empty()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.id)?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={:?}", k, v)?;
        }
        write!(f, "]")
    }
}

/// A set of records under cleaning.
pub type RecordSet = Vec<Record>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let r = Record::new("a:1", "a").with("name", "Ada").with("city", "");
        assert_eq!(r.get("name"), "Ada");
        assert_eq!(r.get("missing"), "");
        assert!(r.has("name"));
        assert!(!r.has("city"));
        assert!(!r.has("missing"));
    }
}
