//! Merge/purge: the sorted-neighborhood duplicate-detection baseline
//! (Hernández & Stolfo, the paper's references 10 and 11).
//!
//! Records are sorted by a blocking key; a window of size `w` slides
//! over the sorted order and only records within the same window are
//! compared. Multi-pass runs with different keys catch duplicates the
//! first key's sort separates; pair decisions accumulate in a union-find
//! so clusters are transitive closures.

use crate::matching::CompositeMatcher;
use crate::record::Record;

/// A blocking-key extractor for one sorted-neighborhood pass.
pub type BlockingKey = Box<dyn Fn(&Record) -> String + Send + Sync>;

/// Configuration of a sorted-neighborhood run.
pub struct MergePurgeConfig {
    /// Window size (records compared with the `w-1` following them).
    pub window: usize,
    /// Key-building functions, one per pass.
    pub keys: Vec<BlockingKey>,
}

impl MergePurgeConfig {
    /// Single pass over a normalized-name key.
    pub fn single_pass(window: usize, field: &'static str) -> MergePurgeConfig {
        MergePurgeConfig {
            window,
            keys: vec![Box::new(move |r| r.get(field).to_string())],
        }
    }
}

/// Union-find over record indexes.
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    pub fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Result of a merge/purge run.
pub struct MergePurgeResult {
    /// Clusters of record indexes (size ≥ 1; singletons included).
    pub clusters: Vec<Vec<usize>>,
    /// Matched pairs (indexes into the input), deduplicated.
    pub matched_pairs: Vec<(usize, usize)>,
    /// Pairwise comparisons actually performed.
    pub comparisons: u64,
}

/// Run sorted-neighborhood duplicate detection.
pub fn merge_purge(
    records: &[Record],
    config: &MergePurgeConfig,
    matcher: &CompositeMatcher,
) -> MergePurgeResult {
    let mut uf = UnionFind::new(records.len());
    let mut comparisons = 0u64;
    let mut matched_pairs = Vec::new();

    for key_fn in &config.keys {
        let mut order: Vec<usize> = (0..records.len()).collect();
        order.sort_by_key(|&i| key_fn(&records[i]));
        for wi in 0..order.len() {
            let hi = (wi + config.window).min(order.len());
            for wj in wi + 1..hi {
                let (i, j) = (order[wi], order[wj]);
                if uf.find(i) == uf.find(j) {
                    continue;
                }
                comparisons += 1;
                if matcher.classify(&records[i], &records[j]).is_match() {
                    uf.union(i, j);
                    matched_pairs.push((i.min(j), i.max(j)));
                }
            }
        }
    }

    // Gather clusters.
    let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for i in 0..records.len() {
        by_root.entry(uf.find(i)).or_default().push(i);
    }
    let mut clusters: Vec<Vec<usize>> = by_root.into_values().collect();
    clusters.sort_by_key(|c| c[0]);
    matched_pairs.sort_unstable();
    matched_pairs.dedup();

    MergePurgeResult {
        clusters,
        matched_pairs,
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{JaroWinkler, Levenshtein};

    fn matcher() -> CompositeMatcher {
        CompositeMatcher::new(0.88, 0.7)
            .field("name", Box::new(JaroWinkler), 0.7)
            .field("city", Box::new(Levenshtein), 0.3)
    }

    fn records() -> Vec<Record> {
        vec![
            Record::new("a:1", "a").with("name", "ada lovelace").with("city", "london"),
            Record::new("b:1", "b").with("name", "ada lovelace").with("city", "london"),
            Record::new("a:2", "a").with("name", "grace hopper").with("city", "new york"),
            Record::new("b:2", "b").with("name", "grace hoper").with("city", "new york"),
            Record::new("a:3", "a").with("name", "alan turing").with("city", "london"),
        ]
    }

    #[test]
    fn finds_duplicates_in_window() {
        let rs = records();
        let res = merge_purge(&rs, &MergePurgeConfig::single_pass(3, "name"), &matcher());
        // ada×2 and grace×2 cluster; alan stays alone.
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = res.clusters.iter().map(|c| c.len()).collect();
            v.sort();
            v
        };
        assert_eq!(sizes, vec![1, 2, 2]);
        assert_eq!(res.matched_pairs.len(), 2);
    }

    #[test]
    fn window_size_bounds_comparisons() {
        let rs = records();
        let narrow = merge_purge(&rs, &MergePurgeConfig::single_pass(2, "name"), &matcher());
        let wide = merge_purge(&rs, &MergePurgeConfig::single_pass(5, "name"), &matcher());
        assert!(narrow.comparisons < wide.comparisons);
        // Full window degenerates to all-pairs: n(n-1)/2 = 10.
        assert_eq!(wide.comparisons, 10);
    }

    #[test]
    fn multi_pass_recovers_split_duplicates() {
        // Same person, name field corrupted at the *front* so a name sort
        // separates them; a city key brings them adjacent.
        let mut rs = vec![
            Record::new("a:1", "a").with("name", "zada lovelace").with("city", "quito"),
            Record::new("x:1", "x").with("name", "bob smith").with("city", "austin"),
            Record::new("x:2", "x").with("name", "carol jones").with("city", "boston"),
            Record::new("b:1", "b").with("name", "ada lovelace").with("city", "quito"),
        ];
        // Fillers are mutually dissimilar in both name and city so they
        // never match anything.
        let fillers = [
            ("nina patel", "helsinki"),
            ("omar diaz", "jakarta"),
            ("pia chen", "kigali"),
            ("quin roe", "lagos"),
            ("rosa kim", "manila"),
            ("sam lee", "nairobi"),
        ];
        for (i, (name, city)) in fillers.iter().enumerate() {
            rs.push(
                Record::new(&format!("f:{}", i), "f")
                    .with("name", name)
                    .with("city", city),
            );
        }
        let single = merge_purge(&rs, &MergePurgeConfig::single_pass(2, "name"), &matcher());
        assert_eq!(single.matched_pairs.len(), 0);

        let multi = MergePurgeConfig {
            window: 2,
            keys: vec![
                Box::new(|r: &Record| r.get("name").to_string()),
                Box::new(|r: &Record| r.get("city").to_string()),
            ],
        };
        let res = merge_purge(&rs, &multi, &matcher());
        assert_eq!(res.matched_pairs.len(), 1);
    }

    #[test]
    fn union_find_transitivity() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
    }
}
