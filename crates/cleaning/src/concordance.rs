//! The concordance database: persistent object-identity decisions.
//!
//! "One of features we have found essential in most practical situations
//! is a separate data store that is created to serve to match records
//! from two or more different original data sources. We call this a
//! concordance database." Decisions — human or automatic — are recorded
//! against canonical record-pair keys; the extraction phase replays them
//! so "past human decisions are reapplied".

use std::collections::HashMap;

/// A recorded identity decision for a record pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    SameObject,
    DifferentObjects,
}

/// Who made a decision (kept for lineage and audit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionOrigin {
    Human(String),
    Automatic { matcher: String },
}

#[derive(Debug, Clone)]
struct Entry {
    decision: Decision,
    origin: DecisionOrigin,
    reuse_count: u64,
}

/// The concordance store, keyed by unordered record-id pairs.
#[derive(Default)]
pub struct ConcordanceDb {
    entries: HashMap<(String, String), Entry>,
    lookups: u64,
    hits: u64,
}

fn key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

impl ConcordanceDb {
    pub fn new() -> ConcordanceDb {
        ConcordanceDb::default()
    }

    /// Record a human disambiguation ("incorporating human input for
    /// disambiguation when necessary").
    pub fn record_human(&mut self, a: &str, b: &str, decision: Decision, who: &str) {
        self.entries.insert(
            key(a, b),
            Entry {
                decision,
                origin: DecisionOrigin::Human(who.to_string()),
                reuse_count: 0,
            },
        );
    }

    /// Record an automatic high-confidence decision.
    pub fn record_automatic(&mut self, a: &str, b: &str, decision: Decision, matcher: &str) {
        self.entries.entry(key(a, b)).or_insert(Entry {
            decision,
            origin: DecisionOrigin::Automatic {
                matcher: matcher.to_string(),
            },
            reuse_count: 0,
        });
    }

    /// Look up a past decision, counting reuse.
    pub fn lookup(&mut self, a: &str, b: &str) -> Option<Decision> {
        self.lookups += 1;
        match self.entries.get_mut(&key(a, b)) {
            Some(e) => {
                e.reuse_count += 1;
                self.hits += 1;
                Some(e.decision)
            }
            None => None,
        }
    }

    /// Peek without counting.
    pub fn peek(&self, a: &str, b: &str) -> Option<Decision> {
        self.entries.get(&key(a, b)).map(|e| e.decision)
    }

    /// Remove a decision (a human reversal); true if present. Rollback
    /// via the lineage log calls this.
    pub fn retract(&mut self, a: &str, b: &str) -> bool {
        self.entries.remove(&key(a, b)).is_some()
    }

    /// Number of stored decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Decisions made by humans (the expensive kind the store exists to
    /// amortize).
    pub fn human_decisions(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.origin, DecisionOrigin::Human(_)))
            .count()
    }

    /// `(lookups, hits)` — reuse statistics for experiment E4.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_symmetric() {
        let mut db = ConcordanceDb::new();
        db.record_human("a:1", "b:9", Decision::SameObject, "denise");
        assert_eq!(db.lookup("b:9", "a:1"), Some(Decision::SameObject));
        assert_eq!(db.lookup("a:1", "b:9"), Some(Decision::SameObject));
        assert_eq!(db.stats(), (2, 2));
    }

    #[test]
    fn human_overrides_automatic_but_not_vice_versa() {
        let mut db = ConcordanceDb::new();
        db.record_automatic("a", "b", Decision::SameObject, "jw");
        db.record_human("a", "b", Decision::DifferentObjects, "dan");
        assert_eq!(db.peek("a", "b"), Some(Decision::DifferentObjects));
        // Later automatic decisions never clobber what's stored.
        db.record_automatic("a", "b", Decision::SameObject, "jw");
        assert_eq!(db.peek("a", "b"), Some(Decision::DifferentObjects));
        assert_eq!(db.human_decisions(), 1);
    }

    #[test]
    fn retract_supports_rollback() {
        let mut db = ConcordanceDb::new();
        db.record_human("a", "b", Decision::SameObject, "x");
        assert!(db.retract("b", "a"));
        assert!(!db.retract("a", "b"));
        assert_eq!(db.lookup("a", "b"), None);
    }
}
