//! Data lineage: "recording data ancestry, human decisions, and
//! supporting roll-back whenever possible."
//!
//! Every cleaning operation appends an entry with its inputs, outputs,
//! and actor. [`LineageLog::rollback_to`] returns the entries undone (in
//! reverse order) so callers can reverse their effects — e.g. retract
//! concordance decisions or restore field values captured in the entry.
//!
//! Appends and rollbacks are counted in the process-global
//! [`MetricsRegistry`] (`cleaning.lineage.entries`,
//! `cleaning.lineage.rollbacks`) so the management console can see
//! cleaning activity without holding a log reference.

use nimble_trace::MetricsRegistry;

/// What kind of operation an entry records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineageOp {
    /// A field value was normalized: `(record, field, before, after)`.
    Normalize {
        record: String,
        field: String,
        before: String,
        after: String,
    },
    /// Two records were declared the same object.
    Merge { left: String, right: String },
    /// A pair was declared distinct.
    Distinguish { left: String, right: String },
    /// A record was derived from others (e.g. a golden record).
    Derive {
        output: String,
        inputs: Vec<String>,
    },
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageEntry {
    /// Monotone sequence number.
    pub seq: u64,
    pub op: LineageOp,
    /// Who performed it (`"system"` or a user name).
    pub actor: String,
}

/// An append-only lineage log.
#[derive(Default)]
pub struct LineageLog {
    entries: Vec<LineageEntry>,
    next_seq: u64,
}

impl LineageLog {
    pub fn new() -> LineageLog {
        LineageLog::default()
    }

    /// Append an operation, returning its sequence number.
    pub fn record(&mut self, op: LineageOp, actor: &str) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(LineageEntry {
            seq,
            op,
            actor: actor.to_string(),
        });
        MetricsRegistry::global().incr("cleaning.lineage.entries", 1);
        seq
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[LineageEntry] {
        &self.entries
    }

    /// Entries mentioning a record id — its ancestry.
    pub fn ancestry(&self, record: &str) -> Vec<&LineageEntry> {
        self.entries
            .iter()
            .filter(|e| match &e.op {
                LineageOp::Normalize { record: r, .. } => r == record,
                LineageOp::Merge { left, right } | LineageOp::Distinguish { left, right } => {
                    left == record || right == record
                }
                LineageOp::Derive { output, inputs } => {
                    output == record || inputs.iter().any(|i| i == record)
                }
            })
            .collect()
    }

    /// Undo everything after sequence number `seq` (exclusive); returns
    /// the undone entries newest-first so callers can reverse effects in
    /// the right order.
    pub fn rollback_to(&mut self, seq: u64) -> Vec<LineageEntry> {
        let keep = self
            .entries
            .iter()
            .position(|e| e.seq > seq)
            .unwrap_or(self.entries.len());
        let mut undone: Vec<LineageEntry> = self.entries.split_off(keep);
        undone.reverse();
        if !undone.is_empty() {
            let reg = MetricsRegistry::global();
            reg.incr("cleaning.lineage.rollbacks", 1);
            reg.incr("cleaning.lineage.entries_undone", undone.len() as u64);
        }
        undone
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_ancestry() {
        let mut log = LineageLog::new();
        log.record(
            LineageOp::Normalize {
                record: "a:1".into(),
                field: "name".into(),
                before: "ADA".into(),
                after: "ada".into(),
            },
            "system",
        );
        log.record(
            LineageOp::Merge {
                left: "a:1".into(),
                right: "b:7".into(),
            },
            "denise",
        );
        log.record(
            LineageOp::Derive {
                output: "golden:1".into(),
                inputs: vec!["a:1".into(), "b:7".into()],
            },
            "system",
        );
        assert_eq!(log.ancestry("a:1").len(), 3);
        assert_eq!(log.ancestry("b:7").len(), 2);
        assert_eq!(log.ancestry("golden:1").len(), 1);
        assert!(log.ancestry("zzz").is_empty());
    }

    #[test]
    fn rollback_returns_newest_first() {
        let mut log = LineageLog::new();
        let s0 = log.record(
            LineageOp::Merge {
                left: "a".into(),
                right: "b".into(),
            },
            "x",
        );
        log.record(
            LineageOp::Merge {
                left: "c".into(),
                right: "d".into(),
            },
            "x",
        );
        log.record(
            LineageOp::Distinguish {
                left: "e".into(),
                right: "f".into(),
            },
            "x",
        );
        let undone = log.rollback_to(s0);
        assert_eq!(undone.len(), 2);
        assert!(matches!(undone[0].op, LineageOp::Distinguish { .. }));
        assert_eq!(log.len(), 1);
        // Rolling back to a future seq is a no-op.
        assert!(log.rollback_to(999).is_empty());
    }
}
