//! Normalization functions: canonicalizing field values before matching.

use std::collections::BTreeMap;

/// A normalization function over one string field. Implementations are
/// registered by name in cleaning flows and in the engine's function
/// registry.
pub trait Normalizer: Send + Sync {
    fn name(&self) -> &str;
    fn normalize(&self, input: &str) -> String;
}

/// Lowercase, collapse runs of whitespace, trim, and strip punctuation
/// except digits/letters/space. The universal first step.
pub struct BasicNormalizer;

impl Normalizer for BasicNormalizer {
    fn name(&self) -> &str {
        "basic"
    }

    fn normalize(&self, input: &str) -> String {
        let mut out = String::with_capacity(input.len());
        let mut last_space = true;
        for c in input.chars() {
            if c.is_alphanumeric() {
                out.extend(c.to_lowercase());
                last_space = false;
            } else if !last_space {
                out.push(' ');
                last_space = true;
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out
    }
}

/// Expand domain abbreviations token-wise against a dictionary. Ships
/// with street/corporate defaults; extensible with customer entries
/// ("allowing for future enhancements as they are demanded by
/// customers").
pub struct AbbrevExpander {
    dict: BTreeMap<String, String>,
}

impl Default for AbbrevExpander {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl AbbrevExpander {
    /// Street-suffix and corporate-form defaults.
    pub fn with_defaults() -> AbbrevExpander {
        let mut dict = BTreeMap::new();
        for (k, v) in [
            ("st", "street"),
            ("ave", "avenue"),
            ("rd", "road"),
            ("blvd", "boulevard"),
            ("dr", "drive"),
            ("ln", "lane"),
            ("hwy", "highway"),
            ("apt", "apartment"),
            ("ste", "suite"),
            ("n", "north"),
            ("s", "south"),
            ("e", "east"),
            ("w", "west"),
            ("inc", "incorporated"),
            ("corp", "corporation"),
            ("co", "company"),
            ("ltd", "limited"),
            ("intl", "international"),
            ("mfg", "manufacturing"),
            ("&", "and"),
        ] {
            dict.insert(k.to_string(), v.to_string());
        }
        AbbrevExpander { dict }
    }

    /// An empty dictionary for fully custom vocabularies.
    pub fn empty() -> AbbrevExpander {
        AbbrevExpander {
            dict: BTreeMap::new(),
        }
    }

    /// Add or override an entry.
    pub fn add(&mut self, abbrev: &str, expansion: &str) {
        self.dict
            .insert(abbrev.to_lowercase(), expansion.to_lowercase());
    }
}

impl Normalizer for AbbrevExpander {
    fn name(&self) -> &str {
        "abbrev"
    }

    fn normalize(&self, input: &str) -> String {
        input
            .split_whitespace()
            .map(|tok| {
                let key = tok.trim_end_matches('.').to_lowercase();
                self.dict
                    .get(&key)
                    .cloned()
                    .unwrap_or_else(|| tok.to_string())
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Standardize person names: `"Last, First"` → `"first last"`, strip
/// honorifics and suffixes, lowercase.
pub struct NameStandardizer;

const HONORIFICS: &[&str] = &["mr", "mrs", "ms", "dr", "prof", "sir"];
const SUFFIXES: &[&str] = &["jr", "sr", "ii", "iii", "iv", "phd", "md"];

impl Normalizer for NameStandardizer {
    fn name(&self) -> &str {
        "name"
    }

    fn normalize(&self, input: &str) -> String {
        let reordered = match input.split_once(',') {
            Some((last, first)) => format!("{} {}", first.trim(), last.trim()),
            None => input.to_string(),
        };
        let basic = BasicNormalizer.normalize(&reordered);
        basic
            .split_whitespace()
            .filter(|tok| !HONORIFICS.contains(tok) && !SUFFIXES.contains(tok))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A parsed US-style postal address — the target of the *translation
/// problem*: "source A may use several fields (e.g., city, state, …) to
/// describe what source B models with a single field (address)".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedAddress {
    pub number: String,
    pub street: String,
    pub city: String,
    pub state: String,
    pub zip: String,
}

impl ParsedAddress {
    /// Canonical single-line rendering.
    pub fn canonical(&self) -> String {
        let mut parts = Vec::new();
        if !self.number.is_empty() {
            parts.push(self.number.clone());
        }
        if !self.street.is_empty() {
            parts.push(self.street.clone());
        }
        if !self.city.is_empty() {
            parts.push(self.city.clone());
        }
        if !self.state.is_empty() {
            parts.push(self.state.clone());
        }
        if !self.zip.is_empty() {
            parts.push(self.zip.clone());
        }
        parts.join(" ")
    }
}

/// Parse `"123 Main St, Seattle, WA 98101"`-style addresses into fields.
/// Tolerant: missing segments yield empty fields rather than errors.
pub fn parse_address(input: &str) -> ParsedAddress {
    let expander = AbbrevExpander::with_defaults();
    let mut out = ParsedAddress::default();
    let segments: Vec<&str> = input.split(',').map(str::trim).collect();
    if segments.is_empty() {
        return out;
    }
    // Segment 1: [number] street...
    let street_part = BasicNormalizer.normalize(segments[0]);
    let mut toks = street_part.split_whitespace().peekable();
    if toks
        .peek()
        .is_some_and(|t| t.chars().all(|c| c.is_ascii_digit()))
    {
        out.number = toks.next().unwrap().to_string();
    }
    out.street = expander.normalize(&toks.collect::<Vec<_>>().join(" "));
    // Segment 2: city.
    if segments.len() > 1 {
        out.city = BasicNormalizer.normalize(segments[1]);
    }
    // Segment 3: state [zip].
    if segments.len() > 2 {
        let norm = BasicNormalizer.normalize(segments[2]);
        let mut toks = norm.split_whitespace();
        if let Some(state) = toks.next() {
            out.state = state.to_string();
        }
        if let Some(zip) = toks.next() {
            out.zip = zip.to_string();
        }
    }
    out
}

/// Normalizer facade over [`parse_address`], producing the canonical
/// one-line form.
pub struct AddressNormalizer;

impl Normalizer for AddressNormalizer {
    fn name(&self) -> &str {
        "address"
    }

    fn normalize(&self, input: &str) -> String {
        parse_address(input).canonical()
    }
}

/// Look up a built-in normalizer by flow-step name.
pub fn by_name(name: &str) -> Option<Box<dyn Normalizer>> {
    match name {
        "basic" => Some(Box::new(BasicNormalizer)),
        "abbrev" => Some(Box::new(AbbrevExpander::with_defaults())),
        "name" => Some(Box::new(NameStandardizer)),
        "address" => Some(Box::new(AddressNormalizer)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_normalization() {
        assert_eq!(
            BasicNormalizer.normalize("  ACME,   Inc.\t(West) "),
            "acme inc west"
        );
        assert_eq!(BasicNormalizer.normalize(""), "");
    }

    #[test]
    fn abbreviation_expansion() {
        let e = AbbrevExpander::with_defaults();
        assert_eq!(
            e.normalize("123 Main St. Apt 4"),
            "123 Main street apartment 4"
        );
        let mut custom = AbbrevExpander::empty();
        custom.add("GmbH", "gesellschaft");
        assert_eq!(custom.normalize("Acme GmbH"), "Acme gesellschaft");
    }

    #[test]
    fn name_standardization() {
        assert_eq!(NameStandardizer.normalize("Lovelace, Ada"), "ada lovelace");
        assert_eq!(
            NameStandardizer.normalize("Dr. Grace Hopper PhD"),
            "grace hopper"
        );
        assert_eq!(NameStandardizer.normalize("Alan Turing Jr."), "alan turing");
    }

    #[test]
    fn address_parsing_full() {
        let a = parse_address("123 Main St, Seattle, WA 98101");
        assert_eq!(a.number, "123");
        assert_eq!(a.street, "main street");
        assert_eq!(a.city, "seattle");
        assert_eq!(a.state, "wa");
        assert_eq!(a.zip, "98101");
        assert_eq!(a.canonical(), "123 main street seattle wa 98101");
    }

    #[test]
    fn address_parsing_partial() {
        let a = parse_address("Oak Ave");
        assert_eq!(a.number, "");
        assert_eq!(a.street, "oak avenue");
        assert_eq!(a.city, "");
        // Translation equivalence: split fields and a single field
        // canonicalize identically.
        let split = format!(
            "{} {} {}",
            parse_address("42 Pine Rd").canonical(),
            "",
            ""
        );
        let joined = parse_address("42 Pine Rd, , ").canonical();
        assert_eq!(split.trim(), joined);
    }

    #[test]
    fn registry_lookup() {
        assert!(by_name("basic").is_some());
        assert!(by_name("address").is_some());
        assert!(by_name("nope").is_none());
    }
}
