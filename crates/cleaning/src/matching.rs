//! Matching functions: deciding whether two values (or records) denote
//! the same real-world object — the paper's *object identity problem*.

use crate::record::Record;

/// Three-way match outcome. `Uncertain` pairs are what the data-mining
/// phase routes to a human.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchOutcome {
    Match(f64),
    Uncertain(f64),
    NonMatch(f64),
}

impl MatchOutcome {
    /// The underlying similarity score in [0, 1].
    pub fn score(&self) -> f64 {
        match self {
            MatchOutcome::Match(s) | MatchOutcome::Uncertain(s) | MatchOutcome::NonMatch(s) => *s,
        }
    }

    pub fn is_match(&self) -> bool {
        matches!(self, MatchOutcome::Match(_))
    }
}

/// A string similarity in [0, 1].
pub trait Matcher: Send + Sync {
    fn name(&self) -> &str;
    fn similarity(&self, a: &str, b: &str) -> f64;
}

// --- Levenshtein ---

/// Normalized Levenshtein similarity: `1 - dist / max_len`.
pub struct Levenshtein;

/// Raw edit distance with the classic two-row DP.
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

impl Matcher for Levenshtein {
    fn name(&self) -> &str {
        "levenshtein"
    }

    fn similarity(&self, a: &str, b: &str) -> f64 {
        let max = a.chars().count().max(b.chars().count());
        if max == 0 {
            return 1.0;
        }
        1.0 - levenshtein_distance(a, b) as f64 / max as f64
    }
}

// --- Jaro-Winkler ---

/// Jaro-Winkler similarity, the de-facto standard for short name fields.
pub struct JaroWinkler;

fn jaro(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut a_matched = vec![false; a.len()];
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == *ca {
                a_matched[i] = true;
                b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Classic transposition count: compare the matched characters of a
    // (in a-order) against the matched characters of b (in b-order);
    // half the number of positions that disagree. This formulation is
    // symmetric in a and b.
    let a_seq: Vec<char> = a
        .iter()
        .zip(&a_matched)
        .filter(|(_, m)| **m)
        .map(|(c, _)| *c)
        .collect();
    let b_seq: Vec<char> = b
        .iter()
        .zip(&b_matched)
        .filter(|(_, m)| **m)
        .map(|(c, _)| *c)
        .collect();
    let half_transpositions = a_seq
        .iter()
        .zip(b_seq.iter())
        .filter(|(x, y)| x != y)
        .count();
    let t = half_transpositions as f64 / 2.0;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

impl Matcher for JaroWinkler {
    fn name(&self) -> &str {
        "jaro_winkler"
    }

    fn similarity(&self, a: &str, b: &str) -> f64 {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        let j = jaro(&ac, &bc);
        // Winkler boost for common prefixes up to 4 chars.
        let prefix = ac
            .iter()
            .zip(bc.iter())
            .take(4)
            .take_while(|(x, y)| x == y)
            .count() as f64;
        (j + prefix * 0.1 * (1.0 - j)).min(1.0)
    }
}

// --- q-gram Jaccard ---

/// Jaccard similarity over character q-grams; robust to token
/// reordering. `q` is clamped to at least 1 at use.
pub struct QGramJaccard {
    pub q: usize,
}

impl Default for QGramJaccard {
    fn default() -> Self {
        QGramJaccard { q: 3 }
    }
}

fn qgrams(s: &str, q: usize) -> std::collections::HashSet<String> {
    let padded: Vec<char> = format!("{}{}{}", "#".repeat(q - 1), s, "#".repeat(q - 1))
        .chars()
        .collect();
    padded
        .windows(q)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

impl Matcher for QGramJaccard {
    fn name(&self) -> &str {
        "qgram_jaccard"
    }

    fn similarity(&self, a: &str, b: &str) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let q = self.q.max(1);
        let ga = qgrams(a, q);
        let gb = qgrams(b, q);
        let inter = ga.intersection(&gb).count() as f64;
        let union = ga.union(&gb).count() as f64;
        inter / union
    }
}

// --- Soundex ---

/// American Soundex code (letter + 3 digits).
pub fn soundex(s: &str) -> String {
    let letters: Vec<char> = s
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    if letters.is_empty() {
        return "0000".to_string();
    }
    fn code(c: char) -> Option<char> {
        match c {
            'B' | 'F' | 'P' | 'V' => Some('1'),
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => Some('2'),
            'D' | 'T' => Some('3'),
            'L' => Some('4'),
            'M' | 'N' => Some('5'),
            'R' => Some('6'),
            _ => None,
        }
    }
    let mut out = String::new();
    out.push(letters[0]);
    let mut last = code(letters[0]);
    for &c in &letters[1..] {
        let this = code(c);
        // H and W are transparent: they do not reset the run.
        if c == 'H' || c == 'W' {
            continue;
        }
        if let Some(d) = this {
            if Some(d) != last {
                out.push(d);
                if out.len() == 4 {
                    break;
                }
            }
        }
        last = this;
    }
    while out.len() < 4 {
        out.push('0');
    }
    out
}

/// Binary phonetic matcher based on [`soundex`].
pub struct SoundexMatcher;

impl Matcher for SoundexMatcher {
    fn name(&self) -> &str {
        "soundex"
    }

    fn similarity(&self, a: &str, b: &str) -> f64 {
        if soundex(a) == soundex(b) {
            1.0
        } else {
            0.0
        }
    }
}

// --- composite record matching ---

/// A weighted combination of per-field matchers, with match/uncertain
/// thresholds. This is the shape domain-specific customer matchers take.
pub struct CompositeMatcher {
    fields: Vec<(String, Box<dyn Matcher>, f64)>,
    pub match_threshold: f64,
    pub uncertain_threshold: f64,
}

impl CompositeMatcher {
    pub fn new(match_threshold: f64, uncertain_threshold: f64) -> CompositeMatcher {
        assert!(uncertain_threshold <= match_threshold);
        CompositeMatcher {
            fields: Vec::new(),
            match_threshold,
            uncertain_threshold,
        }
    }

    /// Weight a field with a matcher.
    pub fn field(mut self, name: &str, matcher: Box<dyn Matcher>, weight: f64) -> Self {
        self.fields.push((name.to_string(), matcher, weight));
        self
    }

    /// Weighted similarity of two records over the configured fields.
    /// Fields empty on both sides are skipped (re-weighting the rest).
    pub fn record_similarity(&self, a: &Record, b: &Record) -> f64 {
        let mut total_weight = 0.0;
        let mut total = 0.0;
        for (field, matcher, weight) in &self.fields {
            let va = a.get(field);
            let vb = b.get(field);
            if va.is_empty() && vb.is_empty() {
                continue;
            }
            total += matcher.similarity(va, vb) * weight;
            total_weight += weight;
        }
        if total_weight == 0.0 {
            0.0
        } else {
            total / total_weight
        }
    }

    /// Classify a record pair.
    pub fn classify(&self, a: &Record, b: &Record) -> MatchOutcome {
        let s = self.record_similarity(a, b);
        if s >= self.match_threshold {
            MatchOutcome::Match(s)
        } else if s >= self.uncertain_threshold {
            MatchOutcome::Uncertain(s)
        } else {
            MatchOutcome::NonMatch(s)
        }
    }

    /// A sensible default for person records: name-heavy with address
    /// support.
    pub fn default_person() -> CompositeMatcher {
        CompositeMatcher::new(0.85, 0.65)
            .field("name", Box::new(JaroWinkler), 0.6)
            .field("address", Box::new(QGramJaccard::default()), 0.3)
            .field("phone", Box::new(Levenshtein), 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("same", "same"), 0);
        assert!((Levenshtein.similarity("abc", "abc") - 1.0).abs() < 1e-9);
        assert!(Levenshtein.similarity("abc", "xyz") < 0.01);
    }

    #[test]
    fn jaro_winkler_prefix_boost() {
        let jw = JaroWinkler;
        assert!((jw.similarity("martha", "martha") - 1.0).abs() < 1e-9);
        let m = jw.similarity("martha", "marhta");
        assert!(m > 0.94 && m < 1.0, "{}", m);
        // Prefix agreement scores above suffix agreement.
        assert!(jw.similarity("prefixed", "prefixes") > jw.similarity("aprefixed", "bprefixed"));
        assert_eq!(jw.similarity("", ""), 1.0);
        assert_eq!(jw.similarity("a", ""), 0.0);
    }

    #[test]
    fn qgram_token_reorder_tolerance() {
        let q = QGramJaccard::default();
        let reordered = q.similarity("acme incorporated", "incorporated acme");
        let different = q.similarity("acme incorporated", "globex limited");
        assert!(reordered > different + 0.3);
    }

    #[test]
    fn soundex_codes() {
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex(""), "0000");
        assert_eq!(SoundexMatcher.similarity("Smith", "Smyth"), 1.0);
    }

    #[test]
    fn qgram_zero_q_is_clamped_not_panicking() {
        let q = QGramJaccard { q: 0 };
        let s = q.similarity("abc", "abd");
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn composite_classification() {
        let m = CompositeMatcher::default_person();
        let a = Record::new("a:1", "a")
            .with("name", "ada lovelace")
            .with("address", "123 main street seattle wa");
        let b = Record::new("b:1", "b")
            .with("name", "ada lovelace")
            .with("address", "123 main st seattle wa");
        assert!(m.classify(&a, &b).is_match());

        let c = Record::new("b:2", "b")
            .with("name", "charles babbage")
            .with("address", "9 analytical way london");
        assert!(matches!(m.classify(&a, &c), MatchOutcome::NonMatch(_)));
    }

    #[test]
    fn composite_skips_mutually_empty_fields() {
        let m = CompositeMatcher::new(0.9, 0.5)
            .field("name", Box::new(Levenshtein), 0.5)
            .field("phone", Box::new(Levenshtein), 0.5);
        let a = Record::new("a:1", "a").with("name", "ada");
        let b = Record::new("b:1", "b").with("name", "ada");
        // Phone empty on both sides → name alone decides.
        assert!((m.record_similarity(&a, &b) - 1.0).abs() < 1e-9);
    }
}
