//! The two-phase cleaning pipeline.
//!
//! "This necessitates breaking the cleansing process into two phases:
//! datamining and extraction." The **mining** phase runs interactively:
//! it classifies candidate pairs, auto-records the confident ones, and
//! surfaces `Uncertain` pairs for a human. The **extraction** phase runs
//! autonomously: past decisions are replayed from the concordance
//! database, confident classifications are applied, and residual
//! uncertain pairs are **trapped as exceptions** "to allow extraction to
//! continue with cleanup applied post-hoc when a human is available".

use crate::concordance::{ConcordanceDb, Decision};
use crate::lineage::{LineageLog, LineageOp};
use crate::matching::{CompositeMatcher, MatchOutcome};
use crate::merge_purge::UnionFind;
use crate::record::Record;
use nimble_trace::{MetricsRegistry, QueryCtx};

/// A candidate pair surfaced for disambiguation.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePair {
    pub left: String,
    pub right: String,
    pub score: f64,
}

/// Report of a mining run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Pairs auto-decided as matches.
    pub auto_matches: usize,
    /// Pairs auto-decided as non-matches.
    pub auto_nonmatches: usize,
    /// Pairs replayed from the concordance database.
    pub reused_decisions: usize,
    /// Pairs needing a human (mining) or trapped (extraction).
    pub pending: Vec<CandidatePair>,
    /// Pairwise comparisons performed (excluding concordance hits).
    pub comparisons: u64,
    /// Duplicate clusters over record ids (size ≥ 2 only).
    pub clusters: Vec<Vec<String>>,
    /// Trace id of the query this run served, when the pipeline ran
    /// under a query context (see `nimble_trace::QueryCtx`); `None`
    /// for standalone cleaning runs.
    pub trace_id: Option<u64>,
}

/// The configured pipeline: a blocking strategy plus a composite
/// matcher.
pub struct CleaningPipeline {
    pub matcher: CompositeMatcher,
    /// Field whose sorted order defines the neighborhood.
    pub blocking_field: String,
    /// Sorted-neighborhood window.
    pub window: usize,
}

impl CleaningPipeline {
    pub fn new(matcher: CompositeMatcher, blocking_field: &str, window: usize) -> Self {
        CleaningPipeline {
            matcher,
            blocking_field: blocking_field.to_string(),
            window: window.max(2),
        }
    }

    /// Candidate pairs by sorted neighborhood over the blocking field.
    fn candidates(&self, records: &[Record]) -> Vec<(usize, usize)> {
        let mut order: Vec<usize> = (0..records.len()).collect();
        order.sort_by_key(|&i| records[i].get(&self.blocking_field).to_string());
        let mut out = Vec::new();
        for wi in 0..order.len() {
            let hi = (wi + self.window).min(order.len());
            for wj in wi + 1..hi {
                out.push((order[wi], order[wj]));
            }
        }
        out
    }

    /// The interactive mining phase.
    pub fn mine(
        &self,
        records: &[Record],
        db: &mut ConcordanceDb,
        log: &mut LineageLog,
    ) -> PipelineReport {
        self.run(records, db, log, Phase::Mining)
    }

    /// The autonomous extraction phase.
    pub fn extract(
        &self,
        records: &[Record],
        db: &mut ConcordanceDb,
        log: &mut LineageLog,
    ) -> PipelineReport {
        self.run(records, db, log, Phase::Extraction)
    }

    fn run(
        &self,
        records: &[Record],
        db: &mut ConcordanceDb,
        log: &mut LineageLog,
        phase: Phase,
    ) -> PipelineReport {
        let mut report = PipelineReport::default();
        report.trace_id = QueryCtx::current().map(|c| c.trace_id.0);
        let mut uf = UnionFind::new(records.len());
        for (i, j) in self.candidates(records) {
            let (a, b) = (&records[i], &records[j]);
            // Replay recorded decisions first — this is the concordance
            // payoff the extraction phase depends on.
            if let Some(decision) = db.lookup(&a.id, &b.id) {
                report.reused_decisions += 1;
                if decision == Decision::SameObject {
                    uf.union(i, j);
                }
                continue;
            }
            report.comparisons += 1;
            match self.matcher.classify(a, b) {
                MatchOutcome::Match(s) => {
                    report.auto_matches += 1;
                    db.record_automatic(&a.id, &b.id, Decision::SameObject, "composite");
                    log.record(
                        LineageOp::Merge {
                            left: a.id.clone(),
                            right: b.id.clone(),
                        },
                        "system",
                    );
                    let _ = s;
                    uf.union(i, j);
                }
                MatchOutcome::NonMatch(_) => {
                    report.auto_nonmatches += 1;
                }
                MatchOutcome::Uncertain(s) => {
                    // Mining: queue for the human. Extraction: trap as an
                    // exception but keep going.
                    report.pending.push(CandidatePair {
                        left: a.id.clone(),
                        right: b.id.clone(),
                        score: s,
                    });
                    if phase == Phase::Extraction {
                        log.record(
                            LineageOp::Distinguish {
                                left: a.id.clone(),
                                right: b.id.clone(),
                            },
                            "exception-trap",
                        );
                    }
                }
            }
        }
        // Clusters of size ≥ 2.
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..records.len() {
            by_root.entry(uf.find(i)).or_default().push(i);
        }
        let mut clusters: Vec<Vec<String>> = by_root
            .into_values()
            .filter(|c| c.len() >= 2)
            .map(|c| c.iter().map(|&i| records[i].id.clone()).collect())
            .collect();
        clusters.sort();
        report.clusters = clusters;
        // Cleaning activity counters (process-global registry): runs,
        // comparisons, and — in the autonomous phase — trapped
        // exceptions awaiting post-hoc human cleanup.
        let reg = MetricsRegistry::global();
        reg.incr("cleaning.runs", 1);
        reg.incr("cleaning.comparisons", report.comparisons);
        reg.incr("cleaning.auto_matches", report.auto_matches as u64);
        reg.incr("cleaning.reused_decisions", report.reused_decisions as u64);
        if phase == Phase::Extraction {
            reg.incr("cleaning.exceptions", report.pending.len() as u64);
        }
        report
    }

    /// Apply a batch of human answers to pending pairs (the UI half of
    /// the mining loop).
    pub fn apply_human_decisions(
        db: &mut ConcordanceDb,
        log: &mut LineageLog,
        decisions: &[(CandidatePair, Decision)],
        who: &str,
    ) {
        for (pair, decision) in decisions {
            db.record_human(&pair.left, &pair.right, *decision, who);
            let op = match decision {
                Decision::SameObject => LineageOp::Merge {
                    left: pair.left.clone(),
                    right: pair.right.clone(),
                },
                Decision::DifferentObjects => LineageOp::Distinguish {
                    left: pair.left.clone(),
                    right: pair.right.clone(),
                },
            };
            log.record(op, who);
        }
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Phase {
    Mining,
    Extraction,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::JaroWinkler;

    fn pipeline() -> CleaningPipeline {
        let matcher = CompositeMatcher::new(0.97, 0.90)
            .field("name", Box::new(JaroWinkler), 1.0);
        CleaningPipeline::new(matcher, "name", 4)
    }

    fn records() -> Vec<Record> {
        vec![
            Record::new("a:1", "a").with("name", "ada lovelace"),
            Record::new("b:1", "b").with("name", "ada lovelace"),
            // Similar but not identical → uncertain zone.
            Record::new("c:1", "c").with("name", "ada loveless"),
            Record::new("a:2", "a").with("name", "zz completely different"),
        ]
    }

    #[test]
    fn mining_queues_uncertain_pairs() {
        let mut db = ConcordanceDb::new();
        let mut log = LineageLog::new();
        let report = pipeline().mine(&records(), &mut db, &mut log);
        assert_eq!(report.auto_matches, 1);
        // lovelace/loveless pairs land in the uncertain band.
        assert_eq!(report.pending.len(), 2);
        assert_eq!(report.clusters.len(), 1);
        assert_eq!(report.clusters[0], vec!["a:1", "b:1"]);
    }

    #[test]
    fn human_decisions_are_replayed_in_extraction() {
        let mut db = ConcordanceDb::new();
        let mut log = LineageLog::new();
        let p = pipeline();
        let mining = p.mine(&records(), &mut db, &mut log);

        // Human resolves every pending pair as a match.
        let answers: Vec<(CandidatePair, Decision)> = mining
            .pending
            .iter()
            .cloned()
            .map(|pair| (pair, Decision::SameObject))
            .collect();
        CleaningPipeline::apply_human_decisions(&mut db, &mut log, &answers, "denise");

        // Extraction now runs with zero pending pairs and reuses stored
        // decisions instead of re-deciding.
        let extraction = p.extract(&records(), &mut db, &mut log);
        assert!(extraction.pending.is_empty());
        assert!(extraction.reused_decisions >= answers.len());
        // ada loveless now clusters with the other two.
        assert_eq!(extraction.clusters[0].len(), 3);
    }

    #[test]
    fn extraction_traps_exceptions_and_continues() {
        let mut db = ConcordanceDb::new();
        let mut log = LineageLog::new();
        let report = pipeline().extract(&records(), &mut db, &mut log);
        // Exceptions listed, logged as provisional distinctions.
        assert!(!report.pending.is_empty());
        assert!(log
            .entries()
            .iter()
            .any(|e| e.actor == "exception-trap"));
        // The confident match still went through.
        assert_eq!(report.auto_matches, 1);
    }

    #[test]
    fn cleaning_activity_is_counted() {
        // The global registry is shared across parallel tests, so assert
        // on a window (diff) and with ≥.
        let before = MetricsRegistry::global().snapshot();
        let mut db = ConcordanceDb::new();
        let mut log = LineageLog::new();
        let report = pipeline().extract(&records(), &mut db, &mut log);
        let window = MetricsRegistry::global().snapshot().diff(&before);
        assert!(window.counter("cleaning.runs") >= 1);
        assert!(window.counter("cleaning.exceptions") >= report.pending.len() as u64);
        assert!(window.counter("cleaning.lineage.entries") >= 1);
    }

    #[test]
    fn runs_are_tagged_with_the_current_trace_id() {
        let mut db = ConcordanceDb::new();
        let mut log = LineageLog::new();
        let p = pipeline();
        let standalone = p.mine(&records(), &mut db, &mut log);
        assert_eq!(standalone.trace_id, None);
        let ctx = QueryCtx::new("engine-0");
        let _g = ctx.enter();
        let under_query = p.mine(&records(), &mut db, &mut log);
        assert_eq!(under_query.trace_id, Some(ctx.trace_id.0));
    }

    #[test]
    fn rerun_is_cheaper_with_concordance() {
        let mut db = ConcordanceDb::new();
        let mut log = LineageLog::new();
        let p = pipeline();
        let first = p.extract(&records(), &mut db, &mut log);
        let second = p.extract(&records(), &mut db, &mut log);
        // Auto-matches were stored; only uncertain pairs are re-compared.
        assert!(second.comparisons < first.comparisons);
    }
}
