//! Property-based tests for the cleaning layer: metric laws for the
//! matchers, normalizer idempotence, and union-find invariants.

use nimble_cleaning::matching::{
    levenshtein_distance, soundex, JaroWinkler, Levenshtein, Matcher, QGramJaccard,
};
use nimble_cleaning::merge_purge::UnionFind;
use nimble_cleaning::normalize::{
    AbbrevExpander, AddressNormalizer, BasicNormalizer, NameStandardizer, Normalizer,
};
use proptest::prelude::*;

proptest! {
    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(a in "[ab]{0,8}", b in "[ab]{0,8}", c in "[ab]{0,8}") {
        prop_assert_eq!(levenshtein_distance(&a, &a), 0);
        prop_assert_eq!(levenshtein_distance(&a, &b), levenshtein_distance(&b, &a));
        prop_assert!(
            levenshtein_distance(&a, &c)
                <= levenshtein_distance(&a, &b) + levenshtein_distance(&b, &c)
        );
        if a != b {
            prop_assert!(levenshtein_distance(&a, &b) > 0);
        }
    }

    /// Every similarity stays in [0, 1], is symmetric, and scores
    /// identity as 1.
    #[test]
    fn similarities_are_bounded_and_symmetric(a in "[a-c ]{0,10}", b in "[a-c ]{0,10}") {
        let matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(Levenshtein),
            Box::new(JaroWinkler),
            Box::new(QGramJaccard::default()),
        ];
        for m in &matchers {
            let s = m.similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{} out of range for {}", s, m.name());
            let s2 = m.similarity(&b, &a);
            prop_assert!((s - s2).abs() < 1e-9, "{} asymmetric", m.name());
            prop_assert!((m.similarity(&a, &a) - 1.0).abs() < 1e-9);
        }
    }

    /// An edit of one character never drops normalized Levenshtein
    /// similarity below (len-1)/len.
    #[test]
    fn single_typo_bounded_damage(s in "[a-z]{2,12}", pos in 0usize..12) {
        let chars: Vec<char> = s.chars().collect();
        let pos = pos % chars.len();
        let mut corrupted = chars.clone();
        corrupted[pos] = if corrupted[pos] == 'z' { 'a' } else { 'z' };
        let corrupted: String = corrupted.into_iter().collect();
        prop_assert!(levenshtein_distance(&s, &corrupted) <= 1);
        let sim = Levenshtein.similarity(&s, &corrupted);
        prop_assert!(sim >= (chars.len() as f64 - 1.0) / chars.len() as f64 - 1e-9);
    }

    /// Soundex always yields letter + 3 digits and is case-insensitive.
    #[test]
    fn soundex_shape(s in "[a-zA-Z]{1,12}") {
        let code = soundex(&s);
        prop_assert_eq!(code.len(), 4);
        prop_assert!(code.chars().next().unwrap().is_ascii_uppercase());
        prop_assert!(code.chars().skip(1).all(|c| c.is_ascii_digit()));
        prop_assert_eq!(soundex(&s.to_uppercase()), code);
    }

    /// Normalizers are idempotent: normalize(normalize(x)) ==
    /// normalize(x). The address normalizer re-parses its own canonical
    /// form (comma structure is gone), so it is only *eventually*
    /// idempotent — it must reach a fixpoint by the second application.
    #[test]
    fn normalizers_idempotent(s in "[a-zA-Z0-9 ,.]{0,24}") {
        let strict: Vec<Box<dyn Normalizer>> = vec![
            Box::new(BasicNormalizer),
            Box::new(AbbrevExpander::with_defaults()),
            Box::new(NameStandardizer),
        ];
        for n in &strict {
            let once = n.normalize(&s);
            let twice = n.normalize(&once);
            prop_assert_eq!(&twice, &once, "{} not idempotent on {:?}", n.name(), s);
        }
        let addr = AddressNormalizer;
        let twice = addr.normalize(&addr.normalize(&s));
        let thrice = addr.normalize(&twice);
        prop_assert_eq!(&thrice, &twice, "address does not converge on {:?}", s);
    }

    /// Union-find: union is commutative/associative in effect; find is
    /// consistent with the generated edge set's connected components.
    #[test]
    fn union_find_components(edges in proptest::collection::vec((0usize..12, 0usize..12), 0..24)) {
        let n = 12;
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        // Reference components by BFS.
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut queue = vec![start];
            comp[start] = next;
            while let Some(x) = queue.pop() {
                for &y in &adj[x] {
                    if comp[y] == usize::MAX {
                        comp[y] = next;
                        queue.push(y);
                    }
                }
            }
            next += 1;
        }
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(uf.find(a) == uf.find(b), comp[a] == comp[b]);
            }
        }
    }
}
