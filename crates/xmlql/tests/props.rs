//! Robustness properties for the XML-QL front end: the lexer and parser
//! must reject garbage with errors, never panics, and valid queries
//! survive whitespace perturbation.

use nimble_xmlql::{compile, parse_query};
use proptest::prelude::*;

proptest! {
    /// Arbitrary input never panics the front end.
    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = compile(&input);
    }

    /// Garbage assembled from the language's own tokens never panics.
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("WHERE".to_string()),
            Just("CONSTRUCT".to_string()),
            Just("IN".to_string()),
            Just("ELEMENT_AS".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            Just("</".to_string()),
            Just("/>".to_string()),
            Just("$x".to_string()),
            Just("\"s\"".to_string()),
            Just("1995".to_string()),
            Just(",".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("ORDER-BY".to_string()),
            Just("a".to_string()),
        ],
        0..20,
    )) {
        let input = tokens.join(" ");
        let _ = compile(&input);
    }

    /// Whitespace between tokens never changes parses.
    #[test]
    fn whitespace_insensitive(pad in "[ \\t\\n]{0,4}") {
        let compact = r#"WHERE <a><b>$x</b></a> IN "s", $x > 1 CONSTRUCT <o>$x</o> ORDER-BY $x"#;
        let padded = compact
            .replace(' ', &format!(" {}", pad));
        let a = parse_query(compact).unwrap();
        let b = parse_query(&padded).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Every structurally-generated valid query parses and re-parses.
    /// Keywords (IN, AND, NOT, …) are reserved and cannot be element
    /// names in this dialect, so the generator avoids them.
    #[test]
    fn generated_queries_parse(
        fields in proptest::collection::vec(
            "[a-z]{1,6}".prop_filter("not a keyword", |f| {
                !matches!(
                    f.as_str(),
                    "where" | "in" | "and" | "or" | "not" | "like" | "asc" | "desc"
                )
            }),
            1..4,
        ),
        source in "[a-z]{1,8}",
        threshold in any::<i64>(),
        desc in any::<bool>(),
    ) {
        let pattern_fields: String = fields
            .iter()
            .enumerate()
            .map(|(i, f)| format!("<{f}>$v{i}</{f}>", f = f, i = i))
            .collect();
        let construct_fields: String = (0..fields.len())
            .map(|i| format!("<o{i}>$v{i}</o{i}>", i = i))
            .collect();
        let text = format!(
            "WHERE <row>{}</row> IN \"{}\", $v0 > {} CONSTRUCT <out>{}</out> ORDER-BY $v0{}",
            pattern_fields,
            source,
            threshold,
            construct_fields,
            if desc { " DESC" } else { "" },
        );
        let (q, info) = compile(&text).unwrap();
        prop_assert_eq!(info.bound_vars.len(), fields.len());
        prop_assert_eq!(q.order_by[0].descending, desc);
        // Display round-trips to the identical AST.
        let printed = q.to_string();
        let reparsed = parse_query(&printed).unwrap();
        prop_assert_eq!(reparsed, q);
    }
}
