//! Pretty-printing queries back to XML-QL text.
//!
//! `Display` for [`Query`] produces canonical text that re-parses to the
//! same AST (`parse ∘ display = id`, checked by a property test). Used
//! for logging, EXPLAIN output, and storing view definitions
//! canonically.

use crate::ast::*;
use std::fmt::{self, Write};

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("WHERE ")?;
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match c {
                Condition::Pattern(pb) => {
                    write!(f, "{}", pb.pattern)?;
                    match &pb.source {
                        SourceRef::Named(n) => write!(f, " IN \"{}\"", n)?,
                        SourceRef::Var(v) => write!(f, " IN ${}", v)?,
                    }
                }
                Condition::Predicate(e) => write!(f, "{}", e)?,
            }
        }
        write!(f, " CONSTRUCT {}", self.construct)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER-BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "${}", k.var)?;
                if k.descending {
                    f.write_str(" DESC")?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_char('<')?;
        match &self.tag {
            TagPattern::Name(n) => f.write_str(n)?,
            TagPattern::Wildcard => f.write_char('*')?,
            TagPattern::Descendant(n) => write!(f, "**{}", n)?,
            TagPattern::ClosurePlus(n) => write!(f, "{}+", n)?,
        }
        for a in &self.attrs {
            write!(f, " {}={}", a.name, a.value)?;
        }
        if self.content.is_empty() {
            f.write_str("/>")?;
        } else {
            f.write_char('>')?;
            for (i, c) in self.content.iter().enumerate() {
                if i > 0 {
                    f.write_char(' ')?;
                }
                match c {
                    PatternContent::Var(v) => write!(f, "${}", v)?,
                    PatternContent::Lit(a) => write!(f, "{}", lit(a))?,
                    PatternContent::Nested(p) => write!(f, "{}", p)?,
                }
            }
            f.write_str("</>")?;
        }
        if let Some(v) = &self.element_as {
            write!(f, " ELEMENT_AS ${}", v)?;
        }
        if let Some(v) = &self.content_as {
            write!(f, " CONTENT_AS ${}", v)?;
        }
        Ok(())
    }
}

impl fmt::Display for PatternValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternValue::Var(v) => write!(f, "${}", v),
            PatternValue::Lit(a) => f.write_str(&lit(a)),
        }
    }
}

/// Render an atomic as an XML-QL literal token.
fn lit(a: &nimble_xml::Atomic) -> String {
    use nimble_xml::Atomic;
    match a {
        Atomic::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Atomic::Sym(s) => {
            let s = s.as_str();
            format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
        }
        Atomic::Int(i) => i.to_string(),
        Atomic::Float(x) => format!("{:?}", x),
        Atomic::Bool(b) => b.to_string(),
        Atomic::Null => "null".to_string(),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "${}", v),
            Expr::Lit(a) => f.write_str(&lit(a)),
            // Fully parenthesized so precedence survives the round trip.
            Expr::Binary(op, l, r) => write!(f, "({} {} {})", l, op, r),
            Expr::Not(e) => write!(f, "(NOT {})", e),
            Expr::Neg(e) => write!(f, "(-{})", e),
            Expr::Call(name, args) => {
                write!(f, "{}(", name)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", a)?;
                }
                f.write_char(')')
            }
        }
    }
}

impl fmt::Display for ElementTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}", self.tag)?;
        if let Some(sk) = &self.skolem {
            write!(f, " ID={}(", sk.func)?;
            for (i, a) in sk.args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "${}", a)?;
            }
            f.write_char(')')?;
        }
        for (name, value) in &self.attrs {
            match value {
                TemplateValue::Var(v) => write!(f, " {}=${}", name, v)?,
                TemplateValue::Lit(s) => write!(
                    f,
                    " {}=\"{}\"",
                    name,
                    s.replace('\\', "\\\\").replace('"', "\\\"")
                )?,
            }
        }
        if self.children.is_empty() {
            return f.write_str("/>");
        }
        f.write_char('>')?;
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                f.write_char(' ')?;
            }
            match c {
                TemplateNode::Element(e) => write!(f, "{}", e)?,
                TemplateNode::Var(v) => write!(f, "${}", v)?,
                TemplateNode::Text(s) => write!(
                    f,
                    "\"{}\"",
                    s.replace('\\', "\\\\").replace('"', "\\\"")
                )?,
                TemplateNode::Subquery(q) => write!(f, "{{ {} }}", q)?,
                TemplateNode::Agg { func, var } => {
                    let name = match func {
                        AggName::Count => "count",
                        AggName::Sum => "sum",
                        AggName::Min => "min",
                        AggName::Max => "max",
                        AggName::Avg => "avg",
                        AggName::Collect => "collect",
                    };
                    match var {
                        Some(v) => write!(f, "{}(${})", name, v)?,
                        None => write!(f, "{}()", name)?,
                    }
                }
            }
        }
        write!(f, "</{}>", self.tag)
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_query;

    /// parse(display(parse(q))) == parse(q) across the dialect surface.
    #[test]
    fn display_roundtrips() {
        let queries = [
            r#"WHERE <bib><book year=$y><title>$t</title></book></bib> IN "books",
               $y > 1995 AND contains(lower($t), "x")
               CONSTRUCT <r><t>$t</t></r> ORDER-BY $y DESC, $t"#,
            r#"WHERE <row lang="en" n=2><a>$x</a></row> IN "s", NOT $x = 1 OR -$x < 3
               CONSTRUCT <o ID=F($x)><v>$x</v><n>count()</n><s>sum($x)</s></o>"#,
            r#"WHERE <**leaf>$v</> ELEMENT_AS $e CONTENT_AS $c IN "d",
                     <part+>$p</> IN $e
               CONSTRUCT <out kind="x">$v "lit"
                  WHERE <i>$q</i> IN $e CONSTRUCT <q>$q</q>
               </out>"#,
            r#"WHERE <a><b>"text"</b><c>3.5</c></a> IN "d" CONSTRUCT <o/>"#,
        ];
        for q in queries {
            let ast = parse_query(q).unwrap();
            let printed = ast.to_string();
            let reparsed = parse_query(&printed)
                .unwrap_or_else(|e| panic!("printed form failed to parse: {}\n{}", e, printed));
            assert_eq!(reparsed, ast, "round trip changed AST for:\n{}", printed);
        }
    }
}
