//! Abstract syntax of the XML-QL dialect.

use nimble_xml::Atomic;
use std::fmt;

/// A complete query: `WHERE conditions CONSTRUCT template [ORDER-BY keys]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub conditions: Vec<Condition>,
    pub construct: ElementTemplate,
    pub order_by: Vec<OrderKey>,
}

/// One comma-separated item of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `pattern IN source` — match a tree pattern against a source.
    Pattern(PatternBinding),
    /// A boolean expression over bound variables.
    Predicate(Expr),
}

/// A pattern together with the source it matches against.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternBinding {
    pub pattern: Pattern,
    pub source: SourceRef,
}

/// Where a pattern's matching starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceRef {
    /// `IN "orders"` — a registered collection, document, or mediated view.
    Named(String),
    /// `IN $e` — navigate inside an element bound by an earlier pattern.
    Var(String),
}

/// An element tree pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    pub tag: TagPattern,
    pub attrs: Vec<AttrPattern>,
    pub content: Vec<PatternContent>,
    /// `ELEMENT_AS $e` — bind the matched element node.
    pub element_as: Option<String>,
    /// `CONTENT_AS $c` — bind the element's typed content.
    pub content_as: Option<String>,
}

/// How a pattern's tag matches element names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagPattern {
    /// Exact element name.
    Name(String),
    /// `*` — any element.
    Wildcard,
    /// `**name` — an element with this name at any depth below the
    /// context (regular-path shorthand).
    Descendant(String),
    /// `name+` — one or more levels of nesting through elements of this
    /// name (recursion over recursive schemas, e.g. `<part+>`).
    ClosurePlus(String),
}

/// An attribute pattern: `name=$var` binds, `name="lit"` constrains.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrPattern {
    pub name: String,
    pub value: PatternValue,
}

/// The value side of an attribute or content position in a pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternValue {
    Var(String),
    Lit(Atomic),
}

/// One content item of an element pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternContent {
    /// `$v` — bind the element's typed content.
    Var(String),
    /// `"text"` — the element's content must equal this literal.
    Lit(Atomic),
    /// A nested element pattern.
    Nested(Pattern),
}

/// Scalar expressions in predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Var(String),
    Lit(Atomic),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Neg(Box<Expr>),
    /// `f($x, 1, "s")` — a call into the engine's function registry.
    Call(String, Vec<Expr>),
}

/// Binary operators, loosest-binding first in the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// SQL-style pattern match with `%`/`_` wildcards.
    Like,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Like => "LIKE",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        };
        f.write_str(s)
    }
}

/// A CONSTRUCT element template.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementTemplate {
    pub tag: String,
    /// `ID=F($x,$y)` — Skolem grouping: one output element per distinct
    /// argument tuple; children accumulate across bindings.
    pub skolem: Option<SkolemId>,
    pub attrs: Vec<(String, TemplateValue)>,
    pub children: Vec<TemplateNode>,
}

/// Skolem function application used for grouping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkolemId {
    pub func: String,
    pub args: Vec<String>,
}

/// An attribute value in a template.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateValue {
    Var(String),
    Lit(String),
}

/// One content item of a template.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateNode {
    Element(ElementTemplate),
    /// `$v` — splice the variable's value (element nodes are deep-copied,
    /// atomics become text).
    Var(String),
    /// Quoted literal text.
    Text(String),
    /// A nested `WHERE … CONSTRUCT …` correlated with the outer bindings.
    Subquery(Box<Query>),
    /// `sum($t)` — an aggregate over the tuples of the enclosing
    /// Skolem-grouped element (dialect extension: the paper claims
    /// "general query language features … equivalent to a 'standard'
    /// SQL query engine", which includes aggregation). `count()` takes
    /// no argument and counts the group's tuples.
    Agg { func: AggName, var: Option<String> },
}

/// Aggregate functions usable in CONSTRUCT templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    Collect,
}

impl AggName {
    /// Parse an aggregate name (lowercase) as used in templates.
    pub fn parse(name: &str) -> Option<AggName> {
        Some(match name {
            "count" => AggName::Count,
            "sum" => AggName::Sum,
            "min" => AggName::Min,
            "max" => AggName::Max,
            "avg" => AggName::Avg,
            "collect" => AggName::Collect,
            _ => return None,
        })
    }
}

/// A sort key of the ORDER-BY extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    pub var: String,
    pub descending: bool,
}

impl Pattern {
    /// Variables this pattern (recursively) binds, in syntactic order.
    pub fn bound_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_bound(&mut out);
        out
    }

    fn collect_bound(&self, out: &mut Vec<String>) {
        for a in &self.attrs {
            if let PatternValue::Var(v) = &a.value {
                out.push(v.clone());
            }
        }
        for c in &self.content {
            match c {
                PatternContent::Var(v) => out.push(v.clone()),
                PatternContent::Nested(p) => p.collect_bound(out),
                PatternContent::Lit(_) => {}
            }
        }
        if let Some(v) = &self.element_as {
            out.push(v.clone());
        }
        if let Some(v) = &self.content_as {
            out.push(v.clone());
        }
    }
}

impl Expr {
    /// Variables referenced anywhere in the expression.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::Lit(_) => {}
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_vars(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }
}

impl ElementTemplate {
    /// Variables referenced by this template, not descending into
    /// subqueries (their own WHERE clauses may rebind).
    pub fn direct_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(sk) = &self.skolem {
            out.extend(sk.args.iter().cloned());
        }
        for (_, v) in &self.attrs {
            if let TemplateValue::Var(name) = v {
                out.push(name.clone());
            }
        }
        for c in &self.children {
            match c {
                TemplateNode::Element(e) => out.extend(e.direct_vars()),
                TemplateNode::Var(v) => out.push(v.clone()),
                TemplateNode::Agg { var: Some(v), .. } => out.push(v.clone()),
                TemplateNode::Agg { var: None, .. }
                | TemplateNode::Text(_)
                | TemplateNode::Subquery(_) => {}
            }
        }
        out
    }

    /// All nested subqueries directly inside this template tree.
    pub fn subqueries(&self) -> Vec<&Query> {
        let mut out = Vec::new();
        self.collect_subqueries(&mut out);
        out
    }

    fn collect_subqueries<'a>(&'a self, out: &mut Vec<&'a Query>) {
        for c in &self.children {
            match c {
                TemplateNode::Element(e) => e.collect_subqueries(out),
                TemplateNode::Subquery(q) => out.push(q),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_bound_vars_in_order() {
        let p = Pattern {
            tag: TagPattern::Name("book".into()),
            attrs: vec![AttrPattern {
                name: "year".into(),
                value: PatternValue::Var("y".into()),
            }],
            content: vec![PatternContent::Nested(Pattern {
                tag: TagPattern::Name("title".into()),
                attrs: vec![],
                content: vec![PatternContent::Var("t".into())],
                element_as: None,
                content_as: None,
            })],
            element_as: Some("e".into()),
            content_as: None,
        };
        assert_eq!(p.bound_vars(), vec!["y", "t", "e"]);
    }

    #[test]
    fn expr_vars() {
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Binary(
                BinOp::Gt,
                Box::new(Expr::Var("y".into())),
                Box::new(Expr::Lit(Atomic::Int(1995))),
            )),
            Box::new(Expr::Call("contains".into(), vec![Expr::Var("t".into())])),
        );
        assert_eq!(e.vars(), vec!["y", "t"]);
    }
}
