//! Tokenizer for the XML-QL dialect.
//!
//! The language mixes tag-like syntax (`<book year=$y>`) with expression
//! syntax (`$y > 1995`), so `<` is ambiguous: after a tag context it is a
//! comparison, before an identifier at a condition boundary it opens a
//! pattern. The lexer stays context-free by emitting `Lt` for every bare
//! `<` and letting the parser decide; the compound tokens `</`, `/>`,
//! `<=` are resolved here.

use std::fmt;

/// A token with its position (line, column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Keywords (case-insensitive in source).
    Where,
    In,
    Construct,
    OrderBy,
    ElementAs,
    ContentAs,
    And,
    Or,
    Not,
    Like,
    Asc,
    Desc,
    // Identifiers & literals.
    Ident(String),
    Var(String),
    Str(String),
    Int(i64),
    Float(f64),
    // Punctuation.
    Lt,         // <
    Gt,         // >
    LtSlash,    // </
    SlashGt,    // />
    Le,         // <=
    Ge,         // >=
    Eq,         // =
    Ne,         // != or <>
    Plus,
    Minus,
    StarTok,    // *
    Slash,      // /
    SlashSlash, // //
    Percent,
    Comma,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Where => write!(f, "WHERE"),
            In => write!(f, "IN"),
            Construct => write!(f, "CONSTRUCT"),
            OrderBy => write!(f, "ORDER-BY"),
            ElementAs => write!(f, "ELEMENT_AS"),
            ContentAs => write!(f, "CONTENT_AS"),
            And => write!(f, "AND"),
            Or => write!(f, "OR"),
            Not => write!(f, "NOT"),
            Like => write!(f, "LIKE"),
            Asc => write!(f, "ASC"),
            Desc => write!(f, "DESC"),
            Ident(s) => write!(f, "{}", s),
            Var(s) => write!(f, "${}", s),
            Str(s) => write!(f, "{:?}", s),
            Int(i) => write!(f, "{}", i),
            Float(x) => write!(f, "{}", x),
            Lt => write!(f, "<"),
            Gt => write!(f, ">"),
            LtSlash => write!(f, "</"),
            SlashGt => write!(f, "/>"),
            Le => write!(f, "<="),
            Ge => write!(f, ">="),
            Eq => write!(f, "="),
            Ne => write!(f, "!="),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            StarTok => write!(f, "*"),
            Slash => write!(f, "/"),
            SlashSlash => write!(f, "//"),
            Percent => write!(f, "%"),
            Comma => write!(f, ","),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            Eof => write!(f, "<eof>"),
        }
    }
}

/// A tokenization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub line: usize,
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}
impl std::error::Error for LexError {}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>, line: usize, col: usize) -> LexError {
        LexError {
            message: message.into(),
            line,
            col,
        }
    }
}

/// Tokenize the whole input; the result always ends with `Eof`.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        chars: input.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();

    while let Some(ch) = lx.peek() {
        let (l, c) = (lx.line, lx.col);
        let mut push = |kind: TokenKind| {
            tokens.push(Token {
                kind,
                line: l,
                col: c,
            })
        };
        match ch {
            ' ' | '\t' | '\r' | '\n' => {
                lx.bump();
            }
            '#' => {
                while lx.peek().is_some_and(|d| d != '\n') {
                    lx.bump();
                }
            }
            '<' => {
                lx.bump();
                match lx.peek() {
                    Some('/') => {
                        lx.bump();
                        push(TokenKind::LtSlash);
                    }
                    Some('=') => {
                        lx.bump();
                        push(TokenKind::Le);
                    }
                    Some('>') => {
                        lx.bump();
                        push(TokenKind::Ne);
                    }
                    _ => push(TokenKind::Lt),
                }
            }
            '>' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    push(TokenKind::Ge);
                } else {
                    push(TokenKind::Gt);
                }
            }
            '/' => {
                lx.bump();
                match lx.peek() {
                    Some('>') => {
                        lx.bump();
                        push(TokenKind::SlashGt);
                    }
                    Some('/') => {
                        lx.bump();
                        push(TokenKind::SlashSlash);
                    }
                    _ => push(TokenKind::Slash),
                }
            }
            '!' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    push(TokenKind::Ne);
                } else {
                    return Err(lx.err("unexpected '!'", l, c));
                }
            }
            '=' => {
                lx.bump();
                push(TokenKind::Eq);
            }
            '+' => {
                lx.bump();
                push(TokenKind::Plus);
            }
            '-' => {
                lx.bump();
                push(TokenKind::Minus);
            }
            '*' => {
                lx.bump();
                push(TokenKind::StarTok);
            }
            '%' => {
                lx.bump();
                push(TokenKind::Percent);
            }
            ',' => {
                lx.bump();
                push(TokenKind::Comma);
            }
            '(' => {
                lx.bump();
                push(TokenKind::LParen);
            }
            ')' => {
                lx.bump();
                push(TokenKind::RParen);
            }
            '{' => {
                lx.bump();
                push(TokenKind::LBrace);
            }
            '}' => {
                lx.bump();
                push(TokenKind::RBrace);
            }
            '$' => {
                lx.bump();
                let mut name = String::new();
                while lx.peek().is_some_and(is_ident_char) {
                    name.push(lx.bump().unwrap());
                }
                if name.is_empty() {
                    return Err(lx.err("expected variable name after '$'", l, c));
                }
                push(TokenKind::Var(name));
            }
            quote @ ('"' | '\'') => {
                lx.bump();
                let mut s = String::new();
                loop {
                    match lx.peek() {
                        None => return Err(lx.err("unterminated string literal", l, c)),
                        Some(d) if d == quote => {
                            lx.bump();
                            break;
                        }
                        Some('\\') => {
                            lx.bump();
                            match lx.bump() {
                                None => return Err(lx.err("dangling escape", l, c)),
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some(other) => s.push(other),
                            }
                        }
                        Some(d) => {
                            s.push(d);
                            lx.bump();
                        }
                    }
                }
                push(TokenKind::Str(s));
            }
            d if d.is_ascii_digit() => {
                let mut text = String::new();
                while lx.peek().is_some_and(|x| x.is_ascii_digit()) {
                    text.push(lx.bump().unwrap());
                }
                let mut is_float = false;
                if lx.peek() == Some('.') && lx.peek2().is_some_and(|x| x.is_ascii_digit()) {
                    is_float = true;
                    text.push(lx.bump().unwrap());
                    while lx.peek().is_some_and(|x| x.is_ascii_digit()) {
                        text.push(lx.bump().unwrap());
                    }
                }
                if is_float {
                    push(TokenKind::Float(text.parse().unwrap()));
                } else {
                    match text.parse() {
                        Ok(i) => push(TokenKind::Int(i)),
                        Err(_) => return Err(lx.err("integer literal overflows i64", l, c)),
                    }
                }
            }
            a if is_ident_start(a) => {
                let mut word = String::new();
                while lx.peek().is_some_and(is_ident_char) {
                    word.push(lx.bump().unwrap());
                }
                let kind = match word.to_ascii_uppercase().as_str() {
                    "WHERE" => TokenKind::Where,
                    "IN" => TokenKind::In,
                    "CONSTRUCT" => TokenKind::Construct,
                    // ORDER-BY lexes as Ident("ORDER") Minus Ident("BY");
                    // the parser also accepts that three-token spelling.
                    "ORDER_BY" => TokenKind::OrderBy,
                    "ELEMENT_AS" => TokenKind::ElementAs,
                    "CONTENT_AS" => TokenKind::ContentAs,
                    "AND" => TokenKind::And,
                    "OR" => TokenKind::Or,
                    "NOT" => TokenKind::Not,
                    "LIKE" => TokenKind::Like,
                    "ASC" => TokenKind::Asc,
                    "DESC" => TokenKind::Desc,
                    _ => TokenKind::Ident(word),
                };
                push(kind);
            }
            other => {
                return Err(lx.err(format!("unexpected character {:?}", other), l, c));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line: lx.line,
        col: lx.col,
    });
    Ok(tokens)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == ':' || c == '.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_query_tokens() {
        let ks = kinds("WHERE <book year=$y/> IN \"bib\", $y > 1995 CONSTRUCT <r/>");
        assert!(ks.contains(&TokenKind::Where));
        assert!(ks.contains(&TokenKind::Var("y".into())));
        assert!(ks.contains(&TokenKind::Str("bib".into())));
        assert!(ks.contains(&TokenKind::Int(1995)));
        assert!(ks.contains(&TokenKind::SlashGt));
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            kinds("<= >= != <> </ /> //")[..7],
            [
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::LtSlash,
                TokenKind::SlashGt,
                TokenKind::SlashSlash,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\"b\n" 'c''d'"#),
            vec![
                TokenKind::Str("a\"b\n".into()),
                TokenKind::Str("c".into()),
                TokenKind::Str("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("12 3.5"),
            vec![TokenKind::Int(12), TokenKind::Float(3.5), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("WHERE # a comment\nIN"),
            vec![TokenKind::Where, TokenKind::In, TokenKind::Eof]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("where construct element_as"),
            vec![
                TokenKind::Where,
                TokenKind::Construct,
                TokenKind::ElementAs,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn variable_with_dots_and_digits() {
        assert_eq!(
            kinds("$a1.b_c"),
            vec![TokenKind::Var("a1.b_c".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn error_positions() {
        let err = tokenize("WHERE\n  ^").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
    }
}
