//! # nimble-xmlql
//!
//! An XML-QL query-language front end: lexer, recursive-descent parser,
//! AST, and semantic analysis.
//!
//! XML-QL (Deutsch, Fernández, Florescu, Levy, Suciu — W3C note, 1998) was
//! "the only existing expressive query language for XML" when the Nimble
//! system was designed, and is the language the paper's product supports.
//! This crate implements the core of that language as a clearly documented
//! dialect:
//!
//! ```text
//! WHERE  <bib><book year=$y>
//!            <title>$t</title>
//!            <author><last>$l</last></author>
//!        </book></bib> IN "books",
//!        $y > 1995
//! CONSTRUCT <result><title>$t</title><author>$l</author></result>
//! ORDER-BY $t
//! ```
//!
//! Dialect summary (differences from the note are called out):
//!
//! * **Patterns** bind variables at attributes (`year=$y`), element content
//!   (`<title>$t</title>`), whole elements (`ELEMENT_AS $e`), and element
//!   content forests (`CONTENT_AS $c`). End tags may be abbreviated `</>`.
//! * **Tag patterns**: a literal name, `*` (any element), `**name`
//!   (descendant at any depth — regular-path shorthand), and `name+`
//!   (one or more levels of recursive nesting through `name` elements).
//! * **Sources**: `IN "name"` names a registered collection or mediated
//!   view; `IN $var` navigates within an element bound earlier (join
//!   within a document).
//! * **Predicates** are comma-separated alongside patterns: comparisons,
//!   arithmetic, `AND`/`OR`/`NOT`, `LIKE` with `%` wildcards, and function
//!   calls from the engine's registry.
//! * **CONSTRUCT templates** nest literal elements, variable references,
//!   quoted literal text, **nested subqueries** (grouping by correlation,
//!   as in the note), and **Skolem-ID grouping** (`<result ID=F($x)>`).
//! * **`ORDER-BY $v [DESC]`** is a dialect extension (the product lists
//!   ordering among its required features; the note has no explicit
//!   clause).
//!
//! Keywords (`WHERE`, `IN`, `AND`, `OR`, `NOT`, `LIKE`, `ASC`, `DESC`,
//! `CONSTRUCT`, `ELEMENT_AS`, `CONTENT_AS`) are reserved in any case
//! spelling and cannot be used as element names in patterns or
//! templates.
//!
//! The output of this crate is a checked [`ast::Query`]; lowering to the
//! mediator's internal representation lives in `nimble-core`, matching the
//! paper's stance that the *physical* algebra is the interface that
//! matters while the query language "is a moving target".

pub mod analyze;
pub mod ast;
pub mod display;
pub mod lexer;
pub mod parser;

pub use analyze::{analyze, AnalysisError, QueryInfo};
pub use ast::*;
pub use parser::{parse_query, parse_query_checked, ParseError, TypeDiag};

/// Parse and semantically check a query in one step. Surface type
/// diagnostics (arithmetic on a non-numeric literal, `LIKE` on a
/// numeric one) are fatal here: the first is reported as a positioned
/// [`AnalysisError::TypeError`], so a bad view definition fails at
/// DEFINE VIEW time instead of on its first query.
pub fn compile(text: &str) -> Result<(ast::Query, QueryInfo), CompileError> {
    let (query, diags) = parser::parse_query_checked(text).map_err(CompileError::Parse)?;
    if let Some(d) = diags.into_iter().next() {
        return Err(CompileError::Analysis(AnalysisError::TypeError {
            detail: d.detail,
            line: d.line,
            col: d.col,
        }));
    }
    let info = analyze(&query).map_err(CompileError::Analysis)?;
    Ok((query, info))
}

/// Either phase of front-end failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    Parse(ParseError),
    Analysis(AnalysisError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{}", e),
            CompileError::Analysis(e) => write!(f, "{}", e),
        }
    }
}
impl std::error::Error for CompileError {}
