//! Semantic analysis: variable scoping, source references, and the
//! query-shape summary the mediator's planner consumes.

use crate::ast::*;
use std::collections::BTreeSet;
use std::fmt;

/// A semantic error (all carry the offending variable or source name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A predicate, template, ORDER-BY, or `IN $var` references a variable
    /// no pattern binds.
    UnboundVariable(String),
    /// `IN $var` must refer to a variable bound by an *earlier* pattern.
    SourceVarBoundLater(String),
    /// A query must have at least one pattern (else there is nothing to
    /// iterate over).
    NoPatterns,
    /// A flat record pattern binds the same variable in two fields.
    /// Record patterns map each field to one output column, so the
    /// duplicate would yield two columns with one name (the invariant
    /// `Schema::try_new` enforces downstream). Repeated variables in
    /// *structured* patterns remain legal implicit joins.
    DuplicateBinding(String),
    /// A surface-level type error: a literal operand whose type can
    /// never satisfy its operator (arithmetic on a non-numeric string,
    /// `LIKE` on a number). Detected while the token stream is still in
    /// hand, so it carries the operator's source position — these are
    /// reported at DEFINE VIEW time before the view is ever queried.
    TypeError {
        detail: String,
        line: usize,
        col: usize,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnboundVariable(v) => write!(f, "unbound variable ${}", v),
            AnalysisError::SourceVarBoundLater(v) => write!(
                f,
                "source variable ${} must be bound by an earlier pattern",
                v
            ),
            AnalysisError::NoPatterns => write!(f, "query has no patterns in its WHERE clause"),
            AnalysisError::DuplicateBinding(v) => write!(
                f,
                "variable ${} is bound by two fields of the same record pattern; \
                 name the second field differently and join with a predicate",
                v
            ),
            AnalysisError::TypeError { detail, line, col } => {
                write!(f, "type error at line {}, column {}: {}", line, col, detail)
            }
        }
    }
}
impl std::error::Error for AnalysisError {}

/// Summary of a checked query, used by the planner.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryInfo {
    /// All variables bound by patterns, in binding order.
    pub bound_vars: Vec<String>,
    /// Named sources/views referenced by `IN "name"`, deduplicated.
    pub named_sources: Vec<String>,
    /// Variables bound more than once — implicit equi-joins.
    pub join_vars: Vec<String>,
    /// Number of nested subqueries anywhere in the CONSTRUCT clause.
    pub subquery_count: usize,
}

/// Check a query against an empty outer scope.
pub fn analyze(query: &Query) -> Result<QueryInfo, AnalysisError> {
    analyze_scoped(query, &BTreeSet::new())
}

/// Check a query with variables from an enclosing query already in scope
/// (used for nested CONSTRUCT subqueries).
pub fn analyze_scoped(
    query: &Query,
    outer: &BTreeSet<String>,
) -> Result<QueryInfo, AnalysisError> {
    let mut info = QueryInfo::default();
    let mut bound: BTreeSet<String> = outer.clone();
    let mut bound_here: BTreeSet<String> = BTreeSet::new();
    let mut any_pattern = false;

    // Pass 1: walk conditions in order, tracking pattern bindings so
    // `IN $var` sees only earlier bindings.
    for cond in &query.conditions {
        if let Condition::Pattern(pb) = cond {
            any_pattern = true;
            if let Some(v) = record_pattern_duplicate(&pb.pattern) {
                return Err(AnalysisError::DuplicateBinding(v));
            }
            match &pb.source {
                SourceRef::Named(name) => {
                    if !info.named_sources.contains(name) {
                        info.named_sources.push(name.clone());
                    }
                }
                SourceRef::Var(v) => {
                    if !bound.contains(v) {
                        // Distinguish "never bound" from "bound later".
                        let bound_anywhere = query.conditions.iter().any(|c| match c {
                            Condition::Pattern(p) => p.pattern.bound_vars().contains(v),
                            _ => false,
                        });
                        return Err(if bound_anywhere {
                            AnalysisError::SourceVarBoundLater(v.clone())
                        } else {
                            AnalysisError::UnboundVariable(v.clone())
                        });
                    }
                }
            }
            for v in pb.pattern.bound_vars() {
                if bound_here.contains(&v) && !info.join_vars.contains(&v) {
                    info.join_vars.push(v.clone());
                }
                if bound_here.insert(v.clone()) {
                    info.bound_vars.push(v.clone());
                }
                bound.insert(v);
            }
        }
    }
    if !any_pattern {
        return Err(AnalysisError::NoPatterns);
    }

    // Pass 2: every predicate variable must be bound (predicates are a
    // conjunction; order among conditions does not matter for them).
    for cond in &query.conditions {
        if let Condition::Predicate(e) = cond {
            for v in e.vars() {
                if !bound.contains(&v) {
                    return Err(AnalysisError::UnboundVariable(v));
                }
            }
        }
    }

    // Pass 3: template references.
    for v in query.construct.direct_vars() {
        if !bound.contains(&v) {
            return Err(AnalysisError::UnboundVariable(v));
        }
    }
    for sub in query.construct.subqueries() {
        let sub_info = analyze_scoped(sub, &bound)?;
        info.subquery_count += 1 + sub_info.subquery_count;
    }

    // Pass 4: ORDER-BY keys.
    for k in &query.order_by {
        if !bound.contains(&k.var) {
            return Err(AnalysisError::UnboundVariable(k.var.clone()));
        }
    }

    Ok(info)
}

/// If `pattern` is a flat record pattern (`<row><f>$v</f>…</row>`,
/// optionally inside one bare wrapper) that binds some variable in two
/// fields, return that variable. Structured patterns — nesting, binders,
/// attributes, descendant tags — return `None`: their repeated variables
/// are implicit joins, enforced value-wise by the matcher rather than by
/// column identity.
fn record_pattern_duplicate(pattern: &Pattern) -> Option<String> {
    let row = {
        let is_row = |p: &Pattern| p.tag == TagPattern::Name("row".to_string());
        if is_row(pattern) {
            pattern
        } else {
            if !pattern.attrs.is_empty()
                || pattern.element_as.is_some()
                || pattern.content_as.is_some()
            {
                return None;
            }
            match pattern.content.as_slice() {
                [PatternContent::Nested(inner)] if is_row(inner) => inner,
                _ => return None,
            }
        }
    };
    if !row.attrs.is_empty() || row.element_as.is_some() || row.content_as.is_some() {
        return None;
    }
    let mut seen: Vec<&String> = Vec::new();
    for item in &row.content {
        let leaf = match item {
            PatternContent::Nested(p) => p,
            _ => return None,
        };
        if !matches!(leaf.tag, TagPattern::Name(_))
            || !leaf.attrs.is_empty()
            || leaf.element_as.is_some()
            || leaf.content_as.is_some()
        {
            return None;
        }
        match leaf.content.as_slice() {
            [PatternContent::Var(v)] => {
                if seen.contains(&v) {
                    return Some(v.clone());
                }
                seen.push(v);
            }
            [PatternContent::Lit(_)] => {}
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn check(text: &str) -> Result<QueryInfo, AnalysisError> {
        analyze(&parse_query(text).unwrap())
    }

    #[test]
    fn valid_query_summary() {
        let info = check(
            r#"WHERE <a><x>$x</x></a> IN "s1", <b><x>$x</x><y>$y</y></b> IN "s2", $y > 0
               CONSTRUCT <o>$x</o>"#,
        )
        .unwrap();
        assert_eq!(info.named_sources, vec!["s1", "s2"]);
        assert_eq!(info.join_vars, vec!["x"]);
        assert_eq!(info.bound_vars, vec!["x", "y"]);
    }

    #[test]
    fn unbound_in_predicate() {
        let err = check(r#"WHERE <a>$x</a> IN "s", $z = 1 CONSTRUCT <o/>"#).unwrap_err();
        assert_eq!(err, AnalysisError::UnboundVariable("z".into()));
    }

    #[test]
    fn unbound_in_template() {
        let err = check(r#"WHERE <a>$x</a> IN "s" CONSTRUCT <o>$q</o>"#).unwrap_err();
        assert_eq!(err, AnalysisError::UnboundVariable("q".into()));
    }

    #[test]
    fn unbound_in_order_by() {
        let err =
            check(r#"WHERE <a>$x</a> IN "s" CONSTRUCT <o>$x</o> ORDER-BY $nope"#).unwrap_err();
        assert_eq!(err, AnalysisError::UnboundVariable("nope".into()));
    }

    #[test]
    fn source_var_must_be_bound_earlier() {
        let err = check(
            r#"WHERE <i>$x</i> IN $o, <order/> ELEMENT_AS $o IN "orders" CONSTRUCT <r/>"#,
        )
        .unwrap_err();
        assert_eq!(err, AnalysisError::SourceVarBoundLater("o".into()));
    }

    #[test]
    fn subquery_sees_outer_scope() {
        let info = check(
            r#"WHERE <book><title>$t</title></book> ELEMENT_AS $b IN "bib"
               CONSTRUCT <e><t>$t</t>
                  WHERE <author>$a</author> IN $b
                  CONSTRUCT <a>$a</a>
               </e>"#,
        )
        .unwrap();
        assert_eq!(info.subquery_count, 1);
    }

    #[test]
    fn subquery_cannot_leak_vars_outward() {
        // $a is bound only inside the subquery; outer template can't use it.
        let err = check(
            r#"WHERE <book/> ELEMENT_AS $b IN "bib"
               CONSTRUCT <e><x>$a</x>
                  WHERE <author>$a</author> IN $b
                  CONSTRUCT <a>$a</a>
               </e>"#,
        )
        .unwrap_err();
        assert_eq!(err, AnalysisError::UnboundVariable("a".into()));
    }

    #[test]
    fn duplicate_binding_in_record_pattern_rejected() {
        let err = check(
            r#"WHERE <row><a>$x</a><b>$x</b></row> IN "s" CONSTRUCT <o>$x</o>"#,
        )
        .unwrap_err();
        assert_eq!(err, AnalysisError::DuplicateBinding("x".into()));
        // The wrapped form is record-shaped too.
        let err = check(
            r#"WHERE <rows><row><a>$x</a><b>$x</b></row></rows> IN "s" CONSTRUCT <o>$x</o>"#,
        )
        .unwrap_err();
        assert_eq!(err, AnalysisError::DuplicateBinding("x".into()));
    }

    #[test]
    fn repeated_vars_in_structured_patterns_stay_legal() {
        // Nested sub-elements: the repeat is an implicit join, not a
        // duplicate column.
        let info = check(
            r#"WHERE <db><a><k>$k</k></a><b><k>$k</k></b></db> IN "s" CONSTRUCT <o>$k</o>"#,
        )
        .unwrap();
        assert_eq!(info.join_vars, vec!["k"]);
        // A binder alongside a field makes the pattern structured as well.
        assert!(check(
            r#"WHERE <row><a>$x</a><b>$x</b></row> ELEMENT_AS $e IN "s" CONSTRUCT <o>$x</o>"#,
        )
        .is_ok());
    }

    #[test]
    fn query_without_patterns_rejected() {
        let err = check(r#"WHERE 1 = 1 CONSTRUCT <o/>"#).unwrap_err();
        assert_eq!(err, AnalysisError::NoPatterns);
    }
}
