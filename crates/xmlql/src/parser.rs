//! Recursive-descent parser for the XML-QL dialect.
//!
//! Dispatch between patterns and predicates inside the WHERE clause uses
//! one token of lookahead: a comparison can never *start* with `<`, so a
//! leading `Lt` always opens a pattern.

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use nimble_xml::Atomic;
use std::fmt;

/// A syntax error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML-QL parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}
impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// A surface-level type diagnostic: a literal operand whose type can
/// never satisfy its operator. Collected while parsing (the only phase
/// with token positions in hand); the parse itself still succeeds, so
/// callers decide whether diagnostics are fatal — [`crate::compile`]
/// treats the first one as an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDiag {
    pub detail: String,
    /// Source position of the offending *operator* token.
    pub line: usize,
    pub col: usize,
}

/// Parse a complete XML-QL query.
pub fn parse_query(text: &str) -> Result<Query, ParseError> {
    parse_query_checked(text).map(|(q, _)| q)
}

/// Parse a query and surface-type-check its expressions: returns the
/// query plus any positioned [`TypeDiag`]s found (arithmetic on a
/// non-numeric literal, `LIKE` on a numeric one). Only *direct literal
/// operands* are judged — variables and computed operands are left to
/// the engine's runtime coercion — so every diagnostic is a certainty,
/// never a guess.
pub fn parse_query_checked(text: &str) -> Result<(Query, Vec<TypeDiag>), ParseError> {
    let tokens = tokenize(text)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        type_diags: Vec::new(),
    };
    let q = p.query()?;
    p.expect(&TokenKind::Eof)?;
    Ok((q, p.type_diags))
}

/// Why a literal can never be an arithmetic operand, or `None` when it
/// can (numerics, numeric-looking strings the engine coerces, and
/// anything non-literal).
fn arith_operand_error(e: &Expr) -> Option<String> {
    match e {
        Expr::Lit(Atomic::Str(s)) if s.trim().parse::<f64>().is_err() => {
            Some(format!("string literal {:?} is not numeric", s))
        }
        Expr::Lit(Atomic::Bool(b)) => Some(format!("boolean literal `{}` is not numeric", b)),
        Expr::Lit(Atomic::Null) => Some("`null` is not numeric".to_string()),
        _ => None,
    }
}

/// Why a literal can never be a `LIKE` operand (LIKE matches strings),
/// or `None` when it can.
fn like_operand_error(e: &Expr) -> Option<String> {
    match e {
        Expr::Lit(Atomic::Int(i)) => Some(format!("numeric literal `{}`", i)),
        Expr::Lit(Atomic::Float(x)) => Some(format!("numeric literal `{}`", x)),
        Expr::Lit(Atomic::Bool(b)) => Some(format!("boolean literal `{}`", b)),
        Expr::Lit(Atomic::Null) => Some("`null`".to_string()),
        _ => None,
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Surface type diagnostics collected during expression parsing.
    type_diags: Vec<TypeDiag>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    /// Position of the current (not yet consumed) token.
    fn here(&self) -> (usize, usize) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    /// Record a type diagnostic for `operand` of the operator spelled
    /// `sym` at (`line`, `col`) when the operand is a literal that can
    /// never be numeric.
    fn check_arith(&mut self, sym: &str, operand: &Expr, line: usize, col: usize) {
        if let Some(why) = arith_operand_error(operand) {
            self.type_diags.push(TypeDiag {
                detail: format!("operand of `{}` — {}; arithmetic needs a number", sym, why),
                line,
                col,
            });
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let t = &self.tokens[self.pos];
        Err(ParseError {
            message: format!("{} (found {})", msg.into(), t.kind),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {}", kind))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn var(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Var(name) => {
                self.bump();
                Ok(name)
            }
            _ => self.err("expected variable ($name)"),
        }
    }

    // query := WHERE condition (',' condition)* CONSTRUCT template [orderby]
    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect(&TokenKind::Where)?;
        let mut conditions = vec![self.condition()?];
        while self.eat(&TokenKind::Comma) {
            conditions.push(self.condition()?);
        }
        self.expect(&TokenKind::Construct)?;
        let construct = self.element_template()?;
        let order_by = if self.at_order_by() {
            self.order_by()?
        } else {
            Vec::new()
        };
        Ok(Query {
            conditions,
            construct,
            order_by,
        })
    }

    fn at_order_by(&self) -> bool {
        match self.peek() {
            TokenKind::OrderBy => true,
            TokenKind::Ident(w) if w.eq_ignore_ascii_case("order") => {
                matches!(self.peek2(), TokenKind::Minus)
            }
            _ => false,
        }
    }

    fn order_by(&mut self) -> Result<Vec<OrderKey>, ParseError> {
        if !self.eat(&TokenKind::OrderBy) {
            // The hyphen spelling: Ident("ORDER") '-' Ident("BY").
            self.bump(); // ORDER
            self.expect(&TokenKind::Minus)?;
            let by = self.ident()?;
            if !by.eq_ignore_ascii_case("by") {
                return self.err("expected BY after ORDER-");
            }
        }
        let mut keys = Vec::new();
        loop {
            let var = self.var()?;
            let descending = if self.eat(&TokenKind::Desc) {
                true
            } else {
                self.eat(&TokenKind::Asc);
                false
            };
            keys.push(OrderKey { var, descending });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(keys)
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        if matches!(self.peek(), TokenKind::Lt) {
            let pattern = self.pattern()?;
            self.expect(&TokenKind::In)?;
            let source = match self.peek().clone() {
                TokenKind::Str(name) => {
                    self.bump();
                    SourceRef::Named(name)
                }
                TokenKind::Var(name) => {
                    self.bump();
                    SourceRef::Var(name)
                }
                _ => return self.err("expected source: \"name\" or $var after IN"),
            };
            Ok(Condition::Pattern(PatternBinding { pattern, source }))
        } else {
            Ok(Condition::Predicate(self.or_expr()?))
        }
    }

    // pattern := '<' tagpat attrpat* ('/>' | '>' pcontent* endtag) binders
    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        self.expect(&TokenKind::Lt)?;
        let tag = self.tag_pattern()?;
        let mut attrs = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Ident(name) => {
                    self.bump();
                    self.expect(&TokenKind::Eq)?;
                    let value = self.pattern_value()?;
                    attrs.push(AttrPattern { name, value });
                }
                TokenKind::SlashGt => {
                    self.bump();
                    return self.pattern_binders(tag, attrs, Vec::new());
                }
                TokenKind::Gt => {
                    self.bump();
                    break;
                }
                _ => return self.err("expected attribute, '>' or '/>' in pattern"),
            }
        }
        let mut content = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Lt => {
                    content.push(PatternContent::Nested(self.pattern()?));
                }
                TokenKind::LtSlash => {
                    self.bump();
                    // `</>` or `</name>`; a name must match the open tag.
                    if let TokenKind::Ident(name) = self.peek().clone() {
                        self.bump();
                        let open_name = match &tag {
                            TagPattern::Name(n)
                            | TagPattern::Descendant(n)
                            | TagPattern::ClosurePlus(n) => Some(n.as_str()),
                            TagPattern::Wildcard => None,
                        };
                        if let Some(open) = open_name {
                            if open != name {
                                return self.err(format!(
                                    "end tag </{}> does not match <{}>",
                                    name, open
                                ));
                            }
                        }
                    }
                    self.expect(&TokenKind::Gt)?;
                    return self.pattern_binders(tag, attrs, content);
                }
                TokenKind::Var(v) => {
                    self.bump();
                    content.push(PatternContent::Var(v));
                }
                TokenKind::Str(s) => {
                    self.bump();
                    content.push(PatternContent::Lit(Atomic::Str(s)));
                }
                TokenKind::Int(i) => {
                    self.bump();
                    content.push(PatternContent::Lit(Atomic::Int(i)));
                }
                TokenKind::Float(x) => {
                    self.bump();
                    content.push(PatternContent::Lit(Atomic::Float(x)));
                }
                TokenKind::Minus => {
                    self.bump();
                    content.push(PatternContent::Lit(self.negative_number()?));
                }
                _ => return self.err("expected pattern content or end tag"),
            }
        }
    }

    fn pattern_binders(
        &mut self,
        tag: TagPattern,
        attrs: Vec<AttrPattern>,
        content: Vec<PatternContent>,
    ) -> Result<Pattern, ParseError> {
        let mut element_as = None;
        let mut content_as = None;
        loop {
            if self.eat(&TokenKind::ElementAs) {
                if element_as.is_some() {
                    return self.err("duplicate ELEMENT_AS");
                }
                element_as = Some(self.var()?);
            } else if self.eat(&TokenKind::ContentAs) {
                if content_as.is_some() {
                    return self.err("duplicate CONTENT_AS");
                }
                content_as = Some(self.var()?);
            } else {
                break;
            }
        }
        Ok(Pattern {
            tag,
            attrs,
            content,
            element_as,
            content_as,
        })
    }

    fn tag_pattern(&mut self) -> Result<TagPattern, ParseError> {
        match self.peek().clone() {
            TokenKind::StarTok => {
                self.bump();
                if self.eat(&TokenKind::StarTok) {
                    // `<**name>` — descendant at any depth.
                    Ok(TagPattern::Descendant(self.ident()?))
                } else {
                    Ok(TagPattern::Wildcard)
                }
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::Plus) {
                    Ok(TagPattern::ClosurePlus(name))
                } else {
                    Ok(TagPattern::Name(name))
                }
            }
            _ => self.err("expected tag name, '*' or '**name'"),
        }
    }

    /// A numeric literal following a consumed `-` sign.
    fn negative_number(&mut self) -> Result<Atomic, ParseError> {
        match self.bump() {
            TokenKind::Int(i) => Ok(Atomic::Int(-i)),
            TokenKind::Float(x) => Ok(Atomic::Float(-x)),
            other => Err(ParseError {
                message: format!("expected number after '-', found {}", other),
                line: self.tokens[self.pos.saturating_sub(1)].line,
                col: self.tokens[self.pos.saturating_sub(1)].col,
            }),
        }
    }

    fn pattern_value(&mut self) -> Result<PatternValue, ParseError> {
        match self.peek().clone() {
            TokenKind::Var(v) => {
                self.bump();
                Ok(PatternValue::Var(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(PatternValue::Lit(Atomic::Str(s)))
            }
            TokenKind::Int(i) => {
                self.bump();
                Ok(PatternValue::Lit(Atomic::Int(i)))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(PatternValue::Lit(Atomic::Float(x)))
            }
            TokenKind::Minus => {
                self.bump();
                Ok(PatternValue::Lit(self.negative_number()?))
            }
            _ => self.err("expected $var or literal attribute value"),
        }
    }

    // --- templates ---

    fn element_template(&mut self) -> Result<ElementTemplate, ParseError> {
        self.expect(&TokenKind::Lt)?;
        let tag = self.ident()?;
        let mut skolem = None;
        let mut attrs = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Ident(name) => {
                    self.bump();
                    self.expect(&TokenKind::Eq)?;
                    if name == "ID" {
                        // Skolem grouping: ID=Func($x,$y)
                        let func = self.ident()?;
                        self.expect(&TokenKind::LParen)?;
                        let mut args = vec![self.var()?];
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.var()?);
                        }
                        self.expect(&TokenKind::RParen)?;
                        if skolem.is_some() {
                            return self.err("duplicate ID attribute");
                        }
                        skolem = Some(SkolemId { func, args });
                    } else {
                        let value = match self.peek().clone() {
                            TokenKind::Var(v) => {
                                self.bump();
                                TemplateValue::Var(v)
                            }
                            TokenKind::Str(s) => {
                                self.bump();
                                TemplateValue::Lit(s)
                            }
                            TokenKind::Int(i) => {
                                self.bump();
                                TemplateValue::Lit(i.to_string())
                            }
                            _ => return self.err("expected attribute value"),
                        };
                        attrs.push((name, value));
                    }
                }
                TokenKind::SlashGt => {
                    self.bump();
                    return Ok(ElementTemplate {
                        tag,
                        skolem,
                        attrs,
                        children: Vec::new(),
                    });
                }
                TokenKind::Gt => {
                    self.bump();
                    break;
                }
                _ => return self.err("expected attribute, '>' or '/>' in template"),
            }
        }
        let mut children = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Lt => children.push(TemplateNode::Element(self.element_template()?)),
                TokenKind::Var(v) => {
                    self.bump();
                    children.push(TemplateNode::Var(v));
                }
                TokenKind::Str(s) => {
                    self.bump();
                    children.push(TemplateNode::Text(s));
                }
                TokenKind::Int(i) => {
                    self.bump();
                    children.push(TemplateNode::Text(i.to_string()));
                }
                TokenKind::Minus => {
                    self.bump();
                    children.push(TemplateNode::Text(self.negative_number()?.lexical()));
                }
                TokenKind::Where => {
                    children.push(TemplateNode::Subquery(Box::new(self.query()?)));
                }
                TokenKind::Ident(name) => {
                    // Aggregate call: count() / sum($t) / ...
                    let func = match AggName::parse(&name) {
                        Some(f) => f,
                        None => {
                            return self.err(format!(
                                "unknown aggregate {:?} in template (expected \
                                 count/sum/min/max/avg/collect)",
                                name
                            ))
                        }
                    };
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let var = if self.peek() == &TokenKind::RParen {
                        None
                    } else {
                        Some(self.var()?)
                    };
                    self.expect(&TokenKind::RParen)?;
                    if func != AggName::Count && var.is_none() {
                        return self.err(format!("{:?} requires an argument", func));
                    }
                    children.push(TemplateNode::Agg { func, var });
                }
                TokenKind::LBrace => {
                    // Optional braces around a subquery for readability.
                    self.bump();
                    children.push(TemplateNode::Subquery(Box::new(self.query()?)));
                    self.expect(&TokenKind::RBrace)?;
                }
                TokenKind::LtSlash => {
                    self.bump();
                    if let TokenKind::Ident(name) = self.peek().clone() {
                        self.bump();
                        if name != tag {
                            return self
                                .err(format!("end tag </{}> does not match <{}>", name, tag));
                        }
                    }
                    self.expect(&TokenKind::Gt)?;
                    return Ok(ElementTemplate {
                        tag,
                        skolem,
                        attrs,
                        children,
                    });
                }
                _ => return self.err("expected template content or end tag"),
            }
        }
    }

    // --- expressions (precedence climbing) ---

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat(&TokenKind::And) {
            let right = self.not_expr()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::Like => BinOp::Like,
            _ => return Ok(left),
        };
        let (line, col) = self.here();
        self.bump();
        let right = self.add_expr()?;
        if op == BinOp::Like {
            for side in [&left, &right] {
                if let Some(why) = like_operand_error(side) {
                    self.type_diags.push(TypeDiag {
                        detail: format!("operand of `LIKE` — {}; LIKE matches strings", why),
                        line,
                        col,
                    });
                }
            }
        }
        Ok(Expr::Binary(op, Box::new(left), Box::new(right)))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let (op, sym) = match self.peek() {
                TokenKind::Plus => (BinOp::Add, "+"),
                TokenKind::Minus => (BinOp::Sub, "-"),
                _ => break,
            };
            let (line, col) = self.here();
            self.bump();
            let right = self.mul_expr()?;
            self.check_arith(sym, &left, line, col);
            self.check_arith(sym, &right, line, col);
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let (op, sym) = match self.peek() {
                TokenKind::StarTok => (BinOp::Mul, "*"),
                TokenKind::Slash => (BinOp::Div, "/"),
                TokenKind::Percent => (BinOp::Mod, "%"),
                _ => break,
            };
            let (line, col) = self.here();
            self.bump();
            let right = self.unary_expr()?;
            self.check_arith(sym, &left, line, col);
            self.check_arith(sym, &right, line, col);
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::Minus) {
            let (line, col) = self.here();
            self.bump();
            let inner = self.unary_expr()?;
            self.check_arith("-", &inner, line, col);
            Ok(Expr::Neg(Box::new(inner)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Var(v) => {
                self.bump();
                Ok(Expr::Var(v))
            }
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Lit(Atomic::Int(i)))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Expr::Lit(Atomic::Float(x)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Atomic::Str(s)))
            }
            TokenKind::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "true" => return Ok(Expr::Lit(Atomic::Bool(true))),
                    "false" => return Ok(Expr::Lit(Atomic::Bool(false))),
                    "null" => return Ok(Expr::Lit(Atomic::Null)),
                    _ => {}
                }
                self.expect(&TokenKind::LParen)?;
                let mut args = Vec::new();
                if self.peek() != &TokenKind::RParen {
                    args.push(self.or_expr()?);
                    while self.eat(&TokenKind::Comma) {
                        args.push(self.or_expr()?);
                    }
                }
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Call(name, args))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.or_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            _ => self.err("expected expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_bibliography_query() {
        let q = parse_query(
            r#"WHERE <bib><book year=$y>
                     <title>$t</title>
                     <author><last>$l</last></author>
                  </book></bib> IN "books",
                  $y > 1995
               CONSTRUCT <result><title>$t</title><author>$l</author></result>"#,
        )
        .unwrap();
        assert_eq!(q.conditions.len(), 2);
        match &q.conditions[0] {
            Condition::Pattern(pb) => {
                assert_eq!(pb.source, SourceRef::Named("books".into()));
                assert_eq!(pb.pattern.bound_vars(), vec!["y", "t", "l"]);
            }
            other => panic!("expected pattern, got {:?}", other),
        }
        assert_eq!(q.construct.tag, "result");
    }

    #[test]
    fn abbreviated_end_tags() {
        let q = parse_query(
            r#"WHERE <a><b>$x</b></> IN "d" CONSTRUCT <out>$x</>"#,
        )
        .unwrap();
        assert_eq!(q.construct.tag, "out");
    }

    #[test]
    fn element_as_and_content_as() {
        let q = parse_query(
            r#"WHERE <people><person/> ELEMENT_AS $p CONTENT_AS $c</people> IN "d"
               CONSTRUCT <o>$p</o>"#,
        )
        .unwrap();
        match &q.conditions[0] {
            Condition::Pattern(pb) => {
                let inner = match &pb.pattern.content[0] {
                    PatternContent::Nested(p) => p,
                    other => panic!("{:?}", other),
                };
                assert_eq!(inner.element_as, Some("p".into()));
                assert_eq!(inner.content_as, Some("c".into()));
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn tag_patterns() {
        let q = parse_query(
            r#"WHERE <db><**leaf>$x</> <*>$y</> <part+>$z</></db> IN "d" CONSTRUCT <o/>"#,
        )
        .unwrap();
        match &q.conditions[0] {
            Condition::Pattern(pb) => {
                let tags: Vec<&TagPattern> = pb
                    .pattern
                    .content
                    .iter()
                    .filter_map(|c| match c {
                        PatternContent::Nested(p) => Some(&p.tag),
                        _ => None,
                    })
                    .collect();
                assert_eq!(tags[0], &TagPattern::Descendant("leaf".into()));
                assert_eq!(tags[1], &TagPattern::Wildcard);
                assert_eq!(tags[2], &TagPattern::ClosurePlus("part".into()));
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn navigation_source_var() {
        let q = parse_query(
            r#"WHERE <order/> ELEMENT_AS $o IN "orders",
                     <item>$i</item> IN $o
               CONSTRUCT <r>$i</r>"#,
        )
        .unwrap();
        match &q.conditions[1] {
            Condition::Pattern(pb) => assert_eq!(pb.source, SourceRef::Var("o".into())),
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn predicate_precedence() {
        let q = parse_query(
            r#"WHERE <a>$x</a> IN "d", $x > 1 + 2 * 3 AND NOT $x = 10 OR $x < 0
               CONSTRUCT <o/>"#,
        )
        .unwrap();
        match &q.conditions[1] {
            // OR is the loosest binder.
            Condition::Predicate(Expr::Binary(BinOp::Or, _, _)) => {}
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn like_and_functions() {
        let q = parse_query(
            r#"WHERE <a>$x</a> IN "d", $x LIKE "%data%", contains(lower($x), "web")
               CONSTRUCT <o/>"#,
        )
        .unwrap();
        assert_eq!(q.conditions.len(), 3);
    }

    #[test]
    fn skolem_grouping() {
        let q = parse_query(
            r#"WHERE <person><name>$n</name><tel>$t</tel></person> IN "d"
               CONSTRUCT <person ID=PersonID($n)><name>$n</name><tel>$t</tel></person>"#,
        )
        .unwrap();
        let sk = q.construct.skolem.unwrap();
        assert_eq!(sk.func, "PersonID");
        assert_eq!(sk.args, vec!["n"]);
    }

    #[test]
    fn nested_subquery() {
        let q = parse_query(
            r#"WHERE <book><title>$t</title></book> ELEMENT_AS $b IN "bib"
               CONSTRUCT <entry><title>$t</title>
                   WHERE <author>$a</author> IN $b
                   CONSTRUCT <author>$a</author>
               </entry>"#,
        )
        .unwrap();
        assert_eq!(q.construct.subqueries().len(), 1);
    }

    #[test]
    fn order_by_both_spellings() {
        for spelling in ["ORDER-BY", "ORDER_BY", "order-by"] {
            let q = parse_query(&format!(
                r#"WHERE <a>$x</a> IN "d" CONSTRUCT <o>$x</o> {} $x DESC"#,
                spelling
            ))
            .unwrap();
            assert_eq!(
                q.order_by,
                vec![OrderKey {
                    var: "x".into(),
                    descending: true
                }]
            );
        }
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err =
            parse_query(r#"WHERE <a><b>$x</c></a> IN "d" CONSTRUCT <o/>"#).unwrap_err();
        assert!(err.message.contains("does not match"), "{}", err);
    }

    #[test]
    fn literal_attribute_constraints() {
        let q = parse_query(
            r#"WHERE <book lang="en" edition=2>$t</book> IN "d" CONSTRUCT <o>$t</o>"#,
        )
        .unwrap();
        match &q.conditions[0] {
            Condition::Pattern(pb) => {
                assert_eq!(pb.pattern.attrs.len(), 2);
                assert_eq!(
                    pb.pattern.attrs[1].value,
                    PatternValue::Lit(Atomic::Int(2))
                );
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn aggregates_in_templates() {
        let q = parse_query(
            r#"WHERE <row><r>$r</r><t>$t</t></row> IN "orders"
               CONSTRUCT <sum ID=ByR($r)><region>$r</region>
                   <n>count()</n><total>sum($t)</total><top>max($t)</top>
               </sum>"#,
        )
        .unwrap();
        let vars = q.construct.direct_vars();
        assert!(vars.contains(&"t".to_string()));
        // Unknown aggregate names and missing arguments are rejected.
        assert!(parse_query(
            r#"WHERE <a>$x</a> IN "d" CONSTRUCT <o>median($x)</o>"#
        )
        .is_err());
        assert!(parse_query(r#"WHERE <a>$x</a> IN "d" CONSTRUCT <o>sum()</o>"#).is_err());
    }

    #[test]
    fn error_has_position() {
        let err = parse_query("WHERE\n  CONSTRUCT <o/>").unwrap_err();
        assert_eq!(err.line, 2);
    }

    // ---- surface type diagnostics ----

    fn diags(text: &str) -> Vec<TypeDiag> {
        parse_query_checked(text).unwrap().1
    }

    #[test]
    fn arithmetic_on_non_numeric_string_literal_is_flagged() {
        let d = diags(
            "WHERE <a>$x</a> IN \"c\",\n  $x + \"abc\" > 3\nCONSTRUCT <o>$x</o>",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].detail.contains("\"abc\""), "{}", d[0].detail);
        // Position is the `+` operator on line 2.
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].col, 6);
        // The parse itself still succeeds — diagnostics are advisory at
        // this layer; `compile` decides they are fatal.
        assert!(parse_query("WHERE <a>$x</a> IN \"c\", $x + \"abc\" > 3 CONSTRUCT <o>$x</o>").is_ok());
    }

    #[test]
    fn numeric_looking_strings_and_variables_are_not_flagged() {
        // The engine coerces "5" in arithmetic; variables are unknown.
        assert!(diags(r#"WHERE <a>$x</a> IN "c", $x + "5" > 3 CONSTRUCT <o>$x</o>"#).is_empty());
        assert!(diags(r#"WHERE <a>$x</a> IN "c", $x * 2 - 1 >= 0 CONSTRUCT <o>$x</o>"#).is_empty());
        // Unary minus on a number is fine; on a non-numeric string it is not.
        assert!(diags(r#"WHERE <a>$x</a> IN "c", $x > -5 CONSTRUCT <o>$x</o>"#).is_empty());
        assert_eq!(diags(r#"WHERE <a>$x</a> IN "c", $x > -"b" CONSTRUCT <o>$x</o>"#).len(), 1);
    }

    #[test]
    fn like_on_numeric_literal_is_flagged() {
        let d = diags("WHERE <a>$x</a> IN \"c\",\n  $x LIKE 42\nCONSTRUCT <o>$x</o>");
        assert_eq!(d.len(), 1);
        assert!(d[0].detail.contains("LIKE"), "{}", d[0].detail);
        assert!(d[0].detail.contains("42"), "{}", d[0].detail);
        assert_eq!((d[0].line, d[0].col), (2, 6));
        // A string pattern is the normal case and stays clean.
        assert!(diags(r#"WHERE <a>$x</a> IN "c", $x LIKE "a%" CONSTRUCT <o>$x</o>"#).is_empty());
        // The subject side is judged the same way.
        assert_eq!(diags(r#"WHERE <a>$x</a> IN "c", 7 LIKE $x CONSTRUCT <o>$x</o>"#).len(), 1);
    }

    #[test]
    fn boolean_and_null_literals_in_arithmetic_are_flagged() {
        assert_eq!(diags(r#"WHERE <a>$x</a> IN "c", $x + true > 1 CONSTRUCT <o>$x</o>"#).len(), 1);
        assert_eq!(diags(r#"WHERE <a>$x</a> IN "c", $x % null = 0 CONSTRUCT <o>$x</o>"#).len(), 1);
    }

    #[test]
    fn type_diagnostics_reach_into_nested_subqueries() {
        let d = diags(
            r#"WHERE <a/> ELEMENT_AS $e IN "top"
               CONSTRUCT <o>
                 WHERE <b>$x</b> IN "nested", $x - "oops" > 0
                 CONSTRUCT <i>$x</i>
               </o>"#,
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }
}
