//! # nimble-planck
//!
//! Static verification of Nimble physical plans.
//!
//! The mediator compiles XML-QL *directly* into physical operator trees
//! with no logical-algebra stage (paper §3.1), so a planner bug — a
//! projection referencing a column the join did not produce, a merge
//! join over unsorted inputs, a set operation over mismatched arms —
//! surfaces only at execution time, as a runtime error or a silently
//! wrong answer. This crate walks an [`Operator`] tree *without
//! executing it* and checks every operator's static contract, using the
//! [`OpInfo`] metadata each operator exposes through
//! [`Operator::introspect`].
//!
//! ## Checks
//!
//! * **Schema derivation** — each operator's output schema matches what
//!   its [`SchemaRule`] predicts from its children (`Inherit`, `Concat`,
//!   `Extends`, `Uniform`, `PerColumnExprs`).
//! * **Expression binding** — every [`ScalarExpr`] column reference
//!   resolves inside the child schema it is evaluated against.
//! * **Join keys** — equi-join key columns exist on both inputs and the
//!   key lists have equal arity.
//! * **Sortedness** — operators that require sorted inputs (merge join)
//!   get inputs whose ordering is *statically provable*: established by
//!   an upstream [`SortOp`](nimble_algebra::ops::SortOp) and preserved
//!   by every operator in between.
//! * **Grouping** — group-key columns fall inside the input schema and
//!   reappear, correctly named, as the output prefix.
//! * **Duplicate columns** — no operator outputs the same variable
//!   twice, and `Schema::concat` collision renames (`var#2`) never leak
//!   into the root schema a consumer sees.
//!
//! `check` returns every issue found; `verify` wraps them into an
//! error. The verifier is conservative: operators without introspection
//! metadata ([`SchemaRule::Opaque`]) are accepted, their subtrees still
//! checked.
//!
//! ## Semantic passes (v2)
//!
//! On top of the structural checks, three semantic passes:
//!
//! * [`types`] — bottom-up typed field-domain inference (coercion class
//!   + nullability per output column), flagging type-confused join
//!   keys, references to never-bound columns, and mixed-type sort keys.
//!   Run together with the structural pass by [`check_semantic`] /
//!   [`verify_semantic`].
//! * [`satisfy`] — interval/domain propagation over predicate trees:
//!   constant folding, contradiction detection (`x > 5 AND x < 3`),
//!   always-true detection, and refutation against exact column
//!   bounds. *Advisory*: an unsatisfiable filter is dead weight, not a
//!   malformed plan, so the planner (not the verifier) acts on it by
//!   pruning the subtree to an `EmptyOp`.
//! * [`rewrite_audit`] — invariant checks over recorded optimizer
//!   rewrites (schema/key-set preservation, cardinality-bound
//!   monotonicity), including plan-cache reuse.

pub mod rewrite_audit;
pub mod satisfy;
pub mod types;

pub use rewrite_audit::{audit, Fingerprint, RewriteRecord};
pub use satisfy::Verdict;

use nimble_algebra::inspect::{OpInfo, OrderEffect, SchemaRule};
use nimble_algebra::ops::SortKey;
use nimble_algebra::{Operator, Schema};
use std::fmt;

/// One defect found in a plan.
#[derive(Debug, Clone)]
pub struct PlanIssue {
    /// Kind name of the operator the issue is anchored at (`"HashJoin"`).
    pub operator: String,
    /// Root-to-operator path, e.g. `Sort/MergeJoin[0]/Values[1]`.
    pub path: String,
    /// Human-readable description naming the offending variable/column.
    pub detail: String,
}

impl fmt::Display for PlanIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at {}): {}", self.operator, self.path, self.detail)
    }
}

/// All defects found in one plan, as returned by [`verify`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    pub issues: Vec<PlanIssue>,
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan verification failed with {} issue(s):", self.issues.len())?;
        for i in &self.issues {
            write!(f, "\n  - {}", i)?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyReport {}

/// Verify an operator tree; `Err` carries every issue found.
pub fn verify(root: &dyn Operator) -> Result<(), VerifyReport> {
    let issues = check(root);
    if issues.is_empty() {
        Ok(())
    } else {
        Err(VerifyReport { issues })
    }
}

/// Walk an operator tree and collect every contract violation.
pub fn check(root: &dyn Operator) -> Vec<PlanIssue> {
    let mut issues = Vec::new();
    let root_path = root.introspect().name.clone();
    walk(root, &root_path, &mut issues);
    // Collision renames (`var#2` from `Schema::concat`) are internal
    // bookkeeping; a well-formed plan projects them away before the root.
    for v in root.schema().vars() {
        if v.contains('#') {
            issues.push(PlanIssue {
                operator: root.introspect().name,
                path: root_path.clone(),
                detail: format!(
                    "join collision column ${} leaks into the root schema {}; \
                     project it away above the join",
                    v,
                    root.schema()
                ),
            });
        }
    }
    issues
}

/// Format `$a, $b, …` for diagnostics.
fn var_list(schema: &Schema) -> String {
    schema
        .vars()
        .iter()
        .map(|v| format!("${}", v))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Name a column of a schema for diagnostics: `$var (column 2)` when in
/// range, `column 7` otherwise.
fn col_name(schema: &Schema, col: usize) -> String {
    match schema.vars().get(col) {
        Some(v) => format!("${} (column {})", v, col),
        None => format!("column {}", col),
    }
}

/// Recursively check one node; returns the statically known output
/// ordering of this operator, if any.
fn walk(op: &dyn Operator, path: &str, issues: &mut Vec<PlanIssue>) -> Option<Vec<SortKey>> {
    let info = op.introspect();
    let children = op.children();

    let mut child_orders = Vec::with_capacity(children.len());
    for (i, c) in children.iter().enumerate() {
        let child_path = format!("{}/{}[{}]", path, c.introspect().name, i);
        child_orders.push(walk(*c, &child_path, issues));
    }

    let mut report = |detail: String| {
        issues.push(PlanIssue {
            operator: info.name.clone(),
            path: path.to_string(),
            detail,
        });
    };

    let schema = op.schema();

    // 1. No operator may output the same variable twice.
    for (i, v) in schema.vars().iter().enumerate() {
        if schema.vars()[..i].contains(v) {
            report(format!("output schema {} binds ${} twice", schema, v));
            break;
        }
    }

    // 2. The output schema must match what the schema rule predicts.
    match &info.schema_rule {
        SchemaRule::Source => {
            if !children.is_empty() {
                report(format!(
                    "declared as a source but has {} children",
                    children.len()
                ));
            }
        }
        SchemaRule::Inherit(i) => match children.get(*i) {
            None => report(format!("schema inherits from missing child {}", i)),
            Some(c) => {
                if c.schema() != schema {
                    report(format!(
                        "output schema {} does not match child {}'s schema {}",
                        schema,
                        i,
                        c.schema()
                    ));
                }
            }
        },
        SchemaRule::Concat => {
            if children.len() < 2 {
                report(format!(
                    "join contract needs two children, found {}",
                    children.len()
                ));
            } else {
                let expected = children[0].schema().concat(children[1].schema());
                if &expected != schema {
                    report(format!(
                        "output schema {} is not the concatenation {} of its inputs",
                        schema, expected
                    ));
                }
            }
        }
        SchemaRule::Extends(i) => match children.get(*i) {
            None => report(format!("schema extends missing child {}", i)),
            Some(c) => {
                let prefix = c.schema().vars();
                if schema.vars().len() < prefix.len() || &schema.vars()[..prefix.len()] != prefix {
                    report(format!(
                        "output schema {} does not extend child {}'s schema {}",
                        schema,
                        i,
                        c.schema()
                    ));
                }
            }
        },
        SchemaRule::Uniform => {
            for (i, c) in children.iter().enumerate() {
                if c.schema() != schema {
                    report(format!(
                        "arm {} has schema {} but the operator outputs {}; \
                         set-operation arms must match exactly",
                        i,
                        c.schema(),
                        schema
                    ));
                }
            }
        }
        SchemaRule::PerColumnExprs => {
            if info.child_exprs.len() != schema.len() {
                report(format!(
                    "projects {} expressions but outputs {} columns ({})",
                    info.child_exprs.len(),
                    schema.len(),
                    var_list(schema)
                ));
            }
        }
        SchemaRule::Opaque => {}
    }

    // 3. Every scalar expression must resolve within its child's schema.
    for ce in &info.child_exprs {
        match children.get(ce.child) {
            None => report(format!(
                "{} evaluated against missing child {}",
                ce.role, ce.child
            )),
            Some(c) => {
                let width = c.schema().len();
                for col in ce.expr.columns() {
                    if col >= width {
                        report(format!(
                            "{} references unbound column {}; the input provides \
                             only {} ({} columns)",
                            ce.role,
                            col,
                            var_list(c.schema()),
                            width
                        ));
                    }
                }
            }
        }
    }

    // 4. A join predicate ranges over the concatenation of both inputs.
    if let Some(pred) = &info.join_predicate {
        if children.len() >= 2 {
            let width = children[0].schema().len() + children[1].schema().len();
            for col in pred.columns() {
                if col >= width {
                    report(format!(
                        "join predicate {:?} references unbound column {}; the \
                         joined inputs provide {} columns",
                        pred, col, width
                    ));
                }
            }
        }
    }

    // 5. Equi-join keys: equal arity, each key inside its input schema.
    if let Some(keys) = &info.join_keys {
        if keys.left.len() != keys.right.len() {
            report(format!(
                "join key arity mismatch: {} left keys vs {} right keys",
                keys.left.len(),
                keys.right.len()
            ));
        }
        if children.len() >= 2 {
            let (ls, rs) = (children[0].schema(), children[1].schema());
            for (i, &k) in keys.left.iter().enumerate() {
                if k >= ls.len() {
                    report(format!(
                        "left join key #{} ({}) missing from left input {}",
                        i,
                        col_name(ls, k),
                        ls
                    ));
                }
            }
            for (i, &k) in keys.right.iter().enumerate() {
                if k >= rs.len() {
                    let counterpart = keys
                        .left
                        .get(i)
                        .map(|&lk| format!(" (pairs with left key {})", col_name(ls, lk)))
                        .unwrap_or_default();
                    report(format!(
                        "right join key #{} ({}) missing from right input {}{}",
                        i,
                        col_name(rs, k),
                        rs,
                        counterpart
                    ));
                }
            }
        }
    }

    // 6. Plain column references (navigation input, aggregate inputs).
    for cc in &info.child_cols {
        match children.get(cc.child) {
            None => report(format!("{} read from missing child {}", cc.role, cc.child)),
            Some(c) => {
                if cc.col >= c.schema().len() {
                    report(format!(
                        "{} {} out of range for input schema {}",
                        cc.role,
                        col_name(c.schema(), cc.col),
                        c.schema()
                    ));
                }
            }
        }
    }

    // 7. Grouping: keys inside the input, re-emitted as the named prefix.
    if let Some(g) = &info.grouping {
        if let Some(c) = children.first() {
            let input = c.schema();
            for (j, &col) in g.cols.iter().enumerate() {
                if col >= input.len() {
                    report(format!(
                        "group key #{} ({}) not in input schema {}",
                        j,
                        col_name(input, col),
                        input
                    ));
                } else if schema.vars().get(j) != input.vars().get(col) {
                    report(format!(
                        "group key {} should appear as output column {}, found {}",
                        col_name(input, col),
                        j,
                        schema
                            .vars()
                            .get(j)
                            .map(|v| format!("${}", v))
                            .unwrap_or_else(|| "nothing".into())
                    ));
                }
            }
            if schema.len() != g.cols.len() + g.agg_outputs {
                report(format!(
                    "output schema {} has {} columns; expected {} group keys + {} aggregates",
                    schema,
                    schema.len(),
                    g.cols.len(),
                    g.agg_outputs
                ));
            }
        }
    }

    // 8. Required input orderings must be statically provable.
    for (child, key) in &info.requires_sorted {
        if let Some(c) = children.get(*child) {
            let satisfied = matches!(
                child_orders.get(*child),
                Some(Some(keys)) if keys.first() == Some(key)
            );
            if !satisfied {
                report(format!(
                    "requires input {} sorted {} on {}, but that ordering is not \
                     statically guaranteed — interpose a Sort",
                    child,
                    if key.descending { "descending" } else { "ascending" },
                    col_name(c.schema(), key.column)
                ));
            }
        }
    }

    known_order(&info, &child_orders)
}

/// The ordering this operator's output provably has, given its children's.
fn known_order(info: &OpInfo, child_orders: &[Option<Vec<SortKey>>]) -> Option<Vec<SortKey>> {
    match info.order {
        OrderEffect::Establishes => Some(info.sort_keys.clone()),
        OrderEffect::Preserves(i) => {
            let keys = child_orders.get(i)?.clone()?;
            match &info.projection_map {
                None => Some(keys),
                Some(map) => {
                    // Remap each sort column through the projection; once a
                    // key column is dropped the remaining keys are moot.
                    let mut out = Vec::new();
                    for k in keys {
                        match map.iter().position(|m| *m == Some(k.column)) {
                            Some(j) => out.push(SortKey {
                                column: j,
                                descending: k.descending,
                            }),
                            None => break,
                        }
                    }
                    if out.is_empty() {
                        None
                    } else {
                        Some(out)
                    }
                }
            }
        }
        OrderEffect::Unknown => None,
    }
}

/// Structural checks plus the semantic type pass: everything [`check`]
/// finds, then [`types::check_types`] over the same tree.
pub fn check_semantic(root: &dyn Operator) -> Vec<PlanIssue> {
    let mut issues = check(root);
    issues.extend(types::check_types(root));
    issues
}

/// Verify a tree structurally *and* semantically; `Err` carries every
/// issue found by both passes.
pub fn verify_semantic(root: &dyn Operator) -> Result<(), VerifyReport> {
    let issues = check_semantic(root);
    if issues.is_empty() {
        Ok(())
    } else {
        Err(VerifyReport { issues })
    }
}

/// Check a plan and panic with the report on failure — convenience for
/// tests asserting a plan is well-formed.
pub fn assert_verified(root: &dyn Operator) {
    if let Err(report) = verify(root) {
        panic!("{}", report);
    }
}

#[cfg(test)]
mod tests;
