//! Pass 2: satisfiability analysis over predicate trees.
//!
//! Pure functions over [`ScalarExpr`] that fold constants and propagate
//! per-column numeric intervals through conjunctions, producing a
//! three-valued [`Verdict`]:
//!
//! * [`Verdict::Unsatisfiable`] — the predicate evaluates false on
//!   *every* tuple (e.g. `x > 5 AND x < 3`, `x = 'a' AND x = 'b'`, or a
//!   comparison that contradicts known exact column bounds). Because
//!   the runtime's comparison semantics make any comparison with Null
//!   false, contradictions hold for null-valued rows too, so a planner
//!   may prune the subtree to an `EmptyOp`.
//! * [`Verdict::AlwaysTrue`] — the predicate evaluates truthy on every
//!   tuple. Claimed only from *pure logic* (literal folding and
//!   negation of pure-logic contradictions), never from column bounds:
//!   bounds describe non-null sampled values, and dropping a filter
//!   that is false on a Null would change results.
//! * [`Verdict::Unknown`] — no static claim.
//!
//! Column bounds are supplied by the caller as a closure so this crate
//! stays independent of the statistics store. Callers must only pass
//! bounds they can vouch for as **exact** over the data the predicate
//! will see (e.g. a full-coverage sample); advisory bounds make
//! `Unsatisfiable` unsound.

use nimble_algebra::expr::{compare, CmpOp, LiteralValue};
use nimble_algebra::expr::{literal_lexical, literal_num, literal_truth};
use nimble_algebra::ScalarExpr;
use std::collections::BTreeMap;

/// The result of statically analyzing a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// False on every tuple; the subtree below the filter is dead.
    Unsatisfiable,
    /// Truthy on every tuple; the filter is a no-op.
    AlwaysTrue,
    /// No static claim.
    Unknown,
}

/// Per-column numeric bounds: `Some((min, max))` when the caller knows
/// the *exact* value range of that column, `None` otherwise.
pub type ColumnBounds<'a> = &'a dyn Fn(usize) -> Option<(f64, f64)>;

/// Bounds source claiming nothing.
pub fn no_bounds(_: usize) -> Option<(f64, f64)> {
    None
}

/// Analyze a predicate with no external column knowledge (pure logic).
pub fn analyze_pure(expr: &ScalarExpr) -> Verdict {
    analyze(expr, &no_bounds)
}

/// Analyze a predicate given exact per-column numeric bounds.
pub fn analyze(expr: &ScalarExpr, bounds: ColumnBounds) -> Verdict {
    match expr {
        ScalarExpr::Lit(v) => {
            if literal_truth(v) {
                Verdict::AlwaysTrue
            } else {
                Verdict::Unsatisfiable
            }
        }
        ScalarExpr::Not(inner) => {
            // Negation is inverted from the *pure* verdict only: a
            // bounds-derived inner contradiction would flip into an
            // AlwaysTrue claim resting on sampled data, which the
            // documentation above rules out.
            match analyze_pure(inner) {
                Verdict::AlwaysTrue => Verdict::Unsatisfiable,
                Verdict::Unsatisfiable => Verdict::AlwaysTrue,
                Verdict::Unknown => Verdict::Unknown,
            }
        }
        ScalarExpr::Or(l, r) => match (analyze(l, bounds), analyze(r, bounds)) {
            (Verdict::Unsatisfiable, Verdict::Unsatisfiable) => Verdict::Unsatisfiable,
            (Verdict::AlwaysTrue, _) | (_, Verdict::AlwaysTrue) => Verdict::AlwaysTrue,
            _ => Verdict::Unknown,
        },
        ScalarExpr::And(..) | ScalarExpr::Cmp(..) => analyze_conjunction(expr, bounds),
        _ => Verdict::Unknown,
    }
}

/// Open or closed end of an interval constraint.
#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: f64,
    lo_open: bool,
    hi: f64,
    hi_open: bool,
}

impl Interval {
    fn full() -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            lo_open: false,
            hi: f64::INFINITY,
            hi_open: false,
        }
    }

    fn from_bounds(lo: f64, hi: f64) -> Interval {
        Interval {
            lo,
            lo_open: false,
            hi,
            hi_open: false,
        }
    }

    fn empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && (self.lo_open || self.hi_open))
    }

    fn clamp_lo(&mut self, v: f64, open: bool) {
        if v > self.lo || (v == self.lo && open && !self.lo_open) {
            self.lo = v;
            self.lo_open = open;
        }
    }

    fn clamp_hi(&mut self, v: f64, open: bool) {
        if v < self.hi || (v == self.hi && open && !self.hi_open) {
            self.hi = v;
            self.hi_open = open;
        }
    }
}

/// Flatten a conjunction, fold its literal conjuncts, and intersect the
/// numeric intervals its column-vs-literal comparisons imply.
fn analyze_conjunction(expr: &ScalarExpr, bounds: ColumnBounds) -> Verdict {
    let mut conjuncts = Vec::new();
    flatten_and(expr, &mut conjuncts);

    let mut intervals: BTreeMap<usize, Interval> = BTreeMap::new();
    // Non-numeric equality constraints: col = "literal". Two different
    // required lexical values contradict.
    let mut text_eq: BTreeMap<usize, String> = BTreeMap::new();
    let mut all_always_true = true;

    for c in &conjuncts {
        match conjunct_verdict(c, bounds, &mut intervals, &mut text_eq) {
            Verdict::Unsatisfiable => return Verdict::Unsatisfiable,
            Verdict::AlwaysTrue => {}
            Verdict::Unknown => all_always_true = false,
        }
    }

    for (col, iv) in &mut intervals {
        if let Some((lo, hi)) = bounds(*col) {
            iv.clamp_lo(lo, false);
            iv.clamp_hi(hi, false);
        }
        if iv.empty() {
            return Verdict::Unsatisfiable;
        }
    }

    if all_always_true {
        Verdict::AlwaysTrue
    } else {
        Verdict::Unknown
    }
}

fn flatten_and<'e>(expr: &'e ScalarExpr, out: &mut Vec<&'e ScalarExpr>) {
    match expr {
        ScalarExpr::And(l, r) => {
            flatten_and(l, out);
            flatten_and(r, out);
        }
        other => out.push(other),
    }
}

/// Analyze one conjunct: literal folding, interval accumulation for
/// `col OP literal` shapes, and recursion for nested Or/Not.
fn conjunct_verdict(
    c: &ScalarExpr,
    bounds: ColumnBounds,
    intervals: &mut BTreeMap<usize, Interval>,
    text_eq: &mut BTreeMap<usize, String>,
) -> Verdict {
    match c {
        ScalarExpr::Cmp(op, l, r) => match (l.as_ref(), r.as_ref()) {
            (ScalarExpr::Lit(lv), ScalarExpr::Lit(rv)) => {
                if compare(*op, lv, rv) {
                    Verdict::AlwaysTrue
                } else {
                    Verdict::Unsatisfiable
                }
            }
            (ScalarExpr::Col(i), ScalarExpr::Lit(v)) => {
                constrain(*op, *i, v, false, intervals, text_eq)
            }
            (ScalarExpr::Lit(v), ScalarExpr::Col(i)) => {
                constrain(*op, *i, v, true, intervals, text_eq)
            }
            _ => Verdict::Unknown,
        },
        // A nested disjunction or negation inside the conjunction gets
        // its own recursive verdict (an unsatisfiable disjunct kills
        // the whole conjunction).
        other => analyze(other, bounds),
    }
}

/// Fold `col OP lit` (or `lit OP col` when `flipped`) into the running
/// interval/text-equality state. Returns `Unknown` for shapes the state
/// cannot capture (`!=`, LIKE, non-scalar literals).
fn constrain(
    op: CmpOp,
    col: usize,
    lit: &LiteralValue,
    flipped: bool,
    intervals: &mut BTreeMap<usize, Interval>,
    text_eq: &mut BTreeMap<usize, String>,
) -> Verdict {
    // Normalize `lit OP col` to `col OP' lit` by mirroring the operator.
    let op = if flipped {
        match op {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    } else {
        op
    };

    if let Some(n) = literal_num(lit) {
        let iv = intervals.entry(col).or_insert_with(Interval::full);
        match op {
            CmpOp::Eq => {
                iv.clamp_lo(n, false);
                iv.clamp_hi(n, false);
            }
            CmpOp::Lt => iv.clamp_hi(n, true),
            CmpOp::Le => iv.clamp_hi(n, false),
            CmpOp::Gt => iv.clamp_lo(n, true),
            CmpOp::Ge => iv.clamp_lo(n, false),
            CmpOp::Ne | CmpOp::Like => return Verdict::Unknown,
        }
        if iv.empty() {
            return Verdict::Unsatisfiable;
        }
        return Verdict::Unknown;
    }

    // Non-numeric literal: only equality carries usable information —
    // two different required values for one column contradict. (The
    // runtime compares non-numeric operands lexically, so lexical
    // equality is the right equivalence.)
    if op == CmpOp::Eq {
        let want = literal_lexical(lit);
        match text_eq.get(&col) {
            Some(existing) if existing != &want => return Verdict::Unsatisfiable,
            _ => {
                text_eq.insert(col, want);
            }
        }
    }
    Verdict::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_algebra::expr::CmpOp;
    use nimble_algebra::ScalarExpr;

    fn col_cmp(op: CmpOp, col: usize, n: i64) -> ScalarExpr {
        ScalarExpr::cmp(op, ScalarExpr::Col(col), ScalarExpr::lit(n))
    }

    fn and(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::And(Box::new(l), Box::new(r))
    }

    #[test]
    fn contradictory_range_is_unsatisfiable() {
        // x > 5 AND x < 3
        let e = and(col_cmp(CmpOp::Gt, 0, 5), col_cmp(CmpOp::Lt, 0, 3));
        assert_eq!(analyze_pure(&e), Verdict::Unsatisfiable);
    }

    #[test]
    fn open_interval_edge_is_unsatisfiable() {
        // x > 5 AND x <= 5
        let e = and(col_cmp(CmpOp::Gt, 0, 5), col_cmp(CmpOp::Le, 0, 5));
        assert_eq!(analyze_pure(&e), Verdict::Unsatisfiable);
        // x >= 5 AND x <= 5 is satisfiable (x = 5).
        let e = and(col_cmp(CmpOp::Ge, 0, 5), col_cmp(CmpOp::Le, 0, 5));
        assert_eq!(analyze_pure(&e), Verdict::Unknown);
    }

    #[test]
    fn literal_comparisons_fold() {
        let e = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::lit(5i64), ScalarExpr::lit(3i64));
        assert_eq!(analyze_pure(&e), Verdict::AlwaysTrue);
        let e = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::lit(5i64), ScalarExpr::lit(3i64));
        assert_eq!(analyze_pure(&e), Verdict::Unsatisfiable);
        assert_eq!(analyze_pure(&ScalarExpr::lit(false)), Verdict::Unsatisfiable);
        assert_eq!(analyze_pure(&ScalarExpr::lit(true)), Verdict::AlwaysTrue);
    }

    #[test]
    fn conflicting_text_equalities_contradict() {
        let e = and(
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(0), ScalarExpr::lit("east")),
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(0), ScalarExpr::lit("west")),
        );
        assert_eq!(analyze_pure(&e), Verdict::Unsatisfiable);
        // Same value twice is fine.
        let e = and(
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(0), ScalarExpr::lit("east")),
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(0), ScalarExpr::lit("east")),
        );
        assert_eq!(analyze_pure(&e), Verdict::Unknown);
    }

    #[test]
    fn exact_bounds_refute_out_of_range_predicates() {
        let bounds = |c: usize| if c == 0 { Some((10.0, 20.0)) } else { None };
        // x < 5 with x in [10, 20]
        assert_eq!(
            analyze(&col_cmp(CmpOp::Lt, 0, 5), &bounds),
            Verdict::Unsatisfiable
        );
        // x = 25 with x in [10, 20]
        assert_eq!(
            analyze(&col_cmp(CmpOp::Eq, 0, 25), &bounds),
            Verdict::Unsatisfiable
        );
        // x > 15 is satisfiable within [10, 20] — and must NOT be
        // promoted to AlwaysTrue from bounds.
        assert_eq!(analyze(&col_cmp(CmpOp::Gt, 0, 15), &bounds), Verdict::Unknown);
        assert_eq!(analyze(&col_cmp(CmpOp::Ge, 0, 10), &bounds), Verdict::Unknown);
    }

    #[test]
    fn disjunction_and_negation() {
        let unsat = and(col_cmp(CmpOp::Gt, 0, 5), col_cmp(CmpOp::Lt, 0, 3));
        let sat = col_cmp(CmpOp::Gt, 0, 2);
        // unsat OR sat → Unknown; unsat OR unsat → Unsatisfiable.
        let e = ScalarExpr::Or(Box::new(unsat.clone()), Box::new(sat.clone()));
        assert_eq!(analyze_pure(&e), Verdict::Unknown);
        let e = ScalarExpr::Or(Box::new(unsat.clone()), Box::new(unsat.clone()));
        assert_eq!(analyze_pure(&e), Verdict::Unsatisfiable);
        // NOT folds only pure-logic verdicts.
        let e = ScalarExpr::Not(Box::new(ScalarExpr::lit(false)));
        assert_eq!(analyze_pure(&e), Verdict::AlwaysTrue);
        let e = ScalarExpr::Not(Box::new(unsat));
        assert_eq!(analyze_pure(&e), Verdict::AlwaysTrue);
    }

    #[test]
    fn negation_never_uses_bounds() {
        let bounds = |c: usize| if c == 0 { Some((10.0, 20.0)) } else { None };
        // NOT(x < 5): bounds would prove the inner unsatisfiable, but
        // promoting the negation to AlwaysTrue would rest on sampled
        // data; must stay Unknown.
        let e = ScalarExpr::Not(Box::new(col_cmp(CmpOp::Lt, 0, 5)));
        assert_eq!(analyze(&e, &bounds), Verdict::Unknown);
    }

    #[test]
    fn flipped_operand_order_normalizes() {
        // 5 > x AND 3 < x  ≡  x < 5 AND x > 3 — satisfiable.
        let e = and(
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::lit(5i64), ScalarExpr::Col(0)),
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::lit(3i64), ScalarExpr::Col(0)),
        );
        assert_eq!(analyze_pure(&e), Verdict::Unknown);
        // 3 > x AND 5 < x  ≡  x < 3 AND x > 5 — contradiction.
        let e = and(
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::lit(3i64), ScalarExpr::Col(0)),
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::lit(5i64), ScalarExpr::Col(0)),
        );
        assert_eq!(analyze_pure(&e), Verdict::Unsatisfiable);
    }

    #[test]
    fn numeric_strings_join_the_interval_domain() {
        // region = "10" AND region > 20 — "10" coerces numerically.
        let e = and(
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(0), ScalarExpr::lit("10")),
            col_cmp(CmpOp::Gt, 0, 20),
        );
        assert_eq!(analyze_pure(&e), Verdict::Unsatisfiable);
    }

    #[test]
    fn opaque_shapes_stay_unknown() {
        let e = ScalarExpr::Call("f".into(), vec![ScalarExpr::Col(0)]);
        assert_eq!(analyze_pure(&e), Verdict::Unknown);
        let e = and(
            ScalarExpr::Call("f".into(), vec![]),
            col_cmp(CmpOp::Gt, 0, 2),
        );
        assert_eq!(analyze_pure(&e), Verdict::Unknown);
        // x != 5 claims nothing.
        assert_eq!(analyze_pure(&col_cmp(CmpOp::Ne, 0, 5)), Verdict::Unknown);
    }
}
