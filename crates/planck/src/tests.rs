use super::*;
use nimble_algebra::expr::{CmpOp, ScalarExpr};
use nimble_algebra::ops::{
    BoxedOp, FilterOp, HashJoinOp, JoinType, MergeJoinOp, MeteredOp, ProjectOp, SortOp, UnionOp,
    ValuesOp,
};
use nimble_algebra::{ExecError, FunctionRegistry, Tuple};
use std::sync::Arc;

fn source(vars: &[&str]) -> BoxedOp {
    let schema = Schema::new(vars.iter().map(|s| s.to_string()).collect());
    Box::new(ValuesOp::new(schema, Vec::new()))
}

fn funcs() -> Arc<FunctionRegistry> {
    Arc::new(FunctionRegistry::with_builtins())
}

fn sorted_on(child: BoxedOp, column: usize) -> BoxedOp {
    Box::new(SortOp::new(
        child,
        vec![SortKey {
            column,
            descending: false,
        }],
    ))
}

/// Simulates a planner bug `UnionOp::new` would catch at construction:
/// an already-built set operation whose arms disagree.
struct BrokenUnion {
    arms: Vec<BoxedOp>,
    schema: Schema,
}

impl Operator for BrokenUnion {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn open(&mut self) -> Result<(), ExecError> {
        Ok(())
    }
    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        Ok(None)
    }
    fn close(&mut self) {}
    fn describe(&self) -> String {
        "BrokenUnion".into()
    }
    fn children(&self) -> Vec<&dyn Operator> {
        self.arms.iter().map(|a| a.as_ref()).collect()
    }
    fn rows_out(&self) -> u64 {
        0
    }
    fn introspect(&self) -> OpInfo {
        OpInfo::new("Union", SchemaRule::Uniform)
    }
}

// --- The four seeded malformed-plan fixtures ---

#[test]
fn rejects_unbound_expression_variable() {
    // Fixture 1: a projection computes $out from column 5, but its input
    // only provides [$a, $b].
    let proj = ProjectOp::new(
        source(&["a", "b"]),
        vec![("out".into(), ScalarExpr::Col(5))],
        funcs(),
    );
    let report = verify(&proj).expect_err("unbound column must be rejected");
    let issue = &report.issues[0];
    assert_eq!(issue.operator, "Project");
    assert!(issue.detail.contains("$out"), "names the variable: {}", issue);
    assert!(issue.detail.contains("column 5"), "names the column: {}", issue);
    assert!(issue.detail.contains("$a, $b"), "names the valid schema: {}", issue);
}

#[test]
fn rejects_schema_mismatched_union() {
    // Fixture 2: set-operation arms with different schemas.
    let broken = BrokenUnion {
        schema: Schema::new(vec!["x".into()]),
        arms: vec![source(&["x"]), source(&["y"])],
    };
    let report = verify(&broken).expect_err("mismatched arms must be rejected");
    let issue = &report.issues[0];
    assert_eq!(issue.operator, "Union");
    assert!(issue.detail.contains("arm 1"), "names the arm: {}", issue);
    assert!(issue.detail.contains("[y]"), "names the arm schema: {}", issue);
    assert!(issue.detail.contains("[x]"), "names the expected schema: {}", issue);
}

#[test]
fn rejects_unsorted_merge_join_input() {
    // Fixture 3: merge join straight over unsorted sources.
    let join = MergeJoinOp::new(source(&["k", "x"]), source(&["k2", "y"]), 0, 0);
    let report = verify(&join).expect_err("unproven sortedness must be rejected");
    assert_eq!(report.issues.len(), 2, "both inputs unproven: {}", report);
    let issue = &report.issues[0];
    assert_eq!(issue.operator, "MergeJoin");
    assert!(issue.detail.contains("$k"), "names the key variable: {}", issue);
    assert!(issue.detail.contains("Sort"), "suggests the fix: {}", issue);
}

#[test]
fn rejects_missing_join_key() {
    // Fixture 4: the right key column does not exist on the right input.
    let join = HashJoinOp::new(
        source(&["k", "x"]),
        source(&["k2", "y"]),
        vec![0],
        vec![7],
        JoinType::Inner,
    );
    let report = verify(&join).expect_err("missing key column must be rejected");
    let issue = &report.issues[0];
    assert_eq!(issue.operator, "HashJoin");
    assert!(issue.detail.contains("column 7"), "names the column: {}", issue);
    assert!(issue.detail.contains("$k"), "names the paired key: {}", issue);
    assert!(issue.detail.contains("[k2, y]"), "names the input: {}", issue);
}

// --- Positive paths ---

#[test]
fn accepts_well_formed_pipeline() {
    let pred = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::Col(1), ScalarExpr::Col(0));
    let filter = Box::new(FilterOp::new(source(&["a", "b"]), pred, funcs()));
    let proj = ProjectOp::new(filter, vec![("b".into(), ScalarExpr::Col(1))], funcs());
    assert_verified(&proj);
}

#[test]
fn accepts_merge_join_under_sorts() {
    let join = MergeJoinOp::new(
        sorted_on(source(&["k", "x"]), 0),
        sorted_on(source(&["k2", "y"]), 0),
        0,
        0,
    );
    assert_verified(&join);
}

#[test]
fn sortedness_survives_column_copying_projection() {
    // Sort on $k, keep [$x, $k]: the sort column moves to position 1 and
    // the ordering is still provable for a merge join keyed there.
    let sorted = sorted_on(source(&["k", "x"]), 0);
    let keep = ProjectOp::new(
        sorted,
        vec![
            ("x".into(), ScalarExpr::Col(1)),
            ("k".into(), ScalarExpr::Col(0)),
        ],
        funcs(),
    );
    let join = MergeJoinOp::new(Box::new(keep), sorted_on(source(&["k2"]), 0), 1, 0);
    assert_verified(&join);
}

#[test]
fn computed_projection_destroys_provable_order() {
    // Replacing the sort column with a computed expression must not keep
    // the sortedness proof alive.
    let sorted = sorted_on(source(&["k"]), 0);
    let computed = ProjectOp::new(
        sorted,
        vec![(
            "k".into(),
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(0), ScalarExpr::Col(0)),
        )],
        funcs(),
    );
    let join = MergeJoinOp::new(Box::new(computed), sorted_on(source(&["k2"]), 0), 0, 0);
    assert!(verify(&join).is_err());
}

#[test]
fn union_of_matching_arms_accepted() {
    let union = UnionOp::new(vec![source(&["x"]), source(&["x"])]).expect("arms match");
    assert_verified(&union);
}

#[test]
fn collision_rename_must_not_leak_to_root() {
    // HashJoin of [k, x] with [k, y] outputs [k, x, k#2, y]; unprojected,
    // that is a malformed root.
    let join = HashJoinOp::natural(source(&["k", "x"]), source(&["k", "y"]), JoinType::Inner);
    let report = verify(&join).expect_err("leaked collision column");
    assert!(report.to_string().contains("$k#2"), "names the column: {}", report);

    // Projecting the duplicate away fixes it.
    let join = HashJoinOp::natural(source(&["k", "x"]), source(&["k", "y"]), JoinType::Inner);
    let clean = ProjectOp::keep(Box::new(join), &["k", "x", "y"], funcs());
    assert_verified(&clean);
}

#[test]
fn issue_paths_locate_the_operator() {
    // The broken projection sits under a filter; the path must say so.
    let proj = Box::new(ProjectOp::new(
        source(&["a"]),
        vec![("out".into(), ScalarExpr::Col(9))],
        funcs(),
    ));
    let pred = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(0), ScalarExpr::Col(0));
    let filter = FilterOp::new(proj, pred, funcs());
    let report = verify(&filter).expect_err("nested issue found");
    assert_eq!(report.issues[0].path, "Filter/Project[0]");
}

#[test]
fn vectorized_operators_stay_transparent_to_verification() {
    // Flipping an operator into batch (or batch+parallel) mode changes
    // only its execution kernel; `introspect()` and therefore the
    // verifier's view of the plan must be identical. This is the shape
    // the engine builds with `batch_exec` on: vectorized join and sort
    // wrapped in meters.
    let join_on_k = || {
        HashJoinOp::new(
            source(&["k", "x"]),
            source(&["k2", "y"]),
            vec![0],
            vec![0],
            JoinType::Inner,
        )
    };
    for parallel in [false, true] {
        let metered_join = Box::new(MeteredOp::new(Box::new(join_on_k().vectorized(parallel))));
        let sort = SortOp::new(
            metered_join,
            vec![SortKey {
                column: 1,
                descending: false,
            }],
        )
        .vectorized(parallel);
        let plan = MeteredOp::new(Box::new(sort));
        assert_verified(&plan);

        // Same tree, scalar mode: the verifier-visible structure agrees.
        let scalar = plan_of(&join_on_k());
        let batched = plan_of(&join_on_k().vectorized(parallel));
        assert_eq!(scalar, batched, "introspection differs in batch mode");
    }
}

/// Verifier-visible fingerprint of an operator tree: op name, schema
/// rule irrelevant here — schema and children suffice for equality.
fn plan_of(op: &dyn Operator) -> String {
    let mut out = format!("{}[{}]", op.introspect().name, op.schema().vars().join(","));
    for c in op.children() {
        out.push_str(&format!("({})", plan_of(c)));
    }
    out
}

// --- Semantic pass: seeded-mutation corpus ---
//
// Each fixture is a plan (or rewrite record) broken in a way the v1
// structural checks cannot see; `check_semantic` / `audit` must catch
// every one, and the well-formed twins must stay clean. Together with
// the satisfy/rewrite_audit module tests these form the ≥12-fixture
// corpus the semantic analyzer is gated on.

use nimble_algebra::inspect::{FieldDomain, FieldType};

/// An empty typed leaf: like `source`, but with declared field domains.
struct TypedValues {
    inner: ValuesOp,
    types: Vec<FieldDomain>,
}

fn typed(vars: &[&str], types: &[FieldType]) -> Box<TypedValues> {
    let schema = Schema::new(vars.iter().map(|s| s.to_string()).collect());
    Box::new(TypedValues {
        inner: ValuesOp::new(schema, Vec::new()),
        types: types.iter().map(|&t| FieldDomain::new(t)).collect(),
    })
}

impl Operator for TypedValues {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }
    fn open(&mut self) -> Result<(), ExecError> {
        self.inner.open()
    }
    fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
        self.inner.next()
    }
    fn close(&mut self) {
        self.inner.close()
    }
    fn describe(&self) -> String {
        "TypedValues".into()
    }
    fn children(&self) -> Vec<&dyn Operator> {
        Vec::new()
    }
    fn rows_out(&self) -> u64 {
        0
    }
    fn introspect(&self) -> OpInfo {
        OpInfo::source("TypedValues").with_out_types(self.types.clone())
    }
}

#[test]
fn rejects_numeric_text_join_keys() {
    // Mutation: equi-join equating a numeric id with a text name.
    let join = HashJoinOp::new(
        typed(&["id", "x"], &[FieldType::Numeric, FieldType::Text]),
        typed(&["name"], &[FieldType::Text]),
        vec![0],
        vec![0],
        JoinType::Inner,
    );
    let issues = check_semantic(&join);
    assert_eq!(issues.len(), 1, "{:?}", issues);
    assert!(issues[0].detail.contains("incompatible"), "{}", issues[0]);
    assert!(issues[0].detail.contains("numeric"), "{}", issues[0]);
    assert!(issues[0].detail.contains("text"), "{}", issues[0]);

    // Twin: keys of matching class pass.
    let ok = HashJoinOp::new(
        typed(&["id", "x"], &[FieldType::Numeric, FieldType::Text]),
        typed(&["cust_id"], &[FieldType::Numeric]),
        vec![0],
        vec![0],
        JoinType::Inner,
    );
    assert!(check_semantic(&ok).is_empty());
}

#[test]
fn rejects_element_scalar_join_key() {
    // Mutation: joining an element-valued binding against a number.
    let join = HashJoinOp::new(
        typed(&["e"], &[FieldType::Element]),
        typed(&["total"], &[FieldType::Numeric]),
        vec![0],
        vec![0],
        JoinType::Inner,
    );
    let issues = check_semantic(&join);
    assert_eq!(issues.len(), 1, "{:?}", issues);
    assert!(issues[0].detail.contains("element"), "{}", issues[0]);
}

#[test]
fn rejects_projection_of_never_bound_field() {
    // Mutation: the planner declared $gone never bound, yet a
    // projection still copies it out.
    let proj = ProjectOp::new(
        typed(&["a", "gone"], &[FieldType::Text, FieldType::Never]),
        vec![("out".into(), ScalarExpr::Col(1))],
        funcs(),
    );
    let issues = check_semantic(&proj);
    assert_eq!(issues.len(), 1, "{:?}", issues);
    assert!(issues[0].detail.contains("never bound"), "{}", issues[0]);
    assert!(issues[0].detail.contains("$gone"), "{}", issues[0]);
}

#[test]
fn rejects_filter_over_never_bound_field() {
    // Mutation: a filter predicate reads a never-bound column.
    let pred = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::Col(1), ScalarExpr::lit(5i64));
    let filter = FilterOp::new(
        typed(&["a", "gone"], &[FieldType::Text, FieldType::Never]),
        pred,
        funcs(),
    );
    let issues = check_semantic(&filter);
    assert_eq!(issues.len(), 1, "{:?}", issues);
    assert!(issues[0].detail.contains("never bound"), "{}", issues[0]);
    assert_eq!(issues[0].operator, "Filter");
}

#[test]
fn rejects_sort_over_mixed_type_union_column() {
    // Mutation: union arms disagree on $v's class (numeric vs text);
    // sorting the union on $v interleaves numeric and lexical runs.
    let arms: Vec<BoxedOp> = vec![
        typed(&["v"], &[FieldType::Numeric]),
        typed(&["v"], &[FieldType::Text]),
    ];
    let union = UnionOp::new(arms).expect("arms match structurally");
    let sort = SortOp::new(
        Box::new(union),
        vec![SortKey {
            column: 0,
            descending: false,
        }],
    );
    let issues = check_semantic(&sort);
    assert_eq!(issues.len(), 1, "{:?}", issues);
    assert!(issues[0].detail.contains("mixed"), "{}", issues[0]);
    assert_eq!(issues[0].operator, "Sort");

    // Twin: agreeing arms sort cleanly.
    let arms: Vec<BoxedOp> = vec![
        typed(&["v"], &[FieldType::Numeric]),
        typed(&["v"], &[FieldType::Numeric]),
    ];
    let union = UnionOp::new(arms).expect("arms match");
    let sort = SortOp::new(
        Box::new(union),
        vec![SortKey {
            column: 0,
            descending: false,
        }],
    );
    assert!(check_semantic(&sort).is_empty());
}

#[test]
fn semantic_pass_is_silent_on_untyped_plans() {
    // The engine's usual case: no declared types anywhere. Every check
    // must stay quiet — `Unknown` tolerates everything.
    let join = HashJoinOp::natural(source(&["k", "x"]), source(&["k", "y"]), JoinType::Inner);
    let clean = ProjectOp::keep(Box::new(join), &["k", "x", "y"], funcs());
    assert!(check_semantic(&clean).is_empty());
}

#[test]
fn opaque_operators_are_tolerated() {
    // No introspection override → conservative acceptance.
    struct Mystery {
        child: BoxedOp,
        schema: Schema,
    }
    impl Operator for Mystery {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn open(&mut self) -> Result<(), ExecError> {
            Ok(())
        }
        fn next(&mut self) -> Result<Option<Tuple>, ExecError> {
            Ok(None)
        }
        fn close(&mut self) {}
        fn describe(&self) -> String {
            "Mystery".into()
        }
        fn children(&self) -> Vec<&dyn Operator> {
            vec![self.child.as_ref()]
        }
        fn rows_out(&self) -> u64 {
            0
        }
    }
    let op = Mystery {
        child: source(&["a"]),
        schema: Schema::new(vec!["entirely".into(), "different".into()]),
    };
    assert_verified(&op);
}
