//! Pass 3: rewrite-equivalence auditing.
//!
//! The optimizer reshapes plans — fold reordering, predicate pushdown,
//! build-side swaps, vectorized substitution, plan-cache reuse — and
//! each rewrite is *assumed* meaning-preserving. This pass checks the
//! invariants a meaning-preserving rewrite cannot break. The optimizer
//! records a [`RewriteRecord`] (a before/after pair of cheap
//! [`Fingerprint`]s) for every rewrite it applies; [`audit`] then
//! verifies:
//!
//! * **Schema preservation** — the rewritten plan binds the same
//!   columns. Order-sensitive rewrites ([`RewriteRecord::ordered`])
//!   must keep the exact sequence; reorderings (fold order, build-side
//!   swap) must keep the *set*.
//! * **Key-set preservation** — the join/fold keys the plan equates
//!   must survive the rewrite as a set.
//! * **Cardinality-bound monotonicity** — a rewrite may tighten a
//!   cardinality bound (pruning, pushdown) but never loosen it: a
//!   larger bound after rewriting means the rewrite added rows.
//! * **Extra invariants** — rule-specific payloads (e.g. the multiset
//!   of pushed predicates) compared as unordered sets.
//!
//! Fingerprints are deliberately string-shaped: they must survive
//! serialization into cached-plan stamps and diff cheaply.

use crate::PlanIssue;

/// A cheap structural summary of a plan (or plan fragment) taken before
/// or after a rewrite.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Fingerprint {
    /// Output column names, in plan order.
    pub columns: Vec<String>,
    /// Join/fold key descriptions (e.g. `"$i"`), compared as a set.
    pub keys: Vec<String>,
    /// Upper bound on the result cardinality, when the planner has one.
    pub card_bound: Option<u64>,
    /// Rule-specific payload (e.g. pushed predicate renderings),
    /// compared as an unordered set.
    pub extra: Vec<String>,
    /// Source labels feeding the plan fragment, compared as a set. A
    /// meaning-preserving rewrite must not change *where* answers come
    /// from — dropping or inventing a source here means provenance
    /// (lineage key-sets) would silently shift under the rewrite.
    pub sources: Vec<String>,
}

impl Fingerprint {
    pub fn new(columns: Vec<String>) -> Fingerprint {
        Fingerprint {
            columns,
            ..Fingerprint::default()
        }
    }

    pub fn with_keys(mut self, keys: Vec<String>) -> Fingerprint {
        self.keys = keys;
        self
    }

    pub fn with_card_bound(mut self, bound: u64) -> Fingerprint {
        self.card_bound = Some(bound);
        self
    }

    pub fn with_extra(mut self, extra: Vec<String>) -> Fingerprint {
        self.extra = extra;
        self
    }

    pub fn with_sources(mut self, sources: Vec<String>) -> Fingerprint {
        self.sources = sources;
        self
    }
}

/// One optimizer rewrite: the rule that fired and the fingerprints
/// taken immediately before and after it.
#[derive(Debug, Clone)]
pub struct RewriteRecord {
    /// Rule name for diagnostics (`"fold-reorder"`, `"pushdown"`,
    /// `"build-side-swap"`, `"vectorize"`, `"plan-cache-hit"`).
    pub rule: String,
    /// Whether the rewrite promises to preserve column *order* (a
    /// substitution) rather than just the column set (a reordering).
    pub ordered: bool,
    pub before: Fingerprint,
    pub after: Fingerprint,
}

impl RewriteRecord {
    pub fn new(
        rule: impl Into<String>,
        ordered: bool,
        before: Fingerprint,
        after: Fingerprint,
    ) -> RewriteRecord {
        RewriteRecord {
            rule: rule.into(),
            ordered,
            before,
            after,
        }
    }
}

fn as_set(items: &[String]) -> Vec<&String> {
    let mut v: Vec<&String> = items.iter().collect();
    v.sort();
    v
}

/// Rules whose *payload and source set may shrink* (never grow): a
/// narrowing rewrite proves some inputs cannot contribute answers and
/// drops them. Shard pruning is the canonical case — `extra` carries
/// the shard set and `after` keeps only the survivors, and the pruned
/// shards' source labels legitimately leave the plan with them. Every
/// other rule keeps strict set equality: silently losing a payload
/// entry or a source there means the rewrite changed meaning.
fn narrowing_rule(rule: &str) -> bool {
    rule == "shard-prune"
}

/// `subset ⊆ superset` over string multiset keys (set semantics).
fn is_subset(subset: &[String], superset: &[String]) -> bool {
    subset.iter().all(|s| superset.contains(s))
}

/// Check every recorded rewrite for invariant violations.
pub fn audit(records: &[RewriteRecord]) -> Vec<PlanIssue> {
    let mut issues = Vec::new();
    for r in records {
        let mut report = |detail: String| {
            issues.push(PlanIssue {
                operator: format!("rewrite:{}", r.rule),
                path: format!("rewrite:{}", r.rule),
                detail,
            });
        };

        if r.ordered {
            if r.before.columns != r.after.columns {
                report(format!(
                    "schema changed across an order-preserving rewrite: \
                     [{}] became [{}]",
                    r.before.columns.join(", "),
                    r.after.columns.join(", ")
                ));
            }
        } else if as_set(&r.before.columns) != as_set(&r.after.columns) {
            report(format!(
                "column set changed across the rewrite: [{}] became [{}]",
                r.before.columns.join(", "),
                r.after.columns.join(", ")
            ));
        }

        if as_set(&r.before.keys) != as_set(&r.after.keys) {
            report(format!(
                "join/fold key set changed across the rewrite: {{{}}} became {{{}}}",
                r.before.keys.join(", "),
                r.after.keys.join(", ")
            ));
        }

        if let (Some(before), Some(after)) = (r.before.card_bound, r.after.card_bound) {
            if after > before {
                report(format!(
                    "cardinality bound grew from {} to {}; a rewrite may \
                     tighten a bound but never loosen it",
                    before, after
                ));
            }
        }

        if narrowing_rule(&r.rule) {
            if !is_subset(&r.after.extra, &r.before.extra) {
                report(format!(
                    "narrowing rewrite invented payload entries: {{{}}} is not \
                     a subset of {{{}}}",
                    r.after.extra.join(", "),
                    r.before.extra.join(", ")
                ));
            }
            if !is_subset(&r.after.sources, &r.before.sources) {
                report(format!(
                    "narrowing rewrite invented sources: {{{}}} is not a \
                     subset of {{{}}} — answers would claim provenance the \
                     plan never read",
                    r.after.sources.join(", "),
                    r.before.sources.join(", ")
                ));
            }
        } else {
            if as_set(&r.before.extra) != as_set(&r.after.extra) {
                report(format!(
                    "rewrite payload changed: {{{}}} became {{{}}}",
                    r.before.extra.join(", "),
                    r.after.extra.join(", ")
                ));
            }

            if as_set(&r.before.sources) != as_set(&r.after.sources) {
                report(format!(
                    "source set changed across the rewrite: {{{}}} became {{{}}} \
                     — provenance would misattribute answers",
                    r.before.sources.join(", "),
                    r.after.sources.join(", ")
                ));
            }
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn faithful_reorder_passes() {
        let r = RewriteRecord::new(
            "fold-reorder",
            false,
            Fingerprint::new(cols(&["a", "b", "c"])).with_keys(cols(&["$i"])),
            Fingerprint::new(cols(&["b", "c", "a"])).with_keys(cols(&["$i"])),
        );
        assert!(audit(&[r]).is_empty());
    }

    #[test]
    fn dropped_column_is_caught() {
        let r = RewriteRecord::new(
            "fold-reorder",
            false,
            Fingerprint::new(cols(&["a", "b", "c"])),
            Fingerprint::new(cols(&["a", "b"])),
        );
        let issues = audit(&[r]);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].detail.contains("column set changed"));
        assert!(issues[0].operator.contains("fold-reorder"));
    }

    #[test]
    fn changed_key_set_is_caught() {
        let r = RewriteRecord::new(
            "build-side-swap",
            false,
            Fingerprint::new(cols(&["a", "b"])).with_keys(cols(&["$i"])),
            Fingerprint::new(cols(&["b", "a"])).with_keys(cols(&["$j"])),
        );
        let issues = audit(&[r]);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].detail.contains("key set changed"));
    }

    #[test]
    fn loosened_cardinality_bound_is_caught() {
        let r = RewriteRecord::new(
            "pushdown",
            true,
            Fingerprint::new(cols(&["a"])).with_card_bound(100),
            Fingerprint::new(cols(&["a"])).with_card_bound(250),
        );
        let issues = audit(&[r]);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].detail.contains("cardinality bound grew"));
        // Tightening is fine.
        let r = RewriteRecord::new(
            "pushdown",
            true,
            Fingerprint::new(cols(&["a"])).with_card_bound(100),
            Fingerprint::new(cols(&["a"])).with_card_bound(40),
        );
        assert!(audit(&[r]).is_empty());
    }

    #[test]
    fn ordered_rewrite_must_keep_column_order() {
        let r = RewriteRecord::new(
            "vectorize",
            true,
            Fingerprint::new(cols(&["a", "b"])),
            Fingerprint::new(cols(&["b", "a"])),
        );
        let issues = audit(&[r]);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].detail.contains("order-preserving"));
        // The same permutation is legal for an unordered rewrite.
        let r = RewriteRecord::new(
            "fold-reorder",
            false,
            Fingerprint::new(cols(&["a", "b"])),
            Fingerprint::new(cols(&["b", "a"])),
        );
        assert!(audit(&[r]).is_empty());
    }

    #[test]
    fn dropped_pushdown_predicate_is_caught() {
        let r = RewriteRecord::new(
            "pushdown",
            true,
            Fingerprint::new(cols(&["a"])).with_extra(cols(&["$t > 5", "$r = 'NW'"])),
            Fingerprint::new(cols(&["a"])).with_extra(cols(&["$t > 5"])),
        );
        let issues = audit(&[r]);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].detail.contains("payload changed"));
    }

    #[test]
    fn changed_source_set_is_caught() {
        let r = RewriteRecord::new(
            "fold-reorder",
            false,
            Fingerprint::new(cols(&["a", "b"])).with_sources(cols(&["crm", "billing"])),
            Fingerprint::new(cols(&["b", "a"])).with_sources(cols(&["crm"])),
        );
        let issues = audit(&[r]);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].detail.contains("source set changed"));
        // A permutation of the same sources is fine.
        let r = RewriteRecord::new(
            "fold-reorder",
            false,
            Fingerprint::new(cols(&["a", "b"])).with_sources(cols(&["crm", "billing"])),
            Fingerprint::new(cols(&["b", "a"])).with_sources(cols(&["billing", "crm"])),
        );
        assert!(audit(&[r]).is_empty());
    }

    #[test]
    fn shard_prune_may_narrow_payload_and_sources() {
        // Pruning drops shards whose stats bounds contradict the
        // predicate: payload (shard set) and per-shard source labels
        // legitimately shrink.
        let r = RewriteRecord::new(
            "shard-prune",
            false,
            Fingerprint::new(cols(&["a", "b"]))
                .with_extra(cols(&["shard:0", "shard:1", "shard:2", "shard:3"]))
                .with_sources(cols(&["erp#0", "erp#1", "erp#2", "erp#3"]))
                .with_card_bound(1000),
            Fingerprint::new(cols(&["a", "b"]))
                .with_extra(cols(&["shard:1", "shard:3"]))
                .with_sources(cols(&["erp#1", "erp#3"]))
                .with_card_bound(500),
        );
        assert!(audit(&[r]).is_empty());
    }

    #[test]
    fn shard_prune_must_not_invent_shards() {
        let r = RewriteRecord::new(
            "shard-prune",
            false,
            Fingerprint::new(cols(&["a"])).with_extra(cols(&["shard:0", "shard:1"])),
            Fingerprint::new(cols(&["a"])).with_extra(cols(&["shard:0", "shard:7"])),
        );
        let issues = audit(&[r]);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].detail.contains("invented payload"));
        // Inventing a source label is caught independently.
        let r = RewriteRecord::new(
            "shard-prune",
            false,
            Fingerprint::new(cols(&["a"])).with_sources(cols(&["erp#0"])),
            Fingerprint::new(cols(&["a"])).with_sources(cols(&["erp#0", "erp#9"])),
        );
        let issues = audit(&[r]);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].detail.contains("invented sources"));
    }

    #[test]
    fn shard_prune_still_subject_to_column_and_bound_checks() {
        // Narrowing relaxes only payload/sources — a pruned plan must
        // still bind the same columns and never loosen its bound.
        let r = RewriteRecord::new(
            "shard-prune",
            false,
            Fingerprint::new(cols(&["a", "b"])).with_card_bound(100),
            Fingerprint::new(cols(&["a"])).with_card_bound(400),
        );
        let issues = audit(&[r]);
        assert_eq!(issues.len(), 2);
        assert!(issues.iter().any(|i| i.detail.contains("column set changed")));
        assert!(issues.iter().any(|i| i.detail.contains("cardinality bound grew")));
    }

    #[test]
    fn missing_bounds_make_no_monotonicity_claim() {
        let r = RewriteRecord::new(
            "plan-cache-hit",
            true,
            Fingerprint::new(cols(&["a"])),
            Fingerprint::new(cols(&["a"])).with_card_bound(10),
        );
        assert!(audit(&[r]).is_empty());
    }
}
