//! Pass 1: bottom-up type/schema inference over an operator tree.
//!
//! Every operator output gets a typed field domain — coercion class
//! (numeric / text / element) plus nullability — derived from the
//! declared [`OpInfo::out_types`] of leaves and each operator's
//! [`SchemaRule`]. The pass then checks the inferred domains against the
//! operations performed on them:
//!
//! * **Join-key compatibility** — equi-join key pairs whose coercion
//!   classes disagree (`numeric` vs `text`, `element` vs any scalar)
//!   would silently compare lexically or never match; flagged.
//! * **Never-bound references** — any expression, column reference, join
//!   key, group key, or sort requirement over a column typed
//!   [`FieldType::Never`] is an error: the planner declared the column
//!   can never hold a value.
//! * **Mixed-type sort keys** — sorting on a column whose contributing
//!   types disagree ([`FieldType::Mixed`], e.g. union arms typing it
//!   differently) gives an interleaved lexical/numeric order; flagged.
//!
//! The pass is *tolerant by construction*: operators without declared
//! types infer [`FieldType::Unknown`], which is compatible with
//! everything, so plans built from undeclared sources (the engine's
//! usual case) can never produce a false positive. Declared types opt a
//! subtree into stronger checking.

use crate::PlanIssue;
use nimble_algebra::inspect::{FieldDomain, FieldType, OpInfo, OrderEffect, SchemaRule};
use nimble_algebra::{Operator, ScalarExpr};

/// Infer the typed domains of an operator's output columns without
/// collecting issues. One domain per schema column.
pub fn infer(op: &dyn Operator) -> Vec<FieldDomain> {
    let mut sink = Vec::new();
    walk_types(op, &op.introspect().name, &mut sink)
}

/// Walk a tree bottom-up, checking typed-domain invariants; returns
/// every issue found. Run by [`crate::check_semantic`] after the
/// structural pass.
pub fn check_types(root: &dyn Operator) -> Vec<PlanIssue> {
    let mut issues = Vec::new();
    walk_types(root, &root.introspect().name, &mut issues);
    issues
}

fn walk_types(op: &dyn Operator, path: &str, issues: &mut Vec<PlanIssue>) -> Vec<FieldDomain> {
    let info = op.introspect();
    let children = op.children();
    let child_domains: Vec<Vec<FieldDomain>> = children
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let child_path = format!("{}/{}[{}]", path, c.introspect().name, i);
            walk_types(*c, &child_path, issues)
        })
        .collect();

    let mut report = |detail: String| {
        issues.push(PlanIssue {
            operator: info.name.clone(),
            path: path.to_string(),
            detail,
        });
    };

    let schema = op.schema();
    let width = schema.len();

    // Derive output domains from the schema rule.
    let mut derived: Vec<FieldDomain> = match &info.schema_rule {
        SchemaRule::Inherit(i) => child_domains.get(*i).cloned().unwrap_or_default(),
        SchemaRule::Concat => {
            let mut out = Vec::new();
            for (i, c) in children.iter().enumerate().take(2) {
                let mut d = child_domains.get(i).cloned().unwrap_or_default();
                d.resize(c.schema().len(), FieldDomain::unknown());
                out.extend(d);
            }
            out
        }
        SchemaRule::Extends(i) => child_domains.get(*i).cloned().unwrap_or_default(),
        SchemaRule::Uniform => {
            let mut out: Vec<FieldDomain> = vec![FieldDomain::new(FieldType::Never); width];
            for d in &child_domains {
                for (j, slot) in out.iter_mut().enumerate() {
                    let contributed = d.get(j).copied().unwrap_or_else(FieldDomain::unknown);
                    *slot = slot.join(contributed);
                }
            }
            if child_domains.is_empty() {
                out = vec![FieldDomain::unknown(); width];
            }
            out
        }
        SchemaRule::PerColumnExprs => {
            let input = child_domains.first().map(Vec::as_slice).unwrap_or(&[]);
            info.child_exprs
                .iter()
                .map(|ce| type_expr(&ce.expr, input))
                .collect()
        }
        SchemaRule::Source | SchemaRule::Opaque => Vec::new(),
    };
    derived.resize(width, FieldDomain::unknown());

    // Declared types override the derivation (leaves are the main case);
    // the declaration must cover the schema exactly.
    let domains = match &info.out_types {
        Some(declared) => {
            if declared.len() != width {
                report(format!(
                    "declares {} typed field domains but outputs {} columns ({})",
                    declared.len(),
                    width,
                    schema
                ));
                let mut d = declared.clone();
                d.resize(width, FieldDomain::unknown());
                d
            } else {
                declared.clone()
            }
        }
        None => derived,
    };

    let domain_of = |ds: &[FieldDomain], col: usize| -> FieldDomain {
        ds.get(col).copied().unwrap_or_else(FieldDomain::unknown)
    };
    let col_desc = |c: &dyn Operator, col: usize| -> String {
        match c.schema().vars().get(col) {
            Some(v) => format!("${}", v),
            None => format!("column {}", col),
        }
    };

    // Join-key coercion classes must be compatible, and no key may be a
    // never-bound column.
    if let Some(keys) = &info.join_keys {
        if children.len() >= 2 {
            let (lc, rc) = (children[0], children[1]);
            let (ld, rd) = (&child_domains[0], &child_domains[1]);
            for (i, (&lk, &rk)) in keys.left.iter().zip(keys.right.iter()).enumerate() {
                let lt = domain_of(ld, lk).ty;
                let rt = domain_of(rd, rk).ty;
                if !lt.comparable(rt) {
                    report(format!(
                        "join key #{} compares {} ({}) with {} ({}); incompatible \
                         coercion classes can never match as equi-join keys",
                        i,
                        col_desc(lc, lk),
                        lt,
                        col_desc(rc, rk),
                        rt
                    ));
                }
            }
        }
    }

    // References to never-bound columns: expressions, plain column
    // references, group keys, and sort requirements.
    for ce in &info.child_exprs {
        if let Some(c) = children.get(ce.child) {
            let ds = &child_domains[ce.child];
            for col in ce.expr.columns() {
                if domain_of(ds, col).ty == FieldType::Never {
                    report(format!(
                        "{} references {}, which is declared never bound",
                        ce.role,
                        col_desc(*c, col)
                    ));
                }
            }
        }
    }
    for cc in &info.child_cols {
        if let Some(c) = children.get(cc.child) {
            if domain_of(&child_domains[cc.child], cc.col).ty == FieldType::Never {
                report(format!(
                    "{} reads {}, which is declared never bound",
                    cc.role,
                    col_desc(*c, cc.col)
                ));
            }
        }
    }
    if let Some(g) = &info.grouping {
        if let Some(c) = children.first() {
            for &col in &g.cols {
                if domain_of(&child_domains[0], col).ty == FieldType::Never {
                    report(format!(
                        "group key {} is declared never bound",
                        col_desc(*c, col)
                    ));
                }
            }
        }
    }

    // Sort keys over mixed-type columns order nonsensically (numeric and
    // lexical runs interleave); flag both established orders and
    // required input orders.
    if info.order == OrderEffect::Establishes {
        for key in &info.sort_keys {
            let d = domain_of(&domains, key.column);
            if d.ty == FieldType::Mixed {
                report(format!(
                    "sorts on {} whose inferred type is mixed; contributing \
                     inputs disagree on its coercion class",
                    schema
                        .vars()
                        .get(key.column)
                        .map(|v| format!("${}", v))
                        .unwrap_or_else(|| format!("column {}", key.column))
                ));
            }
        }
    }
    for (child, key) in &info.requires_sorted {
        if let Some(c) = children.get(*child) {
            let d = domain_of(&child_domains[*child], key.column);
            if d.ty == FieldType::Mixed {
                report(format!(
                    "requires input {} sorted on {} whose inferred type is mixed",
                    child,
                    col_desc(*c, key.column)
                ));
            }
            if d.ty == FieldType::Never {
                report(format!(
                    "requires input {} sorted on {}, which is declared never bound",
                    child,
                    col_desc(*c, key.column)
                ));
            }
        }
    }

    domains
}

/// The typed domain of a scalar expression over an input's domains.
/// Conservative: anything the lattice cannot pin down is `Unknown`.
fn type_expr(e: &ScalarExpr, input: &[FieldDomain]) -> FieldDomain {
    match e {
        ScalarExpr::Col(i) => input
            .get(*i)
            .copied()
            .unwrap_or_else(FieldDomain::unknown),
        ScalarExpr::Lit(v) => {
            let d = FieldDomain::new(FieldType::of_literal(v));
            if nimble_algebra::expr::literal_is_null(v) {
                d.nullable()
            } else {
                d
            }
        }
        // Comparisons and boolean connectives always produce a Bool,
        // which the lattice does not track; arithmetic always produces a
        // number (or errors out of the pipeline entirely).
        ScalarExpr::Cmp(..) | ScalarExpr::And(..) | ScalarExpr::Or(..) | ScalarExpr::Not(_) => {
            FieldDomain::new(FieldType::Unknown)
        }
        ScalarExpr::Arith(..) | ScalarExpr::Neg(_) => FieldDomain::new(FieldType::Numeric),
        ScalarExpr::Call(..) => FieldDomain::unknown(),
        ScalarExpr::PathFirst(..) => FieldDomain::unknown(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_algebra::ops::{HashJoinOp, JoinType, ValuesOp};
    use nimble_algebra::Schema;

    struct Typed {
        inner: ValuesOp,
        types: Vec<FieldDomain>,
    }

    fn typed(vars: &[&str], types: Vec<FieldDomain>) -> Box<Typed> {
        let schema = Schema::new(vars.iter().map(|s| s.to_string()).collect());
        Box::new(Typed {
            inner: ValuesOp::new(schema, Vec::new()),
            types,
        })
    }

    impl Operator for Typed {
        fn schema(&self) -> &Schema {
            self.inner.schema()
        }
        fn open(&mut self) -> Result<(), nimble_algebra::ExecError> {
            self.inner.open()
        }
        fn next(&mut self) -> Result<Option<nimble_algebra::Tuple>, nimble_algebra::ExecError> {
            self.inner.next()
        }
        fn close(&mut self) {
            self.inner.close()
        }
        fn describe(&self) -> String {
            "TypedValues".into()
        }
        fn children(&self) -> Vec<&dyn Operator> {
            Vec::new()
        }
        fn rows_out(&self) -> u64 {
            0
        }
        fn introspect(&self) -> OpInfo {
            OpInfo::source("TypedValues").with_out_types(self.types.clone())
        }
    }

    #[test]
    fn untyped_leaves_infer_unknown_everywhere() {
        let join = HashJoinOp::new(
            Box::new(ValuesOp::new(Schema::new(vec!["k".into()]), Vec::new())),
            Box::new(ValuesOp::new(Schema::new(vec!["k2".into()]), Vec::new())),
            vec![0],
            vec![0],
            JoinType::Inner,
        );
        assert!(check_types(&join).is_empty());
        assert!(infer(&join).iter().all(|d| d.ty == FieldType::Unknown));
    }

    #[test]
    fn concat_carries_declared_types_through_joins() {
        let join = HashJoinOp::new(
            typed(&["k"], vec![FieldDomain::new(FieldType::Numeric)]),
            typed(&["k2"], vec![FieldDomain::new(FieldType::Numeric)]),
            vec![0],
            vec![0],
            JoinType::Inner,
        );
        assert!(check_types(&join).is_empty());
        let inferred = infer(&join);
        assert_eq!(inferred.len(), 2);
        assert!(inferred.iter().all(|d| d.ty == FieldType::Numeric));
    }

    #[test]
    fn declared_arity_mismatch_is_flagged() {
        let op = typed(&["a", "b"], vec![FieldDomain::new(FieldType::Text)]);
        let issues = check_types(op.as_ref());
        assert_eq!(issues.len(), 1);
        assert!(issues[0].detail.contains("1 typed field domains"));
    }
}
