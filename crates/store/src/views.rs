//! Materialized views over the mediated schema.

use nimble_xml::Document;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Freshness verdict for a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Within TTL (or no TTL set).
    Fresh,
    /// Present but older than its TTL; usable only under a stale-tolerant
    /// policy.
    Stale,
}

/// One materialized view: the stored result of a mediated-schema query.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// The mediated collection (or query label) this materializes.
    pub name: String,
    /// The defining query text, kept for refresh.
    pub definition: String,
    /// The stored result.
    pub document: Arc<Document>,
    /// Logical time of the last refresh.
    pub refreshed_at: u64,
    /// Maximum age (ticks) before the view counts as stale; `None` means
    /// refresh-on-demand only (never auto-stale).
    pub ttl: Option<u64>,
    /// Lookup hits since materialization.
    pub hits: u64,
    /// Node count, the size proxy used against storage budgets.
    pub size_nodes: usize,
}

impl MaterializedView {
    /// Freshness at a given logical time.
    pub fn freshness(&self, now: u64) -> Freshness {
        match self.ttl {
            Some(ttl) if now.saturating_sub(self.refreshed_at) > ttl => Freshness::Stale,
            _ => Freshness::Fresh,
        }
    }
}

/// Thread-safe store of materialized views, keyed by view name.
#[derive(Default)]
pub struct ViewStore {
    views: RwLock<HashMap<String, MaterializedView>>,
}

impl ViewStore {
    pub fn new() -> ViewStore {
        ViewStore::default()
    }

    /// Materialize (or re-materialize) a view.
    pub fn materialize(
        &self,
        name: &str,
        definition: &str,
        document: Arc<Document>,
        now: u64,
        ttl: Option<u64>,
    ) {
        let size_nodes = document.len();
        let mut views = self.views.write();
        let hits = views.get(name).map(|v| v.hits).unwrap_or(0);
        views.insert(
            name.to_string(),
            MaterializedView {
                name: name.to_string(),
                definition: definition.to_string(),
                document,
                refreshed_at: now,
                ttl,
                hits,
                size_nodes,
            },
        );
    }

    /// Look up a view, counting the hit. Returns the stored document and
    /// its freshness at `now`.
    pub fn lookup(&self, name: &str, now: u64) -> Option<(Arc<Document>, Freshness)> {
        let mut views = self.views.write();
        let v = views.get_mut(name)?;
        v.hits += 1;
        Some((Arc::clone(&v.document), v.freshness(now)))
    }

    /// Peek without counting a hit.
    pub fn peek(&self, name: &str) -> Option<MaterializedView> {
        self.views.read().get(name).cloned()
    }

    /// Remove a view; true if it existed.
    pub fn drop_view(&self, name: &str) -> bool {
        self.views.write().remove(name).is_some()
    }

    /// Names of all views needing refresh at `now` (stale by TTL).
    pub fn stale_views(&self, now: u64) -> Vec<String> {
        self.views
            .read()
            .values()
            .filter(|v| v.freshness(now) == Freshness::Stale)
            .map(|v| v.name.clone())
            .collect()
    }

    /// All view names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.views.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Total stored size in nodes.
    pub fn total_size(&self) -> usize {
        self.views.read().values().map(|v| v.size_nodes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_xml::parse;

    fn doc(xml: &str) -> Arc<Document> {
        parse(xml).unwrap()
    }

    #[test]
    fn materialize_and_lookup() {
        let store = ViewStore::new();
        store.materialize("customers", "WHERE ...", doc("<rows><row/></rows>"), 10, Some(5));
        let (d, f) = store.lookup("customers", 12).unwrap();
        assert_eq!(f, Freshness::Fresh);
        assert_eq!(d.root().name(), Some("rows"));
        assert_eq!(store.peek("customers").unwrap().hits, 1);
    }

    #[test]
    fn ttl_staleness() {
        let store = ViewStore::new();
        store.materialize("v", "q", doc("<r/>"), 0, Some(5));
        assert_eq!(store.lookup("v", 5).unwrap().1, Freshness::Fresh);
        assert_eq!(store.lookup("v", 6).unwrap().1, Freshness::Stale);
        assert_eq!(store.stale_views(6), vec!["v"]);
        // Refresh resets the clock and keeps the hit count.
        store.materialize("v", "q", doc("<r/>"), 6, Some(5));
        assert_eq!(store.lookup("v", 7).unwrap().1, Freshness::Fresh);
        assert_eq!(store.peek("v").unwrap().hits, 3);
    }

    #[test]
    fn no_ttl_never_stale() {
        let store = ViewStore::new();
        store.materialize("v", "q", doc("<r/>"), 0, None);
        assert_eq!(store.lookup("v", u64::MAX).unwrap().1, Freshness::Fresh);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let store = Arc::new(ViewStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let name = format!("v{}", (t + i) % 4);
                    store.materialize(&name, "q", doc("<r/>"), i, Some(5));
                    let _ = store.lookup(&name, i);
                    let _ = store.stale_views(i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.names().len(), 4);
    }

    #[test]
    fn drop_and_sizes() {
        let store = ViewStore::new();
        store.materialize("a", "q", doc("<r><x>1</x></r>"), 0, None);
        store.materialize("b", "q", doc("<r/>"), 0, None);
        assert_eq!(store.names(), vec!["a", "b"]);
        assert!(store.total_size() >= 4);
        assert!(store.drop_view("a"));
        assert!(!store.drop_view("a"));
        assert_eq!(store.names(), vec!["b"]);
    }
}
