//! View-selection policies and the workload monitor feeding them.
//!
//! The paper names this its central §3.3 research challenge: which views
//! over the mediated schema to materialize, given that (1) sources are
//! autonomous and overlapping, (2) the query load shifts, and (3) remote
//! cost estimates are poor. The [`WorkloadMonitor`] observes the actual
//! load (frequencies and *measured* fragment costs — sidestepping the
//! estimation problem), and [`select_views`] turns those observations
//! into a materialization set under a storage budget. Experiment E2
//! compares the policies.

use parking_lot::Mutex;
use std::collections::HashMap;

/// A candidate view with the observed statistics the selector needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateView {
    pub name: String,
    /// Queries answered by this view in the observation window.
    pub frequency: u64,
    /// Measured mean cost of answering virtually (milliseconds).
    pub virtual_cost_ms: f64,
    /// Materialized size in nodes.
    pub size_nodes: usize,
}

impl CandidateView {
    /// Benefit rate: latency saved per unit of storage if materialized.
    /// (Answering from the store is charged ~zero; refresh cost is the
    /// policy user's concern via TTLs.)
    pub fn benefit_per_node(&self) -> f64 {
        if self.size_nodes == 0 {
            return 0.0;
        }
        (self.frequency as f64 * self.virtual_cost_ms) / self.size_nodes as f64
    }
}

/// Materialization policies compared in experiment E2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Pure virtual integration: nothing materialized.
    None,
    /// No pre-materialization; rely on the LRU result cache only.
    CacheOnly,
    /// Greedy knapsack by benefit-per-node under the budget.
    Greedy,
    /// Materialize every candidate that fits cumulatively (the emulated
    /// "warehouse" arm: everything local, freshness via TTL refresh).
    All,
}

/// Choose which views to materialize under `budget_nodes`.
pub fn select_views(
    policy: SelectionPolicy,
    candidates: &[CandidateView],
    budget_nodes: usize,
) -> Vec<String> {
    match policy {
        SelectionPolicy::None | SelectionPolicy::CacheOnly => Vec::new(),
        SelectionPolicy::All => {
            let mut used = 0usize;
            candidates
                .iter()
                .filter(|c| {
                    if used + c.size_nodes <= budget_nodes {
                        used += c.size_nodes;
                        true
                    } else {
                        false
                    }
                })
                .map(|c| c.name.clone())
                .collect()
        }
        SelectionPolicy::Greedy => {
            let mut sorted: Vec<&CandidateView> = candidates.iter().collect();
            sorted.sort_by(|a, b| {
                b.benefit_per_node()
                    .total_cmp(&a.benefit_per_node())
                    .then_with(|| a.name.cmp(&b.name))
            });
            let mut used = 0usize;
            let mut out = Vec::new();
            for c in sorted {
                if c.frequency == 0 {
                    continue;
                }
                if used + c.size_nodes <= budget_nodes {
                    used += c.size_nodes;
                    out.push(c.name.clone());
                }
            }
            out
        }
    }
}

/// Observes the live query load per view: frequencies and measured
/// virtual costs. "We may need to adjust the set of materialized views
/// over time depending on the query load" — re-running selection over a
/// fresh window does exactly that.
#[derive(Default)]
pub struct WorkloadMonitor {
    inner: Mutex<HashMap<String, (u64, f64, usize)>>,
}

impl WorkloadMonitor {
    pub fn new() -> WorkloadMonitor {
        WorkloadMonitor::default()
    }

    /// Record one virtually-answered query against a view: its measured
    /// cost and the result size.
    pub fn record(&self, view: &str, cost_ms: f64, size_nodes: usize) {
        let mut inner = self.inner.lock();
        let e = inner.entry(view.to_string()).or_insert((0, 0.0, 0));
        e.0 += 1;
        e.1 += cost_ms;
        e.2 = e.2.max(size_nodes);
    }

    /// Snapshot candidates with mean costs, sorted by name.
    pub fn candidates(&self) -> Vec<CandidateView> {
        let inner = self.inner.lock();
        let mut out: Vec<CandidateView> = inner
            .iter()
            .map(|(name, (freq, total_cost, size))| CandidateView {
                name: name.clone(),
                frequency: *freq,
                virtual_cost_ms: if *freq > 0 {
                    total_cost / *freq as f64
                } else {
                    0.0
                },
                size_nodes: *size,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Start a new observation window.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands() -> Vec<CandidateView> {
        vec![
            CandidateView {
                name: "hot_small".into(),
                frequency: 100,
                virtual_cost_ms: 50.0,
                size_nodes: 10,
            },
            CandidateView {
                name: "hot_big".into(),
                frequency: 100,
                virtual_cost_ms: 50.0,
                size_nodes: 1000,
            },
            CandidateView {
                name: "cold".into(),
                frequency: 1,
                virtual_cost_ms: 50.0,
                size_nodes: 10,
            },
            CandidateView {
                name: "unused".into(),
                frequency: 0,
                virtual_cost_ms: 0.0,
                size_nodes: 5,
            },
        ]
    }

    #[test]
    fn none_and_cache_only_materialize_nothing() {
        assert!(select_views(SelectionPolicy::None, &cands(), 10_000).is_empty());
        assert!(select_views(SelectionPolicy::CacheOnly, &cands(), 10_000).is_empty());
    }

    #[test]
    fn greedy_prefers_benefit_per_node() {
        let picked = select_views(SelectionPolicy::Greedy, &cands(), 30);
        // hot_small (500/node) then cold (5/node); hot_big doesn't fit.
        assert_eq!(picked, vec!["hot_small", "cold"]);
    }

    #[test]
    fn greedy_skips_unused() {
        let picked = select_views(SelectionPolicy::Greedy, &cands(), 10_000);
        assert!(!picked.contains(&"unused".to_string()));
    }

    #[test]
    fn all_fills_in_order_until_budget() {
        let picked = select_views(SelectionPolicy::All, &cands(), 25);
        // Takes hot_small (10), skips hot_big (1000), takes cold (10),
        // takes unused (5).
        assert_eq!(picked, vec!["hot_small", "cold", "unused"]);
    }

    #[test]
    fn monitor_aggregates() {
        let m = WorkloadMonitor::new();
        m.record("v1", 10.0, 100);
        m.record("v1", 20.0, 90);
        m.record("v2", 5.0, 10);
        let c = m.candidates();
        assert_eq!(c.len(), 2);
        let v1 = c.iter().find(|c| c.name == "v1").unwrap();
        assert_eq!(v1.frequency, 2);
        assert!((v1.virtual_cost_ms - 15.0).abs() < 1e-9);
        assert_eq!(v1.size_nodes, 100);
        m.reset();
        assert!(m.candidates().is_empty());
    }
}
