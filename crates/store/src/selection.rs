//! View-selection policies and the workload monitor feeding them.
//!
//! The paper names this its central §3.3 research challenge: which views
//! over the mediated schema to materialize, given that (1) sources are
//! autonomous and overlapping, (2) the query load shifts, and (3) remote
//! cost estimates are poor. The [`WorkloadMonitor`] observes the actual
//! load (frequencies and *measured* fragment costs — sidestepping the
//! estimation problem), and [`select_views`] turns those observations
//! into a materialization set under a storage budget. Experiment E2
//! compares the policies.

use nimble_trace::{Alert, AlertEngine, MetricsRegistry};
use std::sync::Arc;

/// A candidate view with the observed statistics the selector needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateView {
    pub name: String,
    /// Queries answered by this view in the observation window.
    pub frequency: u64,
    /// Measured mean cost of answering virtually (milliseconds).
    pub virtual_cost_ms: f64,
    /// Materialized size in nodes.
    pub size_nodes: usize,
}

impl CandidateView {
    /// Benefit rate: latency saved per unit of storage if materialized.
    /// (Answering from the store is charged ~zero; refresh cost is the
    /// policy user's concern via TTLs.)
    pub fn benefit_per_node(&self) -> f64 {
        if self.size_nodes == 0 {
            return 0.0;
        }
        (self.frequency as f64 * self.virtual_cost_ms) / self.size_nodes as f64
    }
}

/// Materialization policies compared in experiment E2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Pure virtual integration: nothing materialized.
    None,
    /// No pre-materialization; rely on the LRU result cache only.
    CacheOnly,
    /// Greedy knapsack by benefit-per-node under the budget.
    Greedy,
    /// Materialize every candidate that fits cumulatively (the emulated
    /// "warehouse" arm: everything local, freshness via TTL refresh).
    All,
}

/// Choose which views to materialize under `budget_nodes`.
pub fn select_views(
    policy: SelectionPolicy,
    candidates: &[CandidateView],
    budget_nodes: usize,
) -> Vec<String> {
    match policy {
        SelectionPolicy::None | SelectionPolicy::CacheOnly => Vec::new(),
        SelectionPolicy::All => {
            let mut used = 0usize;
            candidates
                .iter()
                .filter(|c| {
                    if used + c.size_nodes <= budget_nodes {
                        used += c.size_nodes;
                        true
                    } else {
                        false
                    }
                })
                .map(|c| c.name.clone())
                .collect()
        }
        SelectionPolicy::Greedy => {
            let mut sorted: Vec<&CandidateView> = candidates.iter().collect();
            sorted.sort_by(|a, b| {
                b.benefit_per_node()
                    .total_cmp(&a.benefit_per_node())
                    .then_with(|| a.name.cmp(&b.name))
            });
            let mut used = 0usize;
            let mut out = Vec::new();
            for c in sorted {
                if c.frequency == 0 {
                    continue;
                }
                if used + c.size_nodes <= budget_nodes {
                    used += c.size_nodes;
                    out.push(c.name.clone());
                }
            }
            out
        }
    }
}

/// Observes the live query load per view: frequencies and measured
/// virtual costs. "We may need to adjust the set of materialized views
/// over time depending on the query load" — re-running selection over a
/// fresh window does exactly that.
///
/// Observations live in a [`MetricsRegistry`] under the `view.` prefix
/// (`view.cost_us.<name>` histograms, `view.size_nodes.<name>`
/// max-gauges), so when the monitor shares the engine's registry the
/// workload statistics appear in the same management-console snapshot
/// as every other metric.
pub struct WorkloadMonitor {
    registry: Arc<MetricsRegistry>,
}

impl Default for WorkloadMonitor {
    fn default() -> Self {
        WorkloadMonitor::new()
    }
}

impl WorkloadMonitor {
    pub fn new() -> WorkloadMonitor {
        WorkloadMonitor::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// Record observations into a shared registry (the engine passes its
    /// own, so `view.*` metrics ride along in engine snapshots).
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> WorkloadMonitor {
        WorkloadMonitor { registry }
    }

    /// The registry observations land in.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Record one virtually-answered query against a view: its measured
    /// cost and the result size.
    pub fn record(&self, view: &str, cost_ms: f64, size_nodes: usize) {
        self.registry
            .observe(&format!("view.cost_us.{}", view), (cost_ms * 1e3).max(0.0) as u64);
        self.registry
            .gauge_max(&format!("view.size_nodes.{}", view), size_nodes as u64);
    }

    /// Snapshot candidates with mean costs, sorted by name.
    pub fn candidates(&self) -> Vec<CandidateView> {
        let snap = self.registry.snapshot();
        snap.histograms
            .iter()
            .filter_map(|(metric, hist)| {
                let name = metric.strip_prefix("view.cost_us.")?;
                Some(CandidateView {
                    name: name.to_string(),
                    frequency: hist.count,
                    virtual_cost_ms: if hist.count > 0 { hist.mean() / 1e3 } else { 0.0 },
                    size_nodes: snap.gauge(&format!("view.size_nodes.{}", name)) as usize,
                })
            })
            .collect()
    }

    /// Start a new observation window (drops only `view.` metrics, so a
    /// shared registry keeps its other subsystems' history).
    pub fn reset(&self) {
        self.registry.remove_prefix("view.");
    }

    /// One alert-evaluation tick over this monitor's registry: snapshot
    /// it and let `alerts` judge the window since its previous tick.
    /// Background monitoring loops that already own a [`WorkloadMonitor`]
    /// get alerting without also holding an engine handle.
    pub fn eval_alerts(&self, alerts: &mut AlertEngine) -> Vec<Alert> {
        alerts.eval(&self.registry.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands() -> Vec<CandidateView> {
        vec![
            CandidateView {
                name: "hot_small".into(),
                frequency: 100,
                virtual_cost_ms: 50.0,
                size_nodes: 10,
            },
            CandidateView {
                name: "hot_big".into(),
                frequency: 100,
                virtual_cost_ms: 50.0,
                size_nodes: 1000,
            },
            CandidateView {
                name: "cold".into(),
                frequency: 1,
                virtual_cost_ms: 50.0,
                size_nodes: 10,
            },
            CandidateView {
                name: "unused".into(),
                frequency: 0,
                virtual_cost_ms: 0.0,
                size_nodes: 5,
            },
        ]
    }

    #[test]
    fn none_and_cache_only_materialize_nothing() {
        assert!(select_views(SelectionPolicy::None, &cands(), 10_000).is_empty());
        assert!(select_views(SelectionPolicy::CacheOnly, &cands(), 10_000).is_empty());
    }

    #[test]
    fn greedy_prefers_benefit_per_node() {
        let picked = select_views(SelectionPolicy::Greedy, &cands(), 30);
        // hot_small (500/node) then cold (5/node); hot_big doesn't fit.
        assert_eq!(picked, vec!["hot_small", "cold"]);
    }

    #[test]
    fn greedy_skips_unused() {
        let picked = select_views(SelectionPolicy::Greedy, &cands(), 10_000);
        assert!(!picked.contains(&"unused".to_string()));
    }

    #[test]
    fn all_fills_in_order_until_budget() {
        let picked = select_views(SelectionPolicy::All, &cands(), 25);
        // Takes hot_small (10), skips hot_big (1000), takes cold (10),
        // takes unused (5).
        assert_eq!(picked, vec!["hot_small", "cold", "unused"]);
    }

    #[test]
    fn monitor_records_into_shared_registry() {
        let reg = Arc::new(MetricsRegistry::new());
        let m = WorkloadMonitor::with_registry(Arc::clone(&reg));
        m.record("v1", 2.0, 5);
        let s = reg.snapshot();
        assert_eq!(s.histograms["view.cost_us.v1"].count, 1);
        assert_eq!(s.histograms["view.cost_us.v1"].sum, 2000);
        assert_eq!(s.gauge("view.size_nodes.v1"), 5);
        // A reset only clears the monitor's own prefix.
        reg.incr("engine.queries", 1);
        m.reset();
        let s = reg.snapshot();
        assert!(s.histograms.is_empty());
        assert_eq!(s.counter("engine.queries"), 1);
    }

    #[test]
    fn monitor_drives_alert_evaluation() {
        use nimble_trace::{AlertOp, AlertRule};
        let m = WorkloadMonitor::new();
        let mut alerts = AlertEngine::new();
        alerts.add_rule(AlertRule {
            name: "hot_view".into(),
            metric: "view.cost_us.v1:count".into(),
            op: AlertOp::Ge,
            threshold: 2.0,
            window: 1,
        });
        assert!(m.eval_alerts(&mut alerts).is_empty(), "baseline tick");
        m.record("v1", 1.0, 5);
        m.record("v1", 1.0, 5);
        let fired = m.eval_alerts(&mut alerts);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "hot_view");
    }

    #[test]
    fn monitor_aggregates() {
        let m = WorkloadMonitor::new();
        m.record("v1", 10.0, 100);
        m.record("v1", 20.0, 90);
        m.record("v2", 5.0, 10);
        let c = m.candidates();
        assert_eq!(c.len(), 2);
        let v1 = c.iter().find(|c| c.name == "v1").unwrap();
        assert_eq!(v1.frequency, 2);
        assert!((v1.virtual_cost_ms - 15.0).abs() < 1e-9);
        assert_eq!(v1.size_nodes, 100);
        m.reset();
        assert!(m.candidates().is_empty());
    }
}
