//! Collection statistics for cost-based planning.
//!
//! The mediator cannot assume a warehouse-style `ANALYZE` pass: sources
//! are remote and opaque. Instead the catalog seeds a [`StatsCatalog`]
//! with a cheap sample at registration time (row counts, per-field
//! distinct estimates, min/max bounds) and the engine refreshes row
//! counts from what queries actually observe — a feedback loop in the
//! spirit of the cost-based XML mediators surveyed in PAPERS.md.
//!
//! Keys are `"source.collection"` for source collections and
//! `"view:name"` for mediated views. A monotonically increasing
//! *generation* stamps every materially different snapshot; the engine's
//! plan cache folds the generation into its key so plans built from
//! stale statistics are re-planned, not served.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use nimble_xml::Atomic;
use parking_lot::RwLock;

/// Per-field statistics gathered from a sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnStats {
    /// Estimated number of distinct values across the whole collection
    /// (extrapolated from the sample).
    pub distinct: u64,
    /// Smallest numeric value seen, if the field ever held a number.
    pub min: Option<f64>,
    /// Largest numeric value seen, if the field ever held a number.
    pub max: Option<f64>,
}

/// Statistics for one collection (or one materialized view).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectionStats {
    /// Estimated total row count.
    pub rows: u64,
    /// Per-field statistics, keyed by field name.
    pub columns: BTreeMap<String, ColumnStats>,
    /// How many rows the column statistics were computed from (0 when
    /// only a row count is known).
    pub sampled: u64,
}

impl CollectionStats {
    /// Estimated distinct count for `field`, if sampled.
    pub fn distinct(&self, field: &str) -> Option<u64> {
        self.columns.get(field).map(|c| c.distinct.max(1))
    }

    /// Whether the column statistics cover every row of the collection,
    /// i.e. the sample was exhaustive. Only then are min/max *bounds*
    /// rather than advisory estimates — a partial sample can miss the
    /// true extremes.
    pub fn exhaustive(&self) -> bool {
        self.sampled >= self.rows && self.rows > 0
    }
}

/// Counters describing stats activity, for metrics export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsActivity {
    /// Current generation (bumped on material change).
    pub generation: u64,
    /// Row-count feedback observations applied from query execution.
    pub feedback_updates: u64,
}

/// Thread-safe catalog of per-collection statistics with a generation
/// stamp for cache invalidation.
#[derive(Default)]
pub struct StatsCatalog {
    inner: RwLock<BTreeMap<String, CollectionStats>>,
    generation: AtomicU64,
    feedback_updates: AtomicU64,
}

/// Row-count feedback only bumps the generation (invalidating cached
/// plans) when the observed count differs *materially* from the current
/// estimate: more than 2x off and by more than this many rows.
const FEEDBACK_ABS_SLACK: u64 = 16;

impl StatsCatalog {
    /// New, empty catalog at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the statistics for `key`, bumping the
    /// generation. Used for registration-time seeding and re-sampling.
    pub fn set(&self, key: &str, stats: CollectionStats) {
        self.inner.write().insert(key.to_string(), stats);
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the statistics for `key`, if any.
    pub fn get(&self, key: &str) -> Option<CollectionStats> {
        self.inner.read().get(key).cloned()
    }

    /// Estimated row count for `key`, if known.
    pub fn rows(&self, key: &str) -> Option<u64> {
        self.inner.read().get(key).map(|s| s.rows)
    }

    /// *Exact* numeric bounds of `field` in collection `key`, or `None`.
    /// Bounds are returned only when the sample was exhaustive
    /// ([`CollectionStats::exhaustive`]): a partial sample's min/max can
    /// be narrower than the data, and callers use these bounds to prove
    /// predicates unsatisfiable — an unsound claim over advisory
    /// bounds. Callers must still re-check the stats generation if they
    /// cache the answer (out-of-band source mutations re-sample).
    pub fn exact_bounds(&self, key: &str, field: &str) -> Option<(f64, f64)> {
        let inner = self.inner.read();
        let stats = inner.get(key)?;
        if !stats.exhaustive() {
            return None;
        }
        let col = stats.columns.get(field)?;
        match (col.min, col.max) {
            (Some(lo), Some(hi)) => Some((lo, hi)),
            _ => None,
        }
    }

    /// Current generation. Bumped whenever statistics change enough to
    /// make previously planned queries suspect.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Feed back an actual row count observed at query time. Returns
    /// `true` when the observation changed the generation (i.e. cached
    /// plans keyed on the old generation are now stale).
    ///
    /// A first observation for an unknown collection records the count
    /// without bumping the generation — otherwise the very first query
    /// over every collection would invalidate the plan that served it.
    /// Known collections bump only on a material change (>2x off and by
    /// more than [`FEEDBACK_ABS_SLACK`] rows); small drifts are folded in
    /// quietly.
    pub fn observe_rows(&self, key: &str, rows: u64) -> bool {
        let mut inner = self.inner.write();
        match inner.get_mut(key) {
            None => {
                inner.insert(
                    key.to_string(),
                    CollectionStats {
                        rows,
                        ..CollectionStats::default()
                    },
                );
                self.feedback_updates.fetch_add(1, Ordering::Relaxed);
                false
            }
            Some(stats) => {
                if stats.rows == rows {
                    return false;
                }
                let old = stats.rows;
                stats.rows = rows;
                self.feedback_updates.fetch_add(1, Ordering::Relaxed);
                let (lo, hi) = (old.min(rows), old.max(rows));
                let material = hi > lo.saturating_mul(2) && hi - lo > FEEDBACK_ABS_SLACK;
                if material {
                    self.generation.fetch_add(1, Ordering::Relaxed);
                }
                material
            }
        }
    }

    /// Drop exactly `key` (e.g. `"view:a"` when view `a` is dropped —
    /// prefix removal would also hit `"view:ab"`). Bumps the generation
    /// if the entry existed.
    pub fn remove(&self, key: &str) {
        let mut inner = self.inner.write();
        if inner.remove(key).is_some() {
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop every entry whose key starts with `prefix`. Reserved for
    /// keys where the prefix is delimited (e.g. `"crm."` when the `crm`
    /// source is unregistered) — use [`StatsCatalog::remove`] where an
    /// undelimited prefix could over-match. Bumps the generation if
    /// anything was removed.
    pub fn remove_prefix(&self, prefix: &str) {
        let mut inner = self.inner.write();
        let before = inner.len();
        inner.retain(|k, _| !k.starts_with(prefix));
        if inner.len() != before {
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Activity counters for metrics export.
    pub fn activity(&self) -> StatsActivity {
        StatsActivity {
            generation: self.generation(),
            feedback_updates: self.feedback_updates.load(Ordering::Relaxed),
        }
    }
}

/// How many distinct values per field a sample tracks exactly before
/// declaring the field high-cardinality.
const DISTINCT_CAP: usize = 512;

/// Accumulates per-field statistics over a sample of rows and
/// extrapolates to the full collection.
#[derive(Debug, Default)]
pub struct SampleBuilder {
    rows: u64,
    fields: BTreeMap<String, FieldAcc>,
}

#[derive(Debug, Default)]
struct FieldAcc {
    seen: HashSet<String>,
    overflow: bool,
    min: Option<f64>,
    max: Option<f64>,
}

impl SampleBuilder {
    /// Start an empty sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that one sampled row has been fully observed.
    pub fn add_row(&mut self) {
        self.rows += 1;
    }

    /// Observe one field value on the current row. Nulls contribute
    /// nothing (absent optional fields should not widen bounds).
    pub fn observe(&mut self, field: &str, value: &Atomic) {
        if value.is_null() {
            return;
        }
        let acc = self.fields.entry(field.to_string()).or_default();
        if !acc.overflow {
            acc.seen.insert(value.lexical());
            if acc.seen.len() > DISTINCT_CAP {
                acc.overflow = true;
                acc.seen.clear();
            }
        }
        if let Some(n) = value.as_f64() {
            acc.min = Some(acc.min.map_or(n, |m| m.min(n)));
            acc.max = Some(acc.max.map_or(n, |m| m.max(n)));
        }
    }

    /// Finish the sample, extrapolating distinct counts to an estimated
    /// `total_rows` collection size. When every sampled value was unique
    /// the field is assumed key-like (distinct == total); when values
    /// clearly repeat (distinct ≤ half the sample) the sample most
    /// likely saw the whole domain, so the observed count is kept;
    /// in between the sample ratio is scaled up and capped at the total.
    pub fn finish(self, total_rows: u64) -> CollectionStats {
        let sampled = self.rows;
        let columns = self
            .fields
            .into_iter()
            .map(|(name, acc)| {
                let seen = acc.seen.len() as u64;
                let distinct = if acc.overflow || (seen >= sampled && sampled > 0) {
                    total_rows
                } else if sampled == 0 {
                    0
                } else if seen * 2 <= sampled {
                    seen.min(total_rows)
                } else {
                    let scaled =
                        (seen as u128 * total_rows as u128 / sampled.max(1) as u128) as u64;
                    scaled.clamp(seen, total_rows)
                };
                (
                    name,
                    ColumnStats {
                        distinct: distinct.max(1),
                        min: acc.min,
                        max: acc.max,
                    },
                )
            })
            .collect();
        CollectionStats {
            rows: total_rows,
            columns,
            sampled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(values: &[(&str, Atomic)], rows: u64, total: u64) -> CollectionStats {
        let mut b = SampleBuilder::new();
        let per_row = values.len() as u64 / rows.max(1);
        for (i, (field, v)) in values.iter().enumerate() {
            if per_row > 0 && i as u64 % per_row == 0 && (i as u64 / per_row) < rows {
                b.add_row();
            }
            b.observe(field, v);
        }
        while b.rows < rows {
            b.add_row();
        }
        b.finish(total)
    }

    #[test]
    fn key_like_fields_extrapolate_to_total() {
        let stats = sample(
            &[
                ("id", Atomic::Int(1)),
                ("id", Atomic::Int(2)),
                ("id", Atomic::Int(3)),
                ("id", Atomic::Int(4)),
            ],
            4,
            1000,
        );
        assert_eq!(stats.rows, 1000);
        assert_eq!(stats.distinct("id"), Some(1000));
        let col = &stats.columns["id"];
        assert_eq!(col.min, Some(1.0));
        assert_eq!(col.max, Some(4.0));
    }

    #[test]
    fn repeated_values_keep_observed_domain() {
        let mut b = SampleBuilder::new();
        for i in 0..100u32 {
            b.add_row();
            b.observe("region", &Atomic::Str(format!("r{}", i % 4)));
        }
        let stats = b.finish(10_000);
        // 4 distinct in 100 rows: the sample saw the whole domain.
        assert_eq!(stats.distinct("region"), Some(4));
        assert_eq!(stats.sampled, 100);
    }

    #[test]
    fn mid_cardinality_fields_ratio_scale() {
        let mut b = SampleBuilder::new();
        for i in 0..100u32 {
            b.add_row();
            // 75 distinct over 100 rows: neither key-like nor tiny.
            b.observe("bucket", &Atomic::Int(i64::from(i.min(74))));
        }
        let stats = b.finish(1_000);
        assert_eq!(stats.distinct("bucket"), Some(750));
    }

    #[test]
    fn nulls_do_not_widen_bounds() {
        let mut b = SampleBuilder::new();
        b.add_row();
        b.observe("x", &Atomic::Null);
        b.add_row();
        b.observe("x", &Atomic::Int(7));
        let stats = b.finish(2);
        let col = &stats.columns["x"];
        assert_eq!((col.min, col.max), (Some(7.0), Some(7.0)));
    }

    #[test]
    fn generation_bumps_on_set_and_material_feedback_only() {
        let cat = StatsCatalog::new();
        assert_eq!(cat.generation(), 0);
        cat.set(
            "crm.customers",
            CollectionStats {
                rows: 100,
                ..CollectionStats::default()
            },
        );
        assert_eq!(cat.generation(), 1);

        // First observation of an unknown key: recorded, no bump.
        assert!(!cat.observe_rows("crm.orders", 300));
        assert_eq!(cat.generation(), 1);
        assert_eq!(cat.rows("crm.orders"), Some(300));

        // Small drift on a known key: quiet update.
        assert!(!cat.observe_rows("crm.customers", 110));
        assert_eq!(cat.generation(), 1);
        assert_eq!(cat.rows("crm.customers"), Some(110));

        // Material change (>2x and >16 rows): bump.
        assert!(cat.observe_rows("crm.customers", 500));
        assert_eq!(cat.generation(), 2);
        assert_eq!(cat.rows("crm.customers"), Some(500));

        // Same count again: no-op.
        assert!(!cat.observe_rows("crm.customers", 500));
        assert_eq!(cat.activity().feedback_updates, 3);
    }

    #[test]
    fn exact_bounds_require_exhaustive_sample() {
        let cat = StatsCatalog::new();
        let mut b = SampleBuilder::new();
        for i in 0..10i64 {
            b.add_row();
            b.observe("total", &Atomic::Int(i * 10));
        }
        // Sample of 10 over 10 total rows: exhaustive, bounds are exact.
        cat.set("erp.orders", b.finish(10));
        assert_eq!(cat.exact_bounds("erp.orders", "total"), Some((0.0, 90.0)));
        // No such field / no such key.
        assert_eq!(cat.exact_bounds("erp.orders", "nope"), None);
        assert_eq!(cat.exact_bounds("erp.nope", "total"), None);

        // Same sample extrapolated to 1000 rows: partial, bounds are
        // advisory and must be withheld.
        let mut b = SampleBuilder::new();
        for i in 0..10i64 {
            b.add_row();
            b.observe("total", &Atomic::Int(i * 10));
        }
        cat.set("erp.big", b.finish(1000));
        assert_eq!(cat.exact_bounds("erp.big", "total"), None);

        // Non-numeric fields never report bounds.
        let mut b = SampleBuilder::new();
        b.add_row();
        b.observe("name", &Atomic::Str("ada".into()));
        cat.set("erp.people", b.finish(1));
        assert_eq!(cat.exact_bounds("erp.people", "name"), None);
    }

    #[test]
    fn remove_is_exact_key_only() {
        let cat = StatsCatalog::new();
        cat.set("view:a", CollectionStats::default());
        cat.set("view:ab", CollectionStats::default());
        let gen = cat.generation();
        cat.remove("view:a");
        assert!(cat.get("view:a").is_none());
        assert!(cat.get("view:ab").is_some());
        assert_eq!(cat.generation(), gen + 1);
        // Removing a missing key leaves the generation alone.
        cat.remove("view:a");
        assert_eq!(cat.generation(), gen + 1);
    }

    #[test]
    fn remove_prefix_drops_source_entries() {
        let cat = StatsCatalog::new();
        cat.set("crm.customers", CollectionStats::default());
        cat.set("billing.orders", CollectionStats::default());
        let gen = cat.generation();
        cat.remove_prefix("crm.");
        assert!(cat.get("crm.customers").is_none());
        assert!(cat.get("billing.orders").is_some());
        assert_eq!(cat.generation(), gen + 1);
        // Removing nothing leaves the generation alone.
        cat.remove_prefix("nope.");
        assert_eq!(cat.generation(), gen + 1);
    }
}
