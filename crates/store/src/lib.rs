//! # nimble-store
//!
//! Local materialization: the "compound architecture" of the paper's
//! §3.3, which combines virtual querying with selective, locally
//! materialized data.
//!
//! The key design point reproduced here is that Nimble does **not** build
//! a warehouse with its own schema: "one does not design a warehouse
//! schema. Instead, one materializes views over the mediated schema."
//! Accordingly:
//!
//! * [`ViewStore`] holds materialized results of mediated-schema queries,
//!   stamped with a logical refresh time and an optional TTL, and reports
//!   freshness so the query processor "knows to make use of local copies
//!   of data when available".
//! * [`ResultCache`] is an LRU cache of whole query results under a size
//!   budget — the "caching and other performance tuning capabilities" of
//!   §4.
//! * [`selection`] implements the view-selection policies experiment E2
//!   compares (none / cache-only / greedy benefit-per-size / all),
//!   addressing the paper's open problem of "algorithms that decide which
//!   data (and over which sources) need to be materialized" using a
//!   workload monitor.
//!
//! Time is a logical [`clock::LogicalClock`] so freshness experiments are
//! deterministic.

pub mod cache;
pub mod clock;
pub mod selection;
pub mod shard;
pub mod stats;
pub mod views;

pub use cache::ResultCache;
pub use clock::LogicalClock;
pub use shard::{shard_stats_key, ShardMap, ShardScheme, ShardSpec};
pub use stats::{CollectionStats, ColumnStats, SampleBuilder, StatsCatalog};
pub use selection::{select_views, CandidateView, SelectionPolicy, WorkloadMonitor};
pub use views::{Freshness, MaterializedView, ViewStore};
