//! Logical time for deterministic freshness.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing logical clock shared by the store and the
/// refresh machinery. Experiments advance it explicitly instead of
/// depending on wall-clock time.
#[derive(Debug, Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl LogicalClock {
    pub fn new() -> LogicalClock {
        LogicalClock::default()
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }

    /// Advance by `n` ticks and return the new time.
    pub fn advance(&self, n: u64) -> u64 {
        self.ticks.fetch_add(n, Ordering::SeqCst) + n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(1), 6);
        assert_eq!(c.now(), 6);
    }
}
