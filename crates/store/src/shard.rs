//! Shard catalog: declared partitioning of collections across engine
//! instances.
//!
//! A [`ShardSpec`] names the **shard key** (a row field) and the
//! partitioning [`ShardScheme`] — hash or range — and the [`ShardMap`]
//! records one spec per `source.collection`. The map carries its own
//! epoch, separate from the source catalog's: re-sharding invalidates
//! compiled plans (the planner bakes shard pruning decisions into the
//! plan), but does not imply the logical catalog changed.
//!
//! The store layer owns only the *declaration*; the mediator partitions
//! documents, seeds per-shard statistics (under `shard:{k}:{key}`
//! entries in the [`crate::StatsCatalog`], sampled exhaustively so
//! min/max bounds are exact), and routes scans.

use crate::clock::LogicalClock;
use nimble_xml::Atomic;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// How rows of a collection map to shards.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardScheme {
    /// `shard = fnv64(lexical(key)) % shards`. Placement is uniform and
    /// key-type-agnostic (the hash runs over the canonical lexical
    /// form, so `42` routes identically whether typed int or string).
    Hash { shards: usize },
    /// Ascending split points over the numeric key: shard `k` holds
    /// rows with `bounds[k-1] <= key < bounds[k]` (`shards =
    /// bounds.len() + 1`). Rows whose key does not parse as a number
    /// fall into shard 0.
    Range { bounds: Vec<f64> },
}

/// A declared partitioning: shard key field plus scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Row field the partitioning is keyed on.
    pub key: String,
    pub scheme: ShardScheme,
}

/// Deterministic FNV-1a over UTF-8 bytes — placement must be identical
/// across processes and runs (the planner's equality routing recomputes
/// it), so `DefaultHasher` (randomly seeded) is not an option.
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardSpec {
    pub fn hash(key: impl Into<String>, shards: usize) -> ShardSpec {
        ShardSpec {
            key: key.into(),
            scheme: ShardScheme::Hash {
                shards: shards.max(1),
            },
        }
    }

    pub fn range(key: impl Into<String>, bounds: Vec<f64>) -> ShardSpec {
        ShardSpec {
            key: key.into(),
            scheme: ShardScheme::Range { bounds },
        }
    }

    /// Number of shards this spec partitions into.
    pub fn shards(&self) -> usize {
        match &self.scheme {
            ShardScheme::Hash { shards } => (*shards).max(1),
            ShardScheme::Range { bounds } => bounds.len() + 1,
        }
    }

    /// The shard a row with this key value belongs to. Total: every
    /// value routes somewhere (nulls and non-numeric range keys to
    /// shard 0), so partitioning never drops rows.
    pub fn shard_of(&self, key: &Atomic) -> usize {
        match &self.scheme {
            ShardScheme::Hash { shards } => {
                (fnv64(&key.lexical()) % (*shards).max(1) as u64) as usize
            }
            ShardScheme::Range { bounds } => {
                let v = match key {
                    Atomic::Int(i) => *i as f64,
                    Atomic::Float(f) => *f,
                    other => match other.lexical().trim().parse::<f64>() {
                        Ok(v) => v,
                        Err(_) => return 0,
                    },
                };
                bounds.iter().take_while(|b| v >= **b).count()
            }
        }
    }
}

/// All declared shard specs, keyed by `source.collection`, plus the
/// shard-map epoch plan caches stamp against.
#[derive(Default)]
pub struct ShardMap {
    specs: RwLock<BTreeMap<String, ShardSpec>>,
    epoch: LogicalClock,
}

impl ShardMap {
    pub fn new() -> ShardMap {
        ShardMap::default()
    }

    /// Declare (or replace) the partitioning of `source.collection`.
    /// Advances the epoch: compiled plans that routed against the old
    /// layout are invalid.
    pub fn declare(&self, collection: impl Into<String>, spec: ShardSpec) {
        self.specs.write().insert(collection.into(), spec);
        self.epoch.advance(1);
    }

    /// The spec for `source.collection`, if partitioned.
    pub fn get(&self, collection: &str) -> Option<ShardSpec> {
        self.specs.read().get(collection).cloned()
    }

    /// Declared collections, in name order.
    pub fn collections(&self) -> Vec<String> {
        self.specs.read().keys().cloned().collect()
    }

    pub fn is_empty(&self) -> bool {
        self.specs.read().is_empty()
    }

    /// Monotone epoch advanced on every declaration change.
    pub fn epoch(&self) -> u64 {
        self.epoch.now()
    }
}

/// Stats-catalog key for shard `k` of `source.collection` — per-shard
/// entries live alongside the whole-collection entry and are sampled
/// exhaustively at partition time, so their min/max bounds are exact
/// and safe for pruning.
pub fn shard_stats_key(shard: usize, collection: &str) -> String {
    format!("shard:{}:{}", shard, collection)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_placement_is_deterministic_and_total() {
        let spec = ShardSpec::hash("id", 4);
        assert_eq!(spec.shards(), 4);
        for i in 0..100i64 {
            let a = spec.shard_of(&Atomic::Int(i));
            let b = spec.shard_of(&Atomic::Str(i.to_string()));
            assert_eq!(a, b, "typed and lexical keys must co-locate");
            assert!(a < 4);
        }
        // Not all rows in one shard (FNV spreads).
        let distinct: std::collections::HashSet<usize> =
            (0..100i64).map(|i| spec.shard_of(&Atomic::Int(i))).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn range_placement_respects_bounds() {
        let spec = ShardSpec::range("total", vec![100.0, 200.0]);
        assert_eq!(spec.shards(), 3);
        assert_eq!(spec.shard_of(&Atomic::Int(5)), 0);
        assert_eq!(spec.shard_of(&Atomic::Int(100)), 1); // inclusive lower
        assert_eq!(spec.shard_of(&Atomic::Float(199.9)), 1);
        assert_eq!(spec.shard_of(&Atomic::Int(200)), 2);
        assert_eq!(spec.shard_of(&Atomic::Int(10_000)), 2);
        // Unparseable keys route to shard 0 rather than vanishing.
        assert_eq!(spec.shard_of(&Atomic::Str("n/a".into())), 0);
        assert_eq!(spec.shard_of(&Atomic::Null), 0);
    }

    #[test]
    fn map_epoch_advances_on_declare() {
        let map = ShardMap::new();
        assert!(map.is_empty());
        let e0 = map.epoch();
        map.declare("erp.orders", ShardSpec::hash("cust_id", 2));
        assert!(map.epoch() > e0);
        assert_eq!(map.get("erp.orders").map(|s| s.shards()), Some(2));
        assert!(map.get("erp.customers").is_none());
        let e1 = map.epoch();
        map.declare("erp.orders", ShardSpec::range("cust_id", vec![50.0]));
        assert!(map.epoch() > e1, "re-declaration must re-stamp plans");
        assert_eq!(map.collections(), vec!["erp.orders".to_string()]);
    }

    #[test]
    fn shard_stats_keys_are_namespaced() {
        assert_eq!(shard_stats_key(3, "erp.orders"), "shard:3:erp.orders");
    }
}
