//! An LRU result cache with a node-count budget.

use nimble_xml::Document;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Entry {
    doc: Arc<Document>,
    size: usize,
    /// Recency stamp from the cache's internal counter.
    last_used: u64,
}

/// Statistics exported for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub current_size: usize,
}

/// Cache of whole query results keyed by (normalized) query text. The
/// budget is in document nodes, the same size proxy the view store uses.
pub struct ResultCache {
    inner: Mutex<Inner>,
    budget: usize,
}

struct Inner {
    entries: HashMap<String, Entry>,
    tick: u64,
    size: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// A cache that holds at most `budget_nodes` document nodes.
    pub fn new(budget_nodes: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
                size: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            budget: budget_nodes,
        }
    }

    /// Look up a result, refreshing its recency.
    pub fn get(&self, key: &str) -> Option<Arc<Document>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                let doc = Arc::clone(&e.doc);
                inner.hits += 1;
                Some(doc)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a result, evicting least-recently-used entries until the
    /// budget holds. Results larger than the whole budget are not cached.
    pub fn put(&self, key: &str, doc: Arc<Document>) {
        let size = doc.len();
        if size > self.budget {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.remove(key) {
            inner.size -= old.size;
        }
        while inner.size + size > self.budget {
            // Evict the least recently used entry.
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let e = inner.entries.remove(&k).expect("victim exists");
                    inner.size -= e.size;
                    inner.evictions += 1;
                }
                None => break,
            }
        }
        inner.size += size;
        inner.entries.insert(
            key.to_string(),
            Entry {
                doc,
                size,
                last_used: tick,
            },
        );
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.size = 0;
    }

    /// Invalidate one key; true if it was present.
    pub fn invalidate(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.remove(key) {
            inner.size -= e.size;
            true
        } else {
            false
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            current_size: inner.size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_xml::parse;

    fn doc_of_size(n: usize) -> Arc<Document> {
        // Root + (n-1) children.
        let mut xml = String::from("<r>");
        for _ in 0..n.saturating_sub(1) {
            xml.push_str("<x/>");
        }
        xml.push_str("</r>");
        parse(&xml).unwrap()
    }

    #[test]
    fn hit_and_miss() {
        let c = ResultCache::new(100);
        assert!(c.get("q1").is_none());
        c.put("q1", doc_of_size(5));
        assert!(c.get("q1").is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let c = ResultCache::new(10);
        c.put("a", doc_of_size(4));
        c.put("b", doc_of_size(4));
        // Touch `a` so `b` is the LRU victim.
        c.get("a");
        c.put("c", doc_of_size(4));
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_entries_not_cached() {
        let c = ResultCache::new(3);
        c.put("big", doc_of_size(10));
        assert!(c.get("big").is_none());
        assert_eq!(c.stats().current_size, 0);
    }

    #[test]
    fn replace_same_key_adjusts_size() {
        let c = ResultCache::new(10);
        c.put("a", doc_of_size(8));
        c.put("a", doc_of_size(3));
        assert_eq!(c.stats().current_size, 3);
        c.put("b", doc_of_size(7));
        // Both fit exactly now.
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_some());
    }

    #[test]
    fn invalidate_and_clear() {
        let c = ResultCache::new(10);
        c.put("a", doc_of_size(2));
        assert!(c.invalidate("a"));
        assert!(!c.invalidate("a"));
        c.put("b", doc_of_size(2));
        c.clear();
        assert!(c.get("b").is_none());
    }
}
