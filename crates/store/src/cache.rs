//! An LRU result cache with a node-count budget.

use nimble_xml::Document;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Entry {
    doc: Arc<Document>,
    size: usize,
    /// Recency stamp from the cache's internal counter.
    last_used: u64,
    /// Wall-clock insertion time; replacing a key resets it. Lets
    /// stale-fallback consumers report how old served data is.
    inserted: Instant,
}

/// Statistics exported for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub current_size: usize,
}

/// Cache of whole query results keyed by (normalized) query text. The
/// budget is in document nodes, the same size proxy the view store uses.
pub struct ResultCache {
    inner: Mutex<Inner>,
    budget: usize,
}

struct Inner {
    entries: HashMap<Arc<str>, Entry>,
    /// Recency queue: every touch pushes `(key, tick)`. The front is the
    /// LRU candidate; stamps that no longer match the entry's
    /// `last_used` are stale (the key was touched again later, or
    /// removed) and are skipped lazily at eviction time. Keys are
    /// `Arc<str>` shared with the map, so queue upkeep never clones key
    /// text. Eviction is O(1) amortized — each pushed stamp is popped at
    /// most once — instead of the old linear scan per victim.
    recency: VecDeque<(Arc<str>, u64)>,
    tick: u64,
    size: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Inner {
    /// Stamp a fresh tick for `key` and record it in the recency queue.
    /// The caller stores the returned tick in the entry's `last_used`.
    fn touch(&mut self, key: &Arc<str>) -> u64 {
        self.tick += 1;
        self.recency.push_back((Arc::clone(key), self.tick));
        // Amortized compaction: stale stamps accumulate one per touch,
        // so bound the queue at a small multiple of the live entries.
        if self.recency.len() > 4 * self.entries.len().max(8) {
            let entries = &self.entries;
            self.recency
                .retain(|(k, t)| entries.get(k).is_some_and(|e| e.last_used == *t));
        }
        self.tick
    }

    /// Remove the least-recently-used entry; false when nothing is left.
    fn evict_one(&mut self) -> bool {
        while let Some((k, t)) = self.recency.pop_front() {
            let live = self.entries.get(&k).is_some_and(|e| e.last_used == t);
            if !live {
                continue;
            }
            if let Some(e) = self.entries.remove(&k) {
                self.size -= e.size;
                self.evictions += 1;
                return true;
            }
        }
        false
    }
}

impl ResultCache {
    /// A cache that holds at most `budget_nodes` document nodes.
    pub fn new(budget_nodes: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                recency: VecDeque::new(),
                tick: 0,
                size: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            budget: budget_nodes,
        }
    }

    /// Look up a result, refreshing its recency.
    pub fn get(&self, key: &str) -> Option<Arc<Document>> {
        self.get_with_age(key).map(|(doc, _)| doc)
    }

    /// Like [`get`](ResultCache::get), also reporting how long ago the
    /// entry was inserted — the "staleness" a fallback consumer surfaces
    /// in provenance reports.
    pub fn get_with_age(&self, key: &str) -> Option<(Arc<Document>, Duration)> {
        let mut inner = self.inner.lock();
        let found = inner
            .entries
            .get_key_value(key)
            .map(|(k, e)| (Arc::clone(k), Arc::clone(&e.doc), e.inserted.elapsed()));
        match found {
            Some((k, doc, age)) => {
                let tick = inner.touch(&k);
                if let Some(e) = inner.entries.get_mut(&k) {
                    e.last_used = tick;
                }
                inner.hits += 1;
                Some((doc, age))
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a result, evicting least-recently-used entries until the
    /// budget holds. Results larger than the whole budget are not cached.
    pub fn put(&self, key: &str, doc: Arc<Document>) {
        let size = doc.len();
        if size > self.budget {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.remove(key) {
            inner.size -= old.size;
        }
        while inner.size + size > self.budget {
            if !inner.evict_one() {
                break;
            }
        }
        let key: Arc<str> = Arc::from(key);
        let tick = inner.touch(&key);
        inner.size += size;
        inner.entries.insert(
            key,
            Entry {
                doc,
                size,
                last_used: tick,
                inserted: Instant::now(),
            },
        );
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.recency.clear();
        inner.size = 0;
    }

    /// Invalidate one key; true if it was present.
    pub fn invalidate(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.remove(key) {
            inner.size -= e.size;
            true
        } else {
            false
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            current_size: inner.size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimble_xml::parse;

    fn doc_of_size(n: usize) -> Arc<Document> {
        // Root + (n-1) children.
        let mut xml = String::from("<r>");
        for _ in 0..n.saturating_sub(1) {
            xml.push_str("<x/>");
        }
        xml.push_str("</r>");
        parse(&xml).unwrap()
    }

    #[test]
    fn hit_and_miss() {
        let c = ResultCache::new(100);
        assert!(c.get("q1").is_none());
        c.put("q1", doc_of_size(5));
        assert!(c.get("q1").is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let c = ResultCache::new(10);
        c.put("a", doc_of_size(4));
        c.put("b", doc_of_size(4));
        // Touch `a` so `b` is the LRU victim.
        c.get("a");
        c.put("c", doc_of_size(4));
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_entries_not_cached() {
        let c = ResultCache::new(3);
        c.put("big", doc_of_size(10));
        assert!(c.get("big").is_none());
        assert_eq!(c.stats().current_size, 0);
    }

    #[test]
    fn replace_same_key_adjusts_size() {
        let c = ResultCache::new(10);
        c.put("a", doc_of_size(8));
        c.put("a", doc_of_size(3));
        assert_eq!(c.stats().current_size, 3);
        c.put("b", doc_of_size(7));
        // Both fit exactly now.
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_some());
    }

    #[test]
    fn heavy_churn_keeps_lru_exact_within_budget() {
        // Many touches per entry exercise stale-stamp skipping and the
        // amortized compaction of the recency queue.
        let c = ResultCache::new(6);
        for round in 0..200usize {
            let k = format!("k{}", round % 5);
            c.put(&k, doc_of_size(2));
            let _ = c.get(&format!("k{}", (round + 2) % 5));
            assert!(c.stats().current_size <= 6);
        }
        // Deterministic LRU order at the end: re-touch k0, insert a new
        // entry, and the victim must not be k0.
        c.clear();
        c.put("a", doc_of_size(2));
        c.put("b", doc_of_size(2));
        c.put("c", doc_of_size(2));
        assert!(c.get("a").is_some());
        c.put("d", doc_of_size(2)); // evicts b (LRU), not a
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        assert!(c.get("d").is_some());
    }

    #[test]
    fn age_reports_time_since_insert() {
        let c = ResultCache::new(100);
        assert!(c.get_with_age("q").is_none());
        c.put("q", doc_of_size(2));
        let (_, age) = c.get_with_age("q").unwrap();
        assert!(age < Duration::from_secs(60));
        // Replacing resets the insertion stamp.
        c.put("q", doc_of_size(3));
        let (doc, age2) = c.get_with_age("q").unwrap();
        assert_eq!(doc.len(), 3);
        assert!(age2 <= age + Duration::from_secs(60));
    }

    #[test]
    fn invalidate_and_clear() {
        let c = ResultCache::new(10);
        c.put("a", doc_of_size(2));
        assert!(c.invalidate("a"));
        assert!(!c.invalidate("a"));
        c.put("b", doc_of_size(2));
        c.clear();
        assert!(c.get("b").is_none());
    }
}
