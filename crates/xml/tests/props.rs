//! Property-based tests for the XML data model: parse/serialize
//! roundtrips over generated documents, atomic-order laws, and path
//! display/parse stability.

use nimble_xml::{parse, to_string, to_string_pretty, Atomic, AtomicKey, DocumentBuilder, Path};
use proptest::prelude::*;
use std::sync::Arc;

/// Generated document description: a tree of elements with text and
/// attributes drawn from awkward character sets.
#[derive(Debug, Clone)]
enum GenNode {
    Element {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<GenNode>,
    },
    Text(String),
    Comment(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,8}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Includes the characters that must be escaped, plus unicode.
    proptest::collection::vec(
        prop_oneof![
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\''),
            Just('é'),
            Just('本'),
            proptest::char::range('a', 'z'),
            Just(' '),
        ],
        1..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn attr_strategy() -> impl Strategy<Value = (String, String)> {
    (name_strategy(), text_strategy())
}

fn node_strategy() -> impl Strategy<Value = GenNode> {
    let leaf = prop_oneof![
        text_strategy().prop_map(GenNode::Text),
        // Comments must not contain "--".
        "[a-z ]{0,10}".prop_map(GenNode::Comment),
        (name_strategy(), proptest::collection::vec(attr_strategy(), 0..3)).prop_map(
            |(name, attrs)| GenNode::Element {
                name,
                attrs,
                children: vec![],
            }
        ),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec(attr_strategy(), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| GenNode::Element {
                name,
                attrs,
                children,
            })
    })
}

/// Build children under the currently-open element, coalescing adjacent
/// text nodes (they would merge on reparse) so the generated tree is in
/// parser-normal form. Shared by the root and nested elements.
fn build_children(children: &[GenNode], b: &mut DocumentBuilder) {
    let mut pending_text = String::new();
    for c in children {
        if let GenNode::Text(t) = c {
            pending_text.push_str(t);
            continue;
        }
        if !pending_text.trim().is_empty() {
            b.text_str(&pending_text);
        }
        pending_text.clear();
        build(c, b);
    }
    if !pending_text.trim().is_empty() {
        b.text_str(&pending_text);
    }
}

fn build(node: &GenNode, b: &mut DocumentBuilder) {
    match node {
        GenNode::Element {
            name,
            attrs,
            children,
        } => {
            b.start_element(name);
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                // Duplicate attribute names are not well-formed XML.
                if seen.insert(k.clone()) {
                    b.attr(k, v);
                }
            }
            build_children(children, b);
            b.end_element();
        }
        GenNode::Text(t) => {
            // Whitespace-only text is dropped by the parser by design;
            // generate only meaningful text. (Callers coalesce adjacency.)
            if !t.trim().is_empty() {
                b.text_str(t);
            }
        }
        GenNode::Comment(c) => {
            b.comment(c);
        }
    }
}

fn doc_strategy() -> impl Strategy<Value = Arc<nimble_xml::Document>> {
    (name_strategy(), proptest::collection::vec(node_strategy(), 0..4)).prop_map(
        |(root, children)| {
            let mut b = DocumentBuilder::new(&root);
            build_children(&children, &mut b);
            b.finish()
        },
    )
}

proptest! {
    /// serialize → parse is the identity on document structure.
    #[test]
    fn serialize_parse_roundtrip(doc in doc_strategy()) {
        let text = to_string(&doc.root());
        let back = parse(&text).unwrap();
        prop_assert!(doc.root().deep_eq(&back.root()), "roundtrip failed for {}", text);
    }

    /// Pretty-printing parses back to a document with identical text
    /// content and element structure names.
    #[test]
    fn pretty_parse_keeps_element_structure(doc in doc_strategy()) {
        let pretty = to_string_pretty(&doc.root());
        let back = parse(&pretty).unwrap();
        let names = |d: &Arc<nimble_xml::Document>| -> Vec<String> {
            d.root()
                .descendants()
                .filter_map(|n| n.name().map(str::to_string))
                .collect()
        };
        prop_assert_eq!(names(&doc), names(&back));
    }

    /// Document order (node-id order) matches pre-order traversal.
    #[test]
    fn node_ids_are_preorder(doc in doc_strategy()) {
        let ids: Vec<u32> = doc
            .root()
            .descendants()
            .map(|n| n.id().index() as u32)
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ids, sorted);
    }

    /// Atomic total order is antisymmetric and transitive (checked by
    /// sorting consistency) and key_eq agrees with Ordering::Equal.
    #[test]
    fn atomic_order_laws(values in proptest::collection::vec(atomic_strategy(), 2..12)) {
        use std::cmp::Ordering;
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for w in sorted.windows(2) {
            prop_assert_ne!(w[0].total_cmp(&w[1]), Ordering::Greater);
        }
        for a in &values {
            for b in &values {
                prop_assert_eq!(a.key_eq(b), a.total_cmp(b) == Ordering::Equal);
                prop_assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            }
        }
    }

    /// AtomicKey hashing is consistent with equality.
    #[test]
    fn atomic_key_hash_consistency(a in atomic_strategy(), b in atomic_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |k: &AtomicKey| {
            let mut s = DefaultHasher::new();
            k.hash(&mut s);
            s.finish()
        };
        let (ka, kb) = (AtomicKey(a), AtomicKey(b));
        if ka == kb {
            prop_assert_eq!(h(&ka), h(&kb));
        }
    }

    /// Arbitrary input never panics the XML parser or the path parser.
    #[test]
    fn parsers_never_panic(input in "\\PC{0,60}") {
        let _ = parse(&input);
        let _ = Path::parse(&input);
    }

    /// Tag-soup-ish input never panics either.
    #[test]
    fn tag_soup_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("<a>".to_string()),
            Just("</a>".to_string()),
            Just("<a".to_string()),
            Just("/>".to_string()),
            Just("<!--".to_string()),
            Just("-->".to_string()),
            Just("<![CDATA[".to_string()),
            Just("]]>".to_string()),
            Just("&amp;".to_string()),
            Just("&#x41;".to_string()),
            Just("&bogus;".to_string()),
            Just("x='1'".to_string()),
            Just("text".to_string()),
        ],
        0..12,
    )) {
        let _ = parse(&parts.concat());
    }

    /// Path display/parse is stable.
    #[test]
    fn path_display_roundtrip(steps in proptest::collection::vec("[a-z][a-z0-9]{0,5}", 1..4), desc in any::<bool>()) {
        let mut text = steps.join("/");
        if desc {
            text = format!("{}//{}", text, "leaf");
        }
        let p = Path::parse(&text).unwrap();
        let p2 = Path::parse(&p.to_string()).unwrap();
        prop_assert_eq!(p, p2);
    }
}

fn atomic_strategy() -> impl Strategy<Value = Atomic> {
    prop_oneof![
        Just(Atomic::Null),
        any::<bool>().prop_map(Atomic::Bool),
        any::<i64>().prop_map(Atomic::Int),
        // Finite floats only; the engine normalizes NaN away.
        (-1e12f64..1e12).prop_map(Atomic::Float),
        "[ -~]{0,12}".prop_map(Atomic::Str),
    ]
}
