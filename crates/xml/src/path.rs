//! A compact path-navigation language over documents.
//!
//! Paths express the "navigation-style access" the paper lists among its
//! required XML features. The grammar is a pragmatic XPath-like subset:
//!
//! ```text
//! path  := step ('/' step)*
//! step  := name          child elements named `name`
//!        | '*'           any child element
//!        | '//' name     descendant elements named `name` (written a//b)
//!        | '..'          parent
//!        | '@' name      attribute value (must be the last step)
//!        | 'text()'      typed value of the context node
//! ```

use crate::atomic::Atomic;
use crate::node::NodeRef;
use crate::value::Value;
use std::fmt;

/// One navigation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// `name` — child elements with this tag.
    Child(String),
    /// `*` — all child elements.
    AnyChild,
    /// `//name` — descendant elements with this tag.
    Descendant(String),
    /// `..` — parent element.
    Parent,
    /// `@name` — attribute value; terminal.
    Attr(String),
    /// `text()` — the node's typed value; terminal.
    Text,
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    pub steps: Vec<Step>,
}

/// Error produced by [`Path::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathParseError(pub String);

impl fmt::Display for PathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path: {}", self.0)
    }
}
impl std::error::Error for PathParseError {}

impl Path {
    /// Parse a textual path like `book//author/@id`.
    pub fn parse(text: &str) -> Result<Path, PathParseError> {
        if text.trim().is_empty() {
            return Err(PathParseError("empty path".into()));
        }
        let mut steps = Vec::new();
        let mut rest = text.trim();
        let mut first = true;
        while !rest.is_empty() {
            let descendant = if rest.starts_with("//") {
                rest = &rest[2..];
                true
            } else if rest.starts_with('/') {
                if first {
                    return Err(PathParseError("paths are relative; no leading '/'".into()));
                }
                rest = &rest[1..];
                false
            } else if !first {
                return Err(PathParseError(format!("expected '/' before {:?}", rest)));
            } else {
                false
            };
            first = false;
            let end = rest.find('/').unwrap_or(rest.len());
            let token = &rest[..end];
            rest = &rest[end..];
            if token.is_empty() {
                return Err(PathParseError("empty step".into()));
            }
            let step = if descendant {
                if !is_valid_name(token) {
                    return Err(PathParseError(format!(
                        "descendant step must be a name, got {:?}",
                        token
                    )));
                }
                Step::Descendant(token.to_string())
            } else if token == "*" {
                Step::AnyChild
            } else if token == ".." {
                Step::Parent
            } else if token == "text()" {
                Step::Text
            } else if let Some(attr) = token.strip_prefix('@') {
                if !is_valid_name(attr) {
                    return Err(PathParseError(format!("invalid attribute name {:?}", attr)));
                }
                Step::Attr(attr.to_string())
            } else {
                if !is_valid_name(token) {
                    return Err(PathParseError(format!("invalid step {:?}", token)));
                }
                Step::Child(token.to_string())
            };
            let terminal = matches!(step, Step::Attr(_) | Step::Text);
            steps.push(step);
            if terminal && !rest.is_empty() {
                return Err(PathParseError(
                    "attribute/text() step must be last".into(),
                ));
            }
        }
        Ok(Path { steps })
    }

    /// Evaluate the path from a context node, yielding matched **values**:
    /// element steps yield nodes, `@attr`/`text()` yield atomics.
    pub fn eval(&self, context: &NodeRef) -> Vec<Value> {
        let mut current: Vec<Value> = vec![Value::Node(context.clone())];
        for step in &self.steps {
            let mut next = Vec::new();
            for v in &current {
                let node = match v {
                    Value::Node(n) => n,
                    _ => continue,
                };
                match step {
                    Step::Child(name) => {
                        next.extend(node.children_named(name).map(Value::Node));
                    }
                    Step::AnyChild => next.extend(node.child_elements().map(Value::Node)),
                    Step::Descendant(name) => next.extend(
                        node.descendants()
                            .filter(|d| d.name() == Some(name.as_str()))
                            .map(Value::Node),
                    ),
                    Step::Parent => {
                        if let Some(p) = node.parent() {
                            next.push(Value::Node(p));
                        }
                    }
                    Step::Attr(name) => {
                        if let Some(a) = node.attr(name) {
                            next.push(Value::Atomic(Atomic::infer(a)));
                        }
                    }
                    Step::Text => next.push(Value::Atomic(node.typed_value())),
                }
            }
            current = next;
        }
        current
    }

    /// Like [`eval`](Self::eval) but keeps only element nodes, which is
    /// what scan operators want.
    pub fn select<'a>(&self, context: NodeRef) -> impl Iterator<Item = NodeRef> + 'a {
        self.eval(&context).into_iter().filter_map(|v| match v {
            Value::Node(n) => Some(n),
            _ => None,
        })
    }

    /// First matched value, if any.
    pub fn eval_first(&self, context: &NodeRef) -> Option<Value> {
        self.eval(context).into_iter().next()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            match s {
                Step::Child(n) => {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    f.write_str(n)?;
                }
                Step::AnyChild => {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    f.write_str("*")?;
                }
                Step::Descendant(n) => {
                    f.write_str("//")?;
                    f.write_str(n)?;
                }
                Step::Parent => {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    f.write_str("..")?;
                }
                Step::Attr(n) => {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    write!(f, "@{}", n)?;
                }
                Step::Text => {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    f.write_str("text()")?;
                }
            }
        }
        Ok(())
    }
}

fn is_valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| {
            c.is_alphabetic() || c == '_' || c == ':'
        })
        && s.chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const DOC: &str = "<db>\
        <book year='1999'><title>Web Data</title><author><last>Abiteboul</last></author></book>\
        <book year='2001'><title>Integration</title><author><last>Halevy</last></author></book>\
        <journal><title>TODS</title></journal>\
    </db>";

    #[test]
    fn child_steps() {
        let doc = parse(DOC).unwrap();
        let p = Path::parse("book/title").unwrap();
        let titles: Vec<String> = p.select(doc.root()).map(|n| n.text()).collect();
        assert_eq!(titles, vec!["Web Data", "Integration"]);
    }

    #[test]
    fn descendant_step() {
        let doc = parse(DOC).unwrap();
        let p = Path::parse("//title").unwrap();
        assert_eq!(p.select(doc.root()).count(), 3);
        let p = Path::parse("book//last").unwrap();
        let names: Vec<String> = p.select(doc.root()).map(|n| n.text()).collect();
        assert_eq!(names, vec!["Abiteboul", "Halevy"]);
    }

    #[test]
    fn wildcard_and_parent() {
        let doc = parse(DOC).unwrap();
        let p = Path::parse("*/title/..").unwrap();
        let names: Vec<String> = p
            .select(doc.root())
            .map(|n| n.name().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["book", "book", "journal"]);
    }

    #[test]
    fn attribute_values_typed() {
        let doc = parse(DOC).unwrap();
        let p = Path::parse("book/@year").unwrap();
        let years = p.eval(&doc.root());
        assert_eq!(years.len(), 2);
        assert_eq!(years[0], Value::Atomic(Atomic::Int(1999)));
    }

    #[test]
    fn text_step() {
        let doc = parse(DOC).unwrap();
        let p = Path::parse("journal/title/text()").unwrap();
        assert_eq!(
            p.eval_first(&doc.root()),
            Some(Value::Atomic(Atomic::Str("TODS".into())))
        );
    }

    #[test]
    fn parse_errors() {
        assert!(Path::parse("").is_err());
        assert!(Path::parse("/abs").is_err());
        assert!(Path::parse("a//").is_err());
        assert!(Path::parse("@x/y").is_err());
        assert!(Path::parse("a/<b>").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for text in ["a/b", "a//b/@id", "*/..", "book/text()"] {
            let p = Path::parse(text).unwrap();
            assert_eq!(Path::parse(&p.to_string()).unwrap(), p);
        }
    }
}
