//! Process-global string interning.
//!
//! The hot path of the mediator moves the same small set of strings —
//! element and attribute names, relational column values, enum-like
//! text content — through parsing, binding tuples, join keys, grouping,
//! and result construction. Interning turns each distinct string into a
//! small copyable [`Sym`] id: equality and hashing become integer
//! operations, tuple clones stop allocating, and the lexical form is a
//! table lookup away when ordering or serialization needs it.
//!
//! ## Lifecycle
//!
//! The interner is process-global and append-only: a string, once
//! interned, lives for the remainder of the process (`&'static str` via
//! a deliberate leak). That is the right trade for a mediator whose
//! vocabulary is bounded by its sources' schemas and value domains; the
//! table size is observable through [`stats`] so the engine can export
//! it as a gauge. Ids are dense (`0..len`) and **stable for the life of
//! the process**, but not across processes — they must never be
//! persisted.
//!
//! ## Invariants
//!
//! * `Sym::intern(a) == Sym::intern(b)` iff `a == b` (id equality is
//!   string equality).
//! * `sym.as_str()` returns exactly the interned string, unchanged.
//! * [`Sym::EMPTY`] is the empty string and always has id 0.
//! * Id order is **not** lexical order: ordering must go through
//!   `as_str()` (see `Atomic::total_cmp`).

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a copyable 4-byte handle whose equality and hash
/// are integer operations. See the module docs for the invariants.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    table: Vec<&'static str>,
    bytes: usize,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        let mut map = HashMap::new();
        map.insert("", 0u32);
        RwLock::new(Interner {
            map,
            table: vec![""],
            bytes: 0,
        })
    })
}

/// The interner's lock is only ever held for panic-free map/vec
/// operations, so poisoning cannot leave it inconsistent; recover the
/// guard rather than propagating the panic flag.
macro_rules! read_interner {
    () => {
        interner().read().unwrap_or_else(|e| e.into_inner())
    };
}

impl Sym {
    /// The interned empty string (id 0).
    pub const EMPTY: Sym = Sym(0);

    /// Intern `s`, returning its stable id. Idempotent: the same string
    /// always yields the same id.
    pub fn intern(s: &str) -> Sym {
        if s.is_empty() {
            return Sym::EMPTY;
        }
        if let Some(&id) = read_interner!().map.get(s) {
            return Sym(id);
        }
        let mut w = interner().write().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = w.map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let id = w.table.len() as u32;
        w.table.push(leaked);
        w.map.insert(leaked, id);
        w.bytes += leaked.len();
        Sym(id)
    }

    /// Look up an already-interned string without inserting it.
    pub fn find(s: &str) -> Option<Sym> {
        read_interner!().map.get(s).copied().map(Sym)
    }

    /// The interned string. O(1) table lookup; the returned reference is
    /// `'static` because interned strings live for the process.
    pub fn as_str(self) -> &'static str {
        let g = read_interner!();
        g.table.get(self.0 as usize).copied().unwrap_or("")
    }

    /// The raw id, for diagnostics and dense side tables.
    pub fn id(self) -> u32 {
        self.0
    }
}

/// Interner size: `(distinct symbols, total interned bytes)`. Exported
/// by the engine as gauges so table growth is observable.
pub fn stats() -> (usize, usize) {
    let g = read_interner!();
    (g.table.len(), g.bytes)
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_equality_is_string_equality() {
        let a = Sym::intern("alpha");
        let b = Sym::intern("alpha");
        let c = Sym::intern("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha");
        assert_eq!(c.as_str(), "beta");
    }

    #[test]
    fn empty_is_id_zero() {
        assert_eq!(Sym::intern(""), Sym::EMPTY);
        assert_eq!(Sym::EMPTY.as_str(), "");
        assert_eq!(Sym::EMPTY.id(), 0);
    }

    #[test]
    fn find_does_not_insert() {
        let (before, _) = stats();
        assert_eq!(Sym::find("never-interned-probe-xyzzy"), None);
        let (after, _) = stats();
        assert_eq!(before, after);
        let s = Sym::intern("findable-token");
        assert_eq!(Sym::find("findable-token"), Some(s));
    }

    #[test]
    fn stats_grow_monotonically() {
        let (n0, b0) = stats();
        Sym::intern("stats-growth-probe-1");
        let (n1, b1) = stats();
        assert!(n1 > n0 || Sym::find("stats-growth-probe-1").is_some());
        assert!(b1 >= b0);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<Sym> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| Sym::intern("concurrent-probe")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap_or(Sym::EMPTY))
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(ids[0], Sym::EMPTY);
    }
}
