//! Construction of immutable documents.
//!
//! [`DocumentBuilder`] appends nodes in document order (pre-order), which
//! is what keeps `NodeId` comparison equivalent to document order. It is
//! the single write path for documents: the parser, the source adapters,
//! and the algebra's `Construct` operator all build through it.

use crate::atomic::Atomic;
use crate::intern::Sym;
use crate::node::{Document, NodeData, NodeId, NodeKind, NodeRef};
use std::sync::Arc;

/// Incrementally builds a [`Document`] with a cursor-based API.
///
/// ```
/// use nimble_xml::DocumentBuilder;
///
/// let mut b = DocumentBuilder::new("people");
/// b.start_element("person");
/// b.attr("id", "1");
/// b.text_str("Ada");
/// b.end_element();
/// let doc = b.finish();
/// assert_eq!(doc.root().child("person").unwrap().text(), "Ada");
/// ```
pub struct DocumentBuilder {
    nodes: Vec<NodeData>,
    /// Stack of open elements; the root stays at the bottom until `finish`.
    open: Vec<NodeId>,
}

impl DocumentBuilder {
    /// Start a new document whose root element has the given tag name.
    pub fn new(root_name: &str) -> Self {
        let root = NodeData {
            kind: NodeKind::Element {
                name: Sym::intern(root_name),
                attrs: Vec::new(),
            },
            parent: None,
            children: Vec::new(),
        };
        DocumentBuilder {
            nodes: vec![root],
            open: vec![NodeId(0)],
        }
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let parent = *self.open.last().expect("builder has no open element");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Open a child element; subsequent nodes nest inside it until
    /// [`end_element`](Self::end_element).
    pub fn start_element(&mut self, name: &str) -> NodeId {
        self.start_element_sym(Sym::intern(name))
    }

    /// Open a child element by interned name (the zero-allocation path
    /// used when copying subtrees and streaming construction).
    pub fn start_element_sym(&mut self, name: Sym) -> NodeId {
        let id = self.push_node(NodeKind::Element {
            name,
            attrs: Vec::new(),
        });
        self.open.push(id);
        id
    }

    /// Close the innermost open element. Panics on attempts to close the
    /// root (the root is closed by [`finish`](Self::finish)).
    pub fn end_element(&mut self) {
        assert!(
            self.open.len() > 1,
            "end_element would close the document root"
        );
        self.open.pop();
    }

    /// Add an attribute to the innermost open element.
    pub fn attr(&mut self, name: &str, value: &str) {
        self.attr_sym(Sym::intern(name), Sym::intern(value));
    }

    /// Add an attribute by interned name/value.
    pub fn attr_sym(&mut self, name: Sym, value: Sym) {
        let cur = *self.open.last().unwrap();
        match &mut self.nodes[cur.0 as usize].kind {
            NodeKind::Element { attrs, .. } => attrs.push((name, value)),
            _ => unreachable!("open stack only holds elements"),
        }
    }

    /// Append a typed text node.
    pub fn text(&mut self, value: Atomic) -> NodeId {
        self.push_node(NodeKind::Text(value))
    }

    /// Append a string text node (interned).
    pub fn text_str(&mut self, value: &str) -> NodeId {
        self.text(Atomic::Sym(Sym::intern(value)))
    }

    /// Append a comment node.
    pub fn comment(&mut self, text: &str) -> NodeId {
        self.push_node(NodeKind::Comment(text.to_string()))
    }

    /// Append a processing instruction.
    pub fn pi(&mut self, target: &str, data: &str) -> NodeId {
        self.push_node(NodeKind::Pi {
            target: target.to_string(),
            data: data.to_string(),
        })
    }

    /// Convenience: `<name>value</name>` as a single call.
    pub fn leaf(&mut self, name: &str, value: Atomic) -> NodeId {
        let id = self.start_element(name);
        if !value.is_null() {
            self.text(value);
        }
        self.end_element();
        id
    }

    /// Deep-copy an existing subtree (possibly from another document) as a
    /// child of the current element. Used by `Construct` when query results
    /// embed source fragments.
    pub fn copy_subtree(&mut self, node: &NodeRef) {
        match node.kind() {
            NodeKind::Element { name, attrs } => {
                let name = *name;
                let attrs = attrs.clone();
                self.start_element_sym(name);
                for (k, v) in attrs {
                    self.attr_sym(k, v);
                }
                let children: Vec<NodeRef> = node.children().collect();
                for c in &children {
                    self.copy_subtree(c);
                }
                self.end_element();
            }
            NodeKind::Text(a) => {
                self.text(a.clone());
            }
            NodeKind::Comment(c) => {
                self.comment(&c.clone());
            }
            NodeKind::Pi { target, data } => {
                self.pi(&target.clone(), &data.clone());
            }
        }
    }

    /// Depth of currently open elements (1 = only the root is open).
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Checkpoint the current append position. Everything appended after
    /// the mark can be inspected ([`serialize_since`](Self::serialize_since))
    /// and undone ([`rollback`](Self::rollback)) — the speculative-render
    /// path `Construct` uses for duplicate elimination instead of
    /// building each candidate in a scratch document.
    pub fn mark(&self) -> BuildMark {
        BuildMark {
            nodes_len: self.nodes.len(),
            open_len: self.open.len(),
        }
    }

    /// Discard every node appended since `mark` and restore the open
    /// stack. The mark must come from this builder, with no intervening
    /// rollback to an earlier mark.
    pub fn rollback(&mut self, mark: &BuildMark) {
        self.nodes.truncate(mark.nodes_len);
        self.open.truncate(mark.open_len);
        let cutoff = mark.nodes_len as u32;
        // Only elements still open at the mark can have gained children
        // since it was taken.
        for &id in &self.open {
            self.nodes[id.0 as usize]
                .children
                .retain(|c| c.0 < cutoff);
        }
    }

    /// True when nothing has been appended since `mark`.
    pub fn is_empty_since(&self, mark: &BuildMark) -> bool {
        self.nodes.len() == mark.nodes_len
    }

    /// Compact-serialize the forest appended since `mark` into `out`
    /// (append; caller clears). Byte-identical to running
    /// [`crate::serialize::to_string`] over each appended root in order,
    /// which is what makes it usable as a duplicate-elimination key.
    pub fn serialize_since(&self, mark: &BuildMark, out: &mut String) {
        for (i, n) in self.nodes[mark.nodes_len..].iter().enumerate() {
            let id = NodeId((mark.nodes_len + i) as u32);
            let root = match n.parent {
                Some(p) => (p.0 as usize) < mark.nodes_len,
                None => true,
            };
            if root {
                self.write_raw(id, out);
            }
        }
    }

    /// The root children appended since `mark`, in document order —
    /// the per-child granularity `Construct`'s duplicate elimination
    /// works at.
    pub fn roots_since(&self, mark: &BuildMark) -> Vec<NodeId> {
        self.nodes[mark.nodes_len..]
            .iter()
            .enumerate()
            .filter(|(_, n)| match n.parent {
                Some(p) => (p.0 as usize) < mark.nodes_len,
                None => true,
            })
            .map(|(i, _)| NodeId((mark.nodes_len + i) as u32))
            .collect()
    }

    /// Compact-serialize one appended subtree into `out` (append;
    /// caller clears). Matches [`crate::serialize::to_string`] byte for
    /// byte.
    pub fn serialize_node_into(&self, id: NodeId, out: &mut String) {
        self.write_raw(id, out);
    }

    /// Deep-copy a subtree of another (unfinished) builder's arena as a
    /// child of the current element. The cross-builder analogue of
    /// [`copy_subtree`](Self::copy_subtree); interned names make it an
    /// id copy per node.
    pub fn copy_from(&mut self, src: &DocumentBuilder, id: NodeId) {
        let n = &src.nodes[id.0 as usize];
        match &n.kind {
            NodeKind::Element { name, attrs } => {
                self.start_element_sym(*name);
                for &(k, v) in attrs {
                    self.attr_sym(k, v);
                }
                for &c in &n.children {
                    self.copy_from(src, c);
                }
                self.end_element();
            }
            k => {
                self.push_node(k.clone());
            }
        }
    }

    /// Compact serialization of one arena subtree, matching
    /// `serialize::to_string` byte for byte.
    fn write_raw(&self, id: NodeId, out: &mut String) {
        use std::fmt::Write;
        let n = &self.nodes[id.0 as usize];
        match &n.kind {
            NodeKind::Element { name, attrs } => {
                out.push('<');
                out.push_str(name.as_str());
                for (k, v) in attrs {
                    let _ = write!(
                        out,
                        " {}=\"{}\"",
                        k.as_str(),
                        crate::serialize::escape_attr(v.as_str())
                    );
                }
                if n.children.is_empty() {
                    out.push_str("/>");
                    return;
                }
                out.push('>');
                for &c in &n.children {
                    self.write_raw(c, out);
                }
                out.push_str("</");
                out.push_str(name.as_str());
                out.push('>');
            }
            NodeKind::Text(a) => {
                match a {
                    Atomic::Str(s) => crate::serialize::escape_text_into(out, s),
                    Atomic::Sym(s) => {
                        crate::serialize::escape_text_into(out, s.as_str())
                    }
                    other => {
                        crate::serialize::escape_text_into(out, &other.lexical())
                    }
                }
            }
            NodeKind::Comment(c) => {
                let _ = write!(out, "<!--{}-->", c);
            }
            NodeKind::Pi { target, data } => {
                if data.is_empty() {
                    let _ = write!(out, "<?{}?>", target);
                } else {
                    let _ = write!(out, "<?{} {}?>", target, data);
                }
            }
        }
    }

    /// Number of nodes appended so far (root included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Close any open elements and freeze the document.
    pub fn finish(mut self) -> Arc<Document> {
        self.open.clear();
        Arc::new(Document {
            nodes: self.nodes,
            root: NodeId(0),
        })
    }
}

/// A checkpoint of a [`DocumentBuilder`]'s append position; see
/// [`DocumentBuilder::mark`].
#[derive(Debug, Clone)]
pub struct BuildMark {
    nodes_len: usize,
    open_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::to_string;

    #[test]
    fn build_nested() {
        let mut b = DocumentBuilder::new("db");
        b.start_element("book");
        b.attr("year", "1999");
        b.leaf("title", Atomic::Str("Data on the Web".into()));
        b.end_element();
        let doc = b.finish();
        assert_eq!(
            to_string(&doc.root()),
            "<db><book year=\"1999\"><title>Data on the Web</title></book></db>"
        );
    }

    #[test]
    fn typed_leaves_preserve_types() {
        let mut b = DocumentBuilder::new("row");
        b.leaf("n", Atomic::Int(7));
        b.leaf("f", Atomic::Float(1.5));
        let doc = b.finish();
        assert_eq!(doc.root().child("n").unwrap().typed_value(), Atomic::Int(7));
        assert_eq!(
            doc.root().child("f").unwrap().typed_value(),
            Atomic::Float(1.5)
        );
    }

    #[test]
    fn copy_subtree_across_documents() {
        let src = crate::parse::parse("<a><b x='1'>t<!--c--></b></a>").unwrap();
        let mut b = DocumentBuilder::new("out");
        let node = src.root().child("b").unwrap();
        b.copy_subtree(&node);
        let doc = b.finish();
        assert!(doc.root().child("b").unwrap().deep_eq(&node));
    }

    #[test]
    #[should_panic(expected = "close the document root")]
    fn cannot_close_root() {
        let mut b = DocumentBuilder::new("r");
        b.end_element();
    }

    #[test]
    fn mark_rollback_discards_speculative_nodes() {
        let mut b = DocumentBuilder::new("r");
        b.leaf("keep", Atomic::Int(1));
        let m = b.mark();
        b.start_element("spec");
        b.leaf("x", Atomic::Int(2));
        b.end_element();
        assert!(!b.is_empty_since(&m));
        b.rollback(&m);
        assert!(b.is_empty_since(&m));
        b.leaf("keep2", Atomic::Int(3));
        let doc = b.finish();
        assert_eq!(
            to_string(&doc.root()),
            "<r><keep>1</keep><keep2>3</keep2></r>"
        );
    }

    #[test]
    fn serialize_since_matches_to_string() {
        let mut b = DocumentBuilder::new("r");
        let m = b.mark();
        b.start_element("a");
        b.attr("k", "v\"q");
        b.text_str("x < y");
        b.end_element();
        b.leaf("b", Atomic::Float(2.0));
        let mut key = String::new();
        b.serialize_since(&m, &mut key);
        let doc = b.finish();
        let full: String = doc.root().children().map(|c| to_string(&c)).collect();
        assert_eq!(key, full);
        assert_eq!(key, "<a k=\"v&quot;q\">x &lt; y</a><b>2.0</b>");
    }
}
