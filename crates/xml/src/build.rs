//! Construction of immutable documents.
//!
//! [`DocumentBuilder`] appends nodes in document order (pre-order), which
//! is what keeps `NodeId` comparison equivalent to document order. It is
//! the single write path for documents: the parser, the source adapters,
//! and the algebra's `Construct` operator all build through it.

use crate::atomic::Atomic;
use crate::node::{Document, NodeData, NodeId, NodeKind, NodeRef};
use std::sync::Arc;

/// Incrementally builds a [`Document`] with a cursor-based API.
///
/// ```
/// use nimble_xml::DocumentBuilder;
///
/// let mut b = DocumentBuilder::new("people");
/// b.start_element("person");
/// b.attr("id", "1");
/// b.text_str("Ada");
/// b.end_element();
/// let doc = b.finish();
/// assert_eq!(doc.root().child("person").unwrap().text(), "Ada");
/// ```
pub struct DocumentBuilder {
    nodes: Vec<NodeData>,
    /// Stack of open elements; the root stays at the bottom until `finish`.
    open: Vec<NodeId>,
}

impl DocumentBuilder {
    /// Start a new document whose root element has the given tag name.
    pub fn new(root_name: &str) -> Self {
        let root = NodeData {
            kind: NodeKind::Element {
                name: root_name.to_string(),
                attrs: Vec::new(),
            },
            parent: None,
            children: Vec::new(),
        };
        DocumentBuilder {
            nodes: vec![root],
            open: vec![NodeId(0)],
        }
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let parent = *self.open.last().expect("builder has no open element");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Open a child element; subsequent nodes nest inside it until
    /// [`end_element`](Self::end_element).
    pub fn start_element(&mut self, name: &str) -> NodeId {
        let id = self.push_node(NodeKind::Element {
            name: name.to_string(),
            attrs: Vec::new(),
        });
        self.open.push(id);
        id
    }

    /// Close the innermost open element. Panics on attempts to close the
    /// root (the root is closed by [`finish`](Self::finish)).
    pub fn end_element(&mut self) {
        assert!(
            self.open.len() > 1,
            "end_element would close the document root"
        );
        self.open.pop();
    }

    /// Add an attribute to the innermost open element.
    pub fn attr(&mut self, name: &str, value: &str) {
        let cur = *self.open.last().unwrap();
        match &mut self.nodes[cur.0 as usize].kind {
            NodeKind::Element { attrs, .. } => attrs.push((name.to_string(), value.to_string())),
            _ => unreachable!("open stack only holds elements"),
        }
    }

    /// Append a typed text node.
    pub fn text(&mut self, value: Atomic) -> NodeId {
        self.push_node(NodeKind::Text(value))
    }

    /// Append a string text node.
    pub fn text_str(&mut self, value: &str) -> NodeId {
        self.text(Atomic::Str(value.to_string()))
    }

    /// Append a comment node.
    pub fn comment(&mut self, text: &str) -> NodeId {
        self.push_node(NodeKind::Comment(text.to_string()))
    }

    /// Append a processing instruction.
    pub fn pi(&mut self, target: &str, data: &str) -> NodeId {
        self.push_node(NodeKind::Pi {
            target: target.to_string(),
            data: data.to_string(),
        })
    }

    /// Convenience: `<name>value</name>` as a single call.
    pub fn leaf(&mut self, name: &str, value: Atomic) -> NodeId {
        let id = self.start_element(name);
        if !value.is_null() {
            self.text(value);
        }
        self.end_element();
        id
    }

    /// Deep-copy an existing subtree (possibly from another document) as a
    /// child of the current element. Used by `Construct` when query results
    /// embed source fragments.
    pub fn copy_subtree(&mut self, node: &NodeRef) {
        match node.kind() {
            NodeKind::Element { name, attrs } => {
                let name = name.clone();
                let attrs = attrs.clone();
                self.start_element(&name);
                for (k, v) in &attrs {
                    self.attr(k, v);
                }
                let children: Vec<NodeRef> = node.children().collect();
                for c in &children {
                    self.copy_subtree(c);
                }
                self.end_element();
            }
            NodeKind::Text(a) => {
                self.text(a.clone());
            }
            NodeKind::Comment(c) => {
                self.comment(&c.clone());
            }
            NodeKind::Pi { target, data } => {
                self.pi(&target.clone(), &data.clone());
            }
        }
    }

    /// Depth of currently open elements (1 = only the root is open).
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Close any open elements and freeze the document.
    pub fn finish(mut self) -> Arc<Document> {
        self.open.clear();
        Arc::new(Document {
            nodes: self.nodes,
            root: NodeId(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::to_string;

    #[test]
    fn build_nested() {
        let mut b = DocumentBuilder::new("db");
        b.start_element("book");
        b.attr("year", "1999");
        b.leaf("title", Atomic::Str("Data on the Web".into()));
        b.end_element();
        let doc = b.finish();
        assert_eq!(
            to_string(&doc.root()),
            "<db><book year=\"1999\"><title>Data on the Web</title></book></db>"
        );
    }

    #[test]
    fn typed_leaves_preserve_types() {
        let mut b = DocumentBuilder::new("row");
        b.leaf("n", Atomic::Int(7));
        b.leaf("f", Atomic::Float(1.5));
        let doc = b.finish();
        assert_eq!(doc.root().child("n").unwrap().typed_value(), Atomic::Int(7));
        assert_eq!(
            doc.root().child("f").unwrap().typed_value(),
            Atomic::Float(1.5)
        );
    }

    #[test]
    fn copy_subtree_across_documents() {
        let src = crate::parse::parse("<a><b x='1'>t<!--c--></b></a>").unwrap();
        let mut b = DocumentBuilder::new("out");
        let node = src.root().child("b").unwrap();
        b.copy_subtree(&node);
        let doc = b.finish();
        assert!(doc.root().child("b").unwrap().deep_eq(&node));
    }

    #[test]
    #[should_panic(expected = "close the document root")]
    fn cannot_close_root() {
        let mut b = DocumentBuilder::new("r");
        b.end_element();
    }
}
