//! # nimble-xml
//!
//! The XML data model at the core of the Nimble data integration system
//! reproduction, together with a from-scratch XML 1.0 parser, a serializer,
//! a small path-navigation language, and a *shape* (schema) layer.
//!
//! ## The "slightly more structured" model
//!
//! The Nimble paper (§3.1) argues that a data model for an integration
//! product should accommodate XML, yet "deal efficiently with the types of
//! data that we expected to see from users most frequently (e.g.,
//! relational, hierarchical)". This crate realizes that as follows:
//!
//! * Atomic values are **typed** ([`Atomic`]: null, boolean, integer,
//!   float, string) rather than uniformly text, so relational columns round
//!   trip without reparsing.
//! * Documents are **ordered trees** stored in an arena ([`Document`]) with
//!   pre-order node ids, so document order (an XML requirement the paper
//!   calls "intrinsic") is a cheap integer comparison and navigation "up,
//!   down and sideways" is O(1) per step.
//! * Elements may be annotated with a [`shape::Shape`] describing
//!   record-like or list-like regular structure, which adapters for
//!   relational and hierarchical sources exploit.
//!
//! ## Quick example
//!
//! ```
//! use nimble_xml::{parse, Path};
//!
//! let doc = parse("<db><book year='1999'><title>Data on the Web</title></book></db>").unwrap();
//! let path = Path::parse("book/title").unwrap();
//! let titles: Vec<String> = path
//!     .select(doc.root())
//!     .map(|n| n.text())
//!     .collect();
//! assert_eq!(titles, vec!["Data on the Web"]);
//! ```

pub mod atomic;
pub mod build;
pub mod intern;
pub mod node;
pub mod parse;
pub mod path;
pub mod serialize;
pub mod shape;
pub mod value;

pub use atomic::{Atomic, AtomicKey, AtomicType};
pub use build::{BuildMark, DocumentBuilder};
pub use intern::Sym;
pub use node::{Document, NodeId, NodeKind, NodeRef};
pub use parse::{parse, ParseError};
pub use path::{Path, Step};
pub use serialize::{to_string, to_string_pretty, XmlWriter};
pub use shape::{Multiplicity, Shape, ShapeError};
pub use value::Value;
