//! Typed atomic values.
//!
//! The paper's data model is "slightly more structured" than raw XML: leaf
//! values keep the type they had in the source (a relational `INTEGER`
//! column stays an integer) instead of being flattened to text. All
//! comparisons used across the engine — including the total order needed
//! for sorting, B-tree indexing, and merge joins — live here.

use crate::intern::Sym;
use std::cmp::Ordering;
use std::fmt;

/// A typed atomic (leaf) value.
///
/// `Null` models SQL `NULL` and absent optional fields; it compares equal
/// only to itself and sorts before every other value.
///
/// `Str` and `Sym` are two representations of the **same** string type:
/// `Sym` holds an interned id (see [`crate::intern`]) and is what the
/// ingestion paths (parser, adapters) produce, while `Str` remains for
/// ad-hoc construction and computed strings. Every comparison, hash,
/// and coercion in the engine treats them identically by content.
#[derive(Debug, Clone)]
pub enum Atomic {
    /// Absent / unknown value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float. `NaN` is normalized away by constructors used in
    /// the engine; comparison treats `NaN` as equal to itself and greater
    /// than every other float so that a total order exists.
    Float(f64),
    /// UTF-8 string (owned).
    Str(String),
    /// UTF-8 string (interned): copyable, integer equality/hash.
    Sym(Sym),
}

/// `Str`/`Sym` compare by content; every other variant keeps the
/// semantics the previously-derived impl had (in particular
/// `Float(NaN) != Float(NaN)` under `==` — total order lives in
/// [`Atomic::total_cmp`]).
impl PartialEq for Atomic {
    fn eq(&self, other: &Self) -> bool {
        use Atomic::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Sym(a), Sym(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Str(a), Sym(b)) => a == b.as_str(),
            (Sym(a), Str(b)) => a.as_str() == b,
            _ => false,
        }
    }
}

/// The type of an [`Atomic`] value, used by shapes and schema inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicType {
    Null,
    Bool,
    Int,
    Float,
    Str,
}

impl Atomic {
    /// The type tag of this value.
    pub fn atomic_type(&self) -> AtomicType {
        match self {
            Atomic::Null => AtomicType::Null,
            Atomic::Bool(_) => AtomicType::Bool,
            Atomic::Int(_) => AtomicType::Int,
            Atomic::Float(_) => AtomicType::Float,
            Atomic::Str(_) | Atomic::Sym(_) => AtomicType::Str,
        }
    }

    /// True if this is [`Atomic::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Atomic::Null)
    }

    /// Interpret as a boolean for predicate evaluation: `Null` and empty
    /// strings are false, zero numbers are false, everything else is true.
    pub fn truthy(&self) -> bool {
        match self {
            Atomic::Null => false,
            Atomic::Bool(b) => *b,
            Atomic::Int(i) => *i != 0,
            Atomic::Float(f) => *f != 0.0,
            Atomic::Str(s) => !s.is_empty(),
            Atomic::Sym(s) => *s != Sym::EMPTY,
        }
    }

    /// Parse a lexical token into the most specific atomic type, the way
    /// schema-less adapters (CSV, text content) infer types.
    pub fn infer(text: &str) -> Atomic {
        let t = text.trim();
        if t.is_empty() {
            return Atomic::Sym(Sym::intern(text));
        }
        if let Ok(i) = t.parse::<i64>() {
            return Atomic::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            if f.is_finite() {
                return Atomic::Float(f);
            }
        }
        match t {
            "true" | "TRUE" => Atomic::Bool(true),
            "false" | "FALSE" => Atomic::Bool(false),
            _ => Atomic::Sym(Sym::intern(text)),
        }
    }

    /// Numeric view (ints widen to floats); `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Atomic::Int(i) => Some(*i as f64),
            Atomic::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view without conversion; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Atomic::Str(s) => Some(s),
            Atomic::Sym(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Lexical form, as it would appear as XML text content.
    pub fn lexical(&self) -> String {
        match self {
            Atomic::Null => String::new(),
            Atomic::Bool(b) => b.to_string(),
            Atomic::Int(i) => i.to_string(),
            Atomic::Float(f) => format_float(*f),
            Atomic::Str(s) => s.clone(),
            Atomic::Sym(s) => s.as_str().to_string(),
        }
    }

    /// Append the lexical form to `out` without an intermediate
    /// allocation (the buffer-reuse companion of
    /// [`lexical`](Self::lexical)).
    pub fn lexical_into(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Atomic::Null => {}
            Atomic::Bool(b) => {
                let _ = write!(out, "{}", b);
            }
            Atomic::Int(i) => {
                let _ = write!(out, "{}", i);
            }
            Atomic::Float(f) => format_float_into(out, *f),
            Atomic::Str(s) => out.push_str(s),
            Atomic::Sym(s) => out.push_str(s.as_str()),
        }
    }

    /// Total-order comparison usable for sorting and B-tree keys.
    ///
    /// Values of different types order by type rank
    /// (`Null < Bool < numbers < Str`); `Int` and `Float` compare
    /// numerically with each other.
    pub fn total_cmp(&self, other: &Atomic) -> Ordering {
        use Atomic::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => f64_total(*a, *b),
            (Int(a), Float(b)) => f64_total(*a as f64, *b),
            (Float(a), Int(b)) => f64_total(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (Sym(a), Sym(b)) => {
                if a == b {
                    Ordering::Equal
                } else {
                    a.as_str().cmp(b.as_str())
                }
            }
            (Str(a), Sym(b)) => a.as_str().cmp(b.as_str()),
            (Sym(a), Str(b)) => a.as_str().cmp(b.as_str()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    /// Equality usable for join keys: `Int(2) == Float(2.0)`,
    /// and `Null` never equals anything (SQL semantics are handled a level
    /// up; here `Null == Null` for grouping purposes).
    pub fn key_eq(&self, other: &Atomic) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    fn type_rank(&self) -> u8 {
        match self {
            Atomic::Null => 0,
            Atomic::Bool(_) => 1,
            Atomic::Int(_) | Atomic::Float(_) => 2,
            Atomic::Str(_) | Atomic::Sym(_) => 3,
        }
    }
}

fn f64_total(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

fn format_float(f: f64) -> String {
    let mut out = String::new();
    format_float_into(&mut out, f);
    out
}

fn format_float_into(out: &mut String, f: f64) {
    use std::fmt::Write;
    if f == f.trunc() && f.abs() < 1e15 {
        let _ = write!(out, "{:.1}", f);
    } else {
        let _ = write!(out, "{}", f);
    }
}

impl fmt::Display for Atomic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.lexical())
    }
}

impl From<i64> for Atomic {
    fn from(v: i64) -> Self {
        Atomic::Int(v)
    }
}
impl From<f64> for Atomic {
    fn from(v: f64) -> Self {
        Atomic::Float(v)
    }
}
impl From<bool> for Atomic {
    fn from(v: bool) -> Self {
        Atomic::Bool(v)
    }
}
impl From<&str> for Atomic {
    fn from(v: &str) -> Self {
        Atomic::Str(v.to_string())
    }
}
impl From<String> for Atomic {
    fn from(v: String) -> Self {
        Atomic::Str(v)
    }
}

/// Wrapper giving [`Atomic`] the `Eq + Ord + Hash` bounds required by
/// `BTreeMap`/`HashMap` keys (B-tree indexes, hash join tables).
#[derive(Debug, Clone)]
pub struct AtomicKey(pub Atomic);

impl PartialEq for AtomicKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.key_eq(&other.0)
    }
}
impl Eq for AtomicKey {}
impl PartialOrd for AtomicKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for AtomicKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for AtomicKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match &self.0 {
            Atomic::Null => 0u8.hash(state),
            Atomic::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and equal-valued floats must hash identically because
            // key_eq treats them as equal.
            Atomic::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Atomic::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            // Str and Sym are one logical type: hash by content with
            // the same tag so cross-representation keys collide.
            Atomic::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Atomic::Sym(s) => {
                3u8.hash(state);
                s.as_str().hash(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_types() {
        assert_eq!(Atomic::infer("42"), Atomic::Int(42));
        assert_eq!(Atomic::infer("-7"), Atomic::Int(-7));
        assert_eq!(Atomic::infer("3.25"), Atomic::Float(3.25));
        assert_eq!(Atomic::infer("true"), Atomic::Bool(true));
        assert_eq!(Atomic::infer("hello"), Atomic::Str("hello".into()));
        assert_eq!(Atomic::infer(""), Atomic::Str("".into()));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Atomic::Int(2).key_eq(&Atomic::Float(2.0)));
        assert!(!Atomic::Int(2).key_eq(&Atomic::Float(2.5)));
    }

    #[test]
    fn total_order_across_types() {
        let mut v = [Atomic::Str("a".into()),
            Atomic::Int(1),
            Atomic::Null,
            Atomic::Bool(true),
            Atomic::Float(0.5)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Atomic::Null);
        assert_eq!(v[1], Atomic::Bool(true));
        assert_eq!(v[2], Atomic::Float(0.5));
        assert_eq!(v[3], Atomic::Int(1));
        assert_eq!(v[4], Atomic::Str("a".into()));
    }

    #[test]
    fn key_hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |k: &AtomicKey| {
            let mut s = DefaultHasher::new();
            k.hash(&mut s);
            s.finish()
        };
        let a = AtomicKey(Atomic::Int(5));
        let b = AtomicKey(Atomic::Float(5.0));
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn lexical_roundtrip() {
        assert_eq!(Atomic::Int(10).lexical(), "10");
        assert_eq!(Atomic::Float(2.0).lexical(), "2.0");
        assert_eq!(Atomic::Bool(false).lexical(), "false");
        assert_eq!(Atomic::Null.lexical(), "");
    }

    #[test]
    fn truthiness() {
        assert!(!Atomic::Null.truthy());
        assert!(!Atomic::Int(0).truthy());
        assert!(Atomic::Int(3).truthy());
        assert!(!Atomic::Str("".into()).truthy());
        assert!(Atomic::Str("x".into()).truthy());
    }
}
