//! Arena-based ordered XML trees.
//!
//! A [`Document`] owns all its nodes in a single `Vec`; a [`NodeId`] is an
//! index into that arena. Nodes are allocated in pre-order, so **document
//! order is the numeric order of ids** — the property the paper leans on
//! for XML's "intrinsic ordering". Documents are immutable once built (see
//! [`crate::build::DocumentBuilder`]) and shared via `Arc`, which makes
//! binding tuples in the algebra cheap to copy.

use crate::atomic::Atomic;
use crate::intern::Sym;
use std::fmt;
use std::sync::Arc;

/// Index of a node within its [`Document`] arena. Ordering of ids is
/// document (pre-)order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena slot, mostly useful for diagnostics.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind-specific payload of a node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// An element with an interned tag name and attributes (in source
    /// order). Names and attribute strings are interned [`Sym`]s, so
    /// cloning a node's kind — and deep-copying subtrees during result
    /// construction — copies ids, not strings.
    Element {
        name: Sym,
        attrs: Vec<(Sym, Sym)>,
    },
    /// A text node holding a typed atomic value. Parsed documents store
    /// `Atomic::Str`; adapter-built documents keep source types.
    Text(Atomic),
    /// A comment (`<!-- ... -->`).
    Comment(String),
    /// A processing instruction (`<?target data?>`).
    Pi { target: String, data: String },
}

#[derive(Debug, Clone)]
pub(crate) struct NodeData {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
}

/// An immutable XML document: a tree of elements, text, comments, and
/// processing instructions rooted at a single element.
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) root: NodeId,
}

impl Document {
    /// The root element of the document.
    pub fn root(self: &Arc<Self>) -> NodeRef {
        NodeRef {
            doc: Arc::clone(self),
            id: self.root,
        }
    }

    /// Resolve an id to a reference. Panics if the id does not belong to
    /// this document's arena.
    pub fn node(self: &Arc<Self>, id: NodeId) -> NodeRef {
        assert!(
            (id.0 as usize) < self.nodes.len(),
            "NodeId {} out of bounds for document with {} nodes",
            id.0,
            self.nodes.len()
        );
        NodeRef {
            doc: Arc::clone(self),
            id,
        }
    }

    /// Total number of nodes (all kinds) in the document.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document has no nodes (only possible for the empty
    /// placeholder document).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// An empty single-element document `<name/>`, used as the identity
    /// result of constructions.
    pub fn empty(name: &str) -> Arc<Document> {
        let b = crate::build::DocumentBuilder::new(name);
        b.finish()
    }

    pub(crate) fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }
}

/// A cheap handle to one node of a shared document: an `Arc` plus an index.
#[derive(Clone)]
pub struct NodeRef {
    pub(crate) doc: Arc<Document>,
    pub(crate) id: NodeId,
}

impl NodeRef {
    /// The node's id within its document (document-order comparable).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The owning document.
    pub fn document(&self) -> &Arc<Document> {
        &self.doc
    }

    /// The node's payload.
    pub fn kind(&self) -> &NodeKind {
        &self.doc.data(self.id).kind
    }

    /// True if this node is an element.
    pub fn is_element(&self) -> bool {
        matches!(self.kind(), NodeKind::Element { .. })
    }

    /// Element tag name, or `None` for non-elements.
    pub fn name(&self) -> Option<&str> {
        match self.kind() {
            NodeKind::Element { name, .. } => Some(name.as_str()),
            _ => None,
        }
    }

    /// Element tag name as an interned symbol, or `None` for
    /// non-elements. Prefer this over [`name`](Self::name) when
    /// comparing against another interned name: it is an integer
    /// comparison.
    pub fn name_sym(&self) -> Option<Sym> {
        match self.kind() {
            NodeKind::Element { name, .. } => Some(*name),
            _ => None,
        }
    }

    /// Attribute lookup by name (elements only).
    pub fn attr(&self, name: &str) -> Option<&str> {
        match self.kind() {
            NodeKind::Element { attrs, .. } => {
                // A name that was never interned cannot be an attribute
                // of any document.
                let needle = Sym::find(name)?;
                attrs
                    .iter()
                    .find(|(k, _)| *k == needle)
                    .map(|(_, v)| v.as_str())
            }
            _ => None,
        }
    }

    /// All attributes in source order (empty for non-elements).
    pub fn attrs(&self) -> &[(Sym, Sym)] {
        match self.kind() {
            NodeKind::Element { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Parent node, `None` at the root.
    pub fn parent(&self) -> Option<NodeRef> {
        self.doc.data(self.id).parent.map(|p| NodeRef {
            doc: Arc::clone(&self.doc),
            id: p,
        })
    }

    /// All children in document order.
    pub fn children(&self) -> impl Iterator<Item = NodeRef> + '_ {
        self.doc
            .data(self.id)
            .children
            .iter()
            .map(move |&c| NodeRef {
                doc: Arc::clone(&self.doc),
                id: c,
            })
    }

    /// Child elements only, in document order.
    pub fn child_elements(&self) -> impl Iterator<Item = NodeRef> + '_ {
        self.children().filter(|c| c.is_element())
    }

    /// Child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = NodeRef> + 'a {
        let needle = Sym::find(name);
        self.child_elements()
            .filter(move |c| needle.is_some() && c.name_sym() == needle)
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<NodeRef> {
        self.children_named(name).next()
    }

    /// The next sibling in document order ("sideways" navigation).
    pub fn following_sibling(&self) -> Option<NodeRef> {
        let parent = self.doc.data(self.id).parent?;
        let siblings = &self.doc.data(parent).children;
        let pos = siblings.iter().position(|&c| c == self.id)?;
        siblings.get(pos + 1).map(|&c| NodeRef {
            doc: Arc::clone(&self.doc),
            id: c,
        })
    }

    /// The previous sibling in document order.
    pub fn preceding_sibling(&self) -> Option<NodeRef> {
        let parent = self.doc.data(self.id).parent?;
        let siblings = &self.doc.data(parent).children;
        let pos = siblings.iter().position(|&c| c == self.id)?;
        if pos == 0 {
            None
        } else {
            Some(NodeRef {
                doc: Arc::clone(&self.doc),
                id: siblings[pos - 1],
            })
        }
    }

    /// All descendant elements (not including self), pre-order.
    pub fn descendants(&self) -> Descendants {
        Descendants {
            doc: Arc::clone(&self.doc),
            stack: self
                .doc
                .data(self.id)
                .children
                .iter()
                .rev()
                .copied()
                .collect(),
        }
    }

    /// Concatenated text content of this node and its descendants.
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    /// Append the concatenated text content to `out` (buffer-reuse
    /// companion of [`text`](Self::text)).
    pub fn text_into(&self, out: &mut String) {
        self.collect_text(out);
    }

    fn collect_text(&self, out: &mut String) {
        match self.kind() {
            NodeKind::Text(a) => a.lexical_into(out),
            NodeKind::Element { .. } => {
                for c in self.children() {
                    c.collect_text(out);
                }
            }
            _ => {}
        }
    }

    /// The typed value of this node: for a text node its atomic, for an
    /// element with a single text child that child's atomic, otherwise the
    /// concatenated text as a string (empty elements yield `Null`).
    pub fn typed_value(&self) -> Atomic {
        match self.kind() {
            NodeKind::Text(a) => a.clone(),
            NodeKind::Element { .. } => {
                let children = &self.doc.data(self.id).children;
                if children.is_empty() {
                    return Atomic::Null;
                }
                if children.len() == 1 {
                    if let NodeKind::Text(a) = &self.doc.data(children[0]).kind {
                        return a.clone();
                    }
                }
                Atomic::Str(self.text())
            }
            NodeKind::Comment(_) | NodeKind::Pi { .. } => Atomic::Null,
        }
    }

    /// True when both refs point to the same node of the same document
    /// (node identity, not structural equality).
    pub fn same_node(&self, other: &NodeRef) -> bool {
        Arc::ptr_eq(&self.doc, &other.doc) && self.id == other.id
    }

    /// Document-order comparison; only meaningful within one document.
    /// Across documents, orders by document pointer to stay total.
    pub fn doc_order(&self, other: &NodeRef) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.doc, &other.doc) {
            self.id.cmp(&other.id)
        } else {
            (Arc::as_ptr(&self.doc) as usize).cmp(&(Arc::as_ptr(&other.doc) as usize))
        }
    }

    /// Structural (deep) equality of the subtrees rooted here.
    pub fn deep_eq(&self, other: &NodeRef) -> bool {
        if self.kind() != other.kind() {
            return false;
        }
        let a: Vec<NodeRef> = self.children().collect();
        let b: Vec<NodeRef> = other.children().collect();
        a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.deep_eq(y))
    }

    /// Number of nodes in the subtree rooted here (including self).
    pub fn subtree_size(&self) -> usize {
        1 + self.children().map(|c| c.subtree_size()).sum::<usize>()
    }
}

impl fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            NodeKind::Element { name, .. } => write!(f, "NodeRef(<{}> #{})", name, self.id.0),
            NodeKind::Text(a) => write!(f, "NodeRef(text {:?} #{})", a.lexical(), self.id.0),
            NodeKind::Comment(_) => write!(f, "NodeRef(comment #{})", self.id.0),
            NodeKind::Pi { target, .. } => write!(f, "NodeRef(pi {} #{})", target, self.id.0),
        }
    }
}

/// Pre-order iterator over descendant elements.
pub struct Descendants {
    doc: Arc<Document>,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants {
    type Item = NodeRef;

    fn next(&mut self) -> Option<NodeRef> {
        while let Some(id) = self.stack.pop() {
            let data = self.doc.data(id);
            for &c in data.children.iter().rev() {
                self.stack.push(c);
            }
            if matches!(data.kind, NodeKind::Element { .. }) {
                return Some(NodeRef {
                    doc: Arc::clone(&self.doc),
                    id,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::parse;

    #[test]
    fn navigation_up_down_sideways() {
        let doc = parse("<a><b>1</b><c>2</c><b>3</b></a>").unwrap();
        let root = doc.root();
        assert_eq!(root.name(), Some("a"));
        let first_b = root.child("b").unwrap();
        assert_eq!(first_b.text(), "1");
        let c = first_b.following_sibling().unwrap();
        assert_eq!(c.name(), Some("c"));
        assert_eq!(c.parent().unwrap().name(), Some("a"));
        assert_eq!(c.preceding_sibling().unwrap().text(), "1");
        let bs: Vec<String> = root.children_named("b").map(|n| n.text()).collect();
        assert_eq!(bs, vec!["1", "3"]);
    }

    #[test]
    fn document_order_is_id_order() {
        let doc = parse("<a><b><d/></b><c/></a>").unwrap();
        let names: Vec<String> = doc
            .root()
            .descendants()
            .map(|n| n.name().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["b", "d", "c"]);
        let d = doc.root().descendants().find(|n| n.name() == Some("d")).unwrap();
        let c = doc.root().descendants().find(|n| n.name() == Some("c")).unwrap();
        assert_eq!(d.doc_order(&c), std::cmp::Ordering::Less);
    }

    #[test]
    fn typed_value_of_simple_element() {
        let doc = parse("<n>42</n>").unwrap();
        // Parsed text stays a string; adapters produce typed atoms.
        assert_eq!(doc.root().typed_value().lexical(), "42");
    }

    #[test]
    fn deep_eq_and_subtree_size() {
        let a = parse("<x><y>1</y></x>").unwrap();
        let b = parse("<x><y>1</y></x>").unwrap();
        let c = parse("<x><y>2</y></x>").unwrap();
        assert!(a.root().deep_eq(&b.root()));
        assert!(!a.root().deep_eq(&c.root()));
        assert_eq!(a.root().subtree_size(), 3);
    }

    #[test]
    fn same_node_identity() {
        let a = parse("<x><y/></x>").unwrap();
        let y1 = a.root().child("y").unwrap();
        let y2 = a.root().child("y").unwrap();
        assert!(y1.same_node(&y2));
        let b = parse("<x><y/></x>").unwrap();
        assert!(!y1.same_node(&b.root().child("y").unwrap()));
    }
}
