//! The runtime value domain shared by the whole engine: atomics, nodes,
//! and lists (the result of grouping/collection).

use crate::atomic::Atomic;
use crate::node::NodeRef;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A value a query variable may be bound to.
#[derive(Clone)]
pub enum Value {
    /// A typed leaf value.
    Atomic(Atomic),
    /// A reference to a node of some document (binding is by reference;
    /// the document is shared, not copied).
    Node(NodeRef),
    /// An ordered collection, produced by grouping constructs.
    List(Arc<Vec<Value>>),
}

impl Value {
    /// `Null` shorthand.
    pub fn null() -> Value {
        Value::Atomic(Atomic::Null)
    }

    /// True for `Atomic(Null)`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Atomic(Atomic::Null))
    }

    /// Collapse to an atomic: atomics pass through, nodes yield their typed
    /// value, lists yield their first element's atomization (or `Null`).
    pub fn atomize(&self) -> Atomic {
        match self {
            Value::Atomic(a) => a.clone(),
            Value::Node(n) => n.typed_value(),
            Value::List(items) => items
                .first()
                .map(|v| v.atomize())
                .unwrap_or(Atomic::Null),
        }
    }

    /// The value as display text.
    pub fn lexical(&self) -> String {
        match self {
            Value::Atomic(a) => a.lexical(),
            Value::Node(n) => n.text(),
            Value::List(items) => items
                .iter()
                .map(|v| v.lexical())
                .collect::<Vec<_>>()
                .join(","),
        }
    }

    /// Append the display text to `out` (buffer-reuse companion of
    /// [`lexical`](Self::lexical)).
    pub fn lexical_into(&self, out: &mut String) {
        match self {
            Value::Atomic(a) => a.lexical_into(out),
            Value::Node(n) => n.text_into(out),
            Value::List(items) => {
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.lexical_into(out);
                }
            }
        }
    }

    /// Predicate truthiness (see [`Atomic::truthy`]); nodes are true,
    /// non-empty lists are true.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Atomic(a) => a.truthy(),
            Value::Node(_) => true,
            Value::List(items) => !items.is_empty(),
        }
    }

    /// Total order used by Sort and Distinct: atomics by
    /// [`Atomic::total_cmp`] (after atomizing nodes), then by node
    /// identity/document order for pure node comparisons, lists
    /// lexicographically.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Node(a), Value::Node(b)) => {
                let c = a.typed_value().total_cmp(&b.typed_value());
                if c != Ordering::Equal {
                    c
                } else {
                    a.doc_order(b)
                }
            }
            (a, b) => a.atomize().total_cmp(&b.atomize()),
        }
    }

    /// Join-key / grouping equality: compares atomized values for mixed
    /// kinds, structural equality for node-node, element-wise for lists.
    pub fn key_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Node(a), Value::Node(b)) => {
                a.same_node(b) || a.typed_value().key_eq(&b.typed_value())
            }
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.key_eq(y))
            }
            (a, b) => a.atomize().key_eq(&b.atomize()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.key_eq(other)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atomic(a) => write!(f, "{:?}", a),
            Value::Node(n) => write!(f, "{:?}", n),
            Value::List(items) => f.debug_list().entries(items.iter()).finish(),
        }
    }
}

impl From<Atomic> for Value {
    fn from(a: Atomic) -> Self {
        Value::Atomic(a)
    }
}
impl From<NodeRef> for Value {
    fn from(n: NodeRef) -> Self {
        Value::Node(n)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Atomic(Atomic::Int(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Atomic(Atomic::Float(v))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Atomic(Atomic::Bool(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Atomic(Atomic::Str(v.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn atomize_node() {
        let doc = parse("<n>42</n>").unwrap();
        let v = Value::Node(doc.root());
        assert_eq!(v.atomize(), Atomic::Str("42".into()));
    }

    #[test]
    fn node_vs_atomic_comparison() {
        let doc = parse("<n>5</n>").unwrap();
        let v = Value::Node(doc.root());
        // Node text "5" compares as a string against Str("5").
        assert!(v.key_eq(&Value::from("5")));
    }

    #[test]
    fn list_ordering() {
        let a = Value::List(Arc::new(vec![Value::from(1i64), Value::from(2i64)]));
        let b = Value::List(Arc::new(vec![Value::from(1i64), Value::from(3i64)]));
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        let c = Value::List(Arc::new(vec![Value::from(1i64)]));
        assert_eq!(c.total_cmp(&a), Ordering::Less);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::null().truthy());
        assert!(Value::from("x").truthy());
        assert!(!Value::List(Arc::new(vec![])).truthy());
    }
}
