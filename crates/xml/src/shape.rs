//! Shapes: the "slightly more structured" layer over XML.
//!
//! A [`Shape`] describes the regular structure of an element the way a
//! relational or hierarchical source would export it. Source adapters
//! publish shapes as their schemas; the mediator composes them; validation
//! checks that a document conforms. Shapes deliberately stop short of a
//! full grammar formalism — they capture records, homogeneous lists, and
//! typed leaves, which is what relational/hierarchical data needs, while
//! `Any` keeps arbitrary XML admissible.

use crate::atomic::AtomicType;
use crate::node::{NodeKind, NodeRef};
use std::fmt;

/// How many occurrences of a field are allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Multiplicity {
    /// Exactly one.
    One,
    /// Zero or one.
    Optional,
    /// Zero or more.
    Many,
    /// One or more.
    AtLeastOne,
}

impl Multiplicity {
    fn admits(self, count: usize) -> bool {
        match self {
            Multiplicity::One => count == 1,
            Multiplicity::Optional => count <= 1,
            Multiplicity::Many => true,
            Multiplicity::AtLeastOne => count >= 1,
        }
    }
}

/// A named field of a record shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    pub multiplicity: Multiplicity,
    pub shape: Shape,
}

/// The structure of an element's content.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// A typed leaf: text content of the given atomic type. `Str` admits
    /// any text; numeric types require parseable content.
    Leaf(AtomicType),
    /// Record-like content: named child elements with multiplicities, in
    /// any order. This is the natural export of a relational row or a
    /// hierarchical segment.
    Record(Vec<Field>),
    /// List-like content: zero or more children all named `item_name`,
    /// each with the given shape. The natural export of a table or a
    /// repeating segment.
    List {
        item_name: String,
        item: Box<Shape>,
    },
    /// Unconstrained XML content.
    Any,
}

/// A violation found during validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeError {
    /// Path from the validated root, e.g. `people/person[2]/age`.
    pub path: String,
    pub message: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}
impl std::error::Error for ShapeError {}

impl Shape {
    /// Shorthand for a string leaf.
    pub fn str_leaf() -> Shape {
        Shape::Leaf(AtomicType::Str)
    }

    /// Shorthand for an integer leaf.
    pub fn int_leaf() -> Shape {
        Shape::Leaf(AtomicType::Int)
    }

    /// A record with all-`One` string fields — the shape of a simple row.
    pub fn row(fields: &[&str]) -> Shape {
        Shape::Record(
            fields
                .iter()
                .map(|f| Field {
                    name: f.to_string(),
                    multiplicity: Multiplicity::One,
                    shape: Shape::str_leaf(),
                })
                .collect(),
        )
    }

    /// Validate a subtree, returning all violations (empty = conforms).
    pub fn validate(&self, node: &NodeRef) -> Vec<ShapeError> {
        let mut errors = Vec::new();
        self.validate_into(node, "", &mut errors);
        errors
    }

    /// Validate and convert to `Result`.
    pub fn check(&self, node: &NodeRef) -> Result<(), ShapeError> {
        match self.validate(node).into_iter().next() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn validate_into(&self, node: &NodeRef, path: &str, errors: &mut Vec<ShapeError>) {
        let here = if path.is_empty() {
            node.name().unwrap_or("?").to_string()
        } else {
            path.to_string()
        };
        match self {
            Shape::Any => {}
            Shape::Leaf(t) => {
                if node.child_elements().next().is_some() {
                    errors.push(ShapeError {
                        path: here,
                        message: "expected leaf content, found child elements".into(),
                    });
                    return;
                }
                let text = node.text();
                let ok = match t {
                    AtomicType::Str | AtomicType::Null => true,
                    AtomicType::Int => text.trim().is_empty() || text.trim().parse::<i64>().is_ok(),
                    AtomicType::Float => {
                        text.trim().is_empty() || text.trim().parse::<f64>().is_ok()
                    }
                    AtomicType::Bool => {
                        matches!(text.trim(), "" | "true" | "false" | "TRUE" | "FALSE")
                    }
                };
                if !ok {
                    errors.push(ShapeError {
                        path: here,
                        message: format!("content {:?} is not a valid {:?}", text, t),
                    });
                }
            }
            Shape::Record(fields) => {
                for field in fields {
                    let matches: Vec<NodeRef> = node.children_named(&field.name).collect();
                    if !field.multiplicity.admits(matches.len()) {
                        errors.push(ShapeError {
                            path: here.clone(),
                            message: format!(
                                "field {:?} occurs {} times, violating {:?}",
                                field.name,
                                matches.len(),
                                field.multiplicity
                            ),
                        });
                    }
                    for (i, m) in matches.iter().enumerate() {
                        let mut child_path = format!("{}/{}", here, field.name);
                        if matches.len() > 1 {
                            child_path.push_str(&format!("[{}]", i + 1));
                        }
                        field.shape.validate_into(m, &child_path, errors);
                    }
                }
                let known: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                for c in node.child_elements() {
                    if let Some(n) = c.name() {
                        if !known.contains(&n) {
                            errors.push(ShapeError {
                                path: here.clone(),
                                message: format!("unexpected field {:?}", n),
                            });
                        }
                    }
                }
            }
            Shape::List { item_name, item } => {
                for (i, c) in node.child_elements().enumerate() {
                    if c.name() != Some(item_name.as_str()) {
                        errors.push(ShapeError {
                            path: here.clone(),
                            message: format!(
                                "list of {:?} contains {:?}",
                                item_name,
                                c.name().unwrap_or("?")
                            ),
                        });
                    } else {
                        let child_path = format!("{}/{}[{}]", here, item_name, i + 1);
                        item.validate_into(&c, &child_path, errors);
                    }
                }
                if node
                    .children()
                    .any(|c| matches!(c.kind(), NodeKind::Text(a) if !a.lexical().trim().is_empty()))
                {
                    errors.push(ShapeError {
                        path: here,
                        message: "list content must not contain text".into(),
                    });
                }
            }
        }
    }

    /// Infer a shape from a sample document: element children with uniform
    /// names become lists, mixed named children become records, text-only
    /// elements become typed leaves.
    pub fn infer(node: &NodeRef) -> Shape {
        let children: Vec<NodeRef> = node.child_elements().collect();
        if children.is_empty() {
            let text = node.text();
            return Shape::Leaf(crate::atomic::Atomic::infer(&text).atomic_type());
        }
        let first_name = children[0].name().unwrap_or("").to_string();
        let uniform = children.len() > 1
            && children
                .iter()
                .all(|c| c.name() == Some(first_name.as_str()));
        if uniform {
            Shape::List {
                item_name: first_name,
                item: Box::new(Shape::infer(&children[0])),
            }
        } else {
            let mut fields: Vec<Field> = Vec::new();
            for c in &children {
                let name = c.name().unwrap_or("").to_string();
                if let Some(existing) = fields.iter_mut().find(|f| f.name == name) {
                    existing.multiplicity = Multiplicity::Many;
                } else {
                    fields.push(Field {
                        name,
                        multiplicity: Multiplicity::One,
                        shape: Shape::infer(c),
                    });
                }
            }
            Shape::Record(fields)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn person_shape() -> Shape {
        Shape::Record(vec![
            Field {
                name: "name".into(),
                multiplicity: Multiplicity::One,
                shape: Shape::str_leaf(),
            },
            Field {
                name: "age".into(),
                multiplicity: Multiplicity::Optional,
                shape: Shape::int_leaf(),
            },
            Field {
                name: "email".into(),
                multiplicity: Multiplicity::Many,
                shape: Shape::str_leaf(),
            },
        ])
    }

    #[test]
    fn valid_record() {
        let doc = parse("<p><name>Ada</name><age>36</age><email>a@x</email><email>b@x</email></p>")
            .unwrap();
        assert!(person_shape().validate(&doc.root()).is_empty());
    }

    #[test]
    fn missing_required_field() {
        let doc = parse("<p><age>36</age></p>").unwrap();
        let errs = person_shape().validate(&doc.root());
        assert!(errs.iter().any(|e| e.message.contains("\"name\"")));
    }

    #[test]
    fn type_violation() {
        let doc = parse("<p><name>Ada</name><age>old</age></p>").unwrap();
        let errs = person_shape().validate(&doc.root());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].path.contains("age"));
    }

    #[test]
    fn unexpected_field() {
        let doc = parse("<p><name>Ada</name><ssn>1</ssn></p>").unwrap();
        let errs = person_shape().validate(&doc.root());
        assert!(errs.iter().any(|e| e.message.contains("\"ssn\"")));
    }

    #[test]
    fn list_shape() {
        let shape = Shape::List {
            item_name: "row".into(),
            item: Box::new(Shape::row(&["a", "b"])),
        };
        let good = parse("<t><row><a>1</a><b>2</b></row><row><a>3</a><b>4</b></row></t>").unwrap();
        assert!(shape.validate(&good.root()).is_empty());
        let bad = parse("<t><row><a>1</a><b>2</b></row><other/></t>").unwrap();
        assert!(!shape.validate(&bad.root()).is_empty());
    }

    #[test]
    fn inference_list_and_record() {
        let doc =
            parse("<t><row><a>1</a><b>x</b></row><row><a>2</a><b>y</b></row></t>").unwrap();
        let shape = Shape::infer(&doc.root());
        match &shape {
            Shape::List { item_name, item } => {
                assert_eq!(item_name, "row");
                match item.as_ref() {
                    Shape::Record(fields) => {
                        assert_eq!(fields.len(), 2);
                        assert_eq!(fields[0].shape, Shape::Leaf(AtomicType::Int));
                    }
                    other => panic!("expected record, got {:?}", other),
                }
            }
            other => panic!("expected list, got {:?}", other),
        }
        // Inferred shape validates its own source.
        assert!(shape.validate(&doc.root()).is_empty());
    }
}
