//! Serialization of documents back to XML text.

use crate::atomic::Atomic;
use crate::intern::Sym;
use crate::node::{NodeKind, NodeRef};
use std::fmt::Write;

/// Serialize a subtree to compact XML (no added whitespace).
pub fn to_string(node: &NodeRef) -> String {
    let mut out = String::new();
    write_node(&mut out, node, None, 0);
    out
}

/// Serialize a subtree with two-space indentation, one element per line.
/// Mixed content (elements with text siblings) is kept inline so text is
/// not distorted.
pub fn to_string_pretty(node: &NodeRef) -> String {
    let mut out = String::new();
    write_node(&mut out, node, Some(2), 0);
    out
}

fn write_node(out: &mut String, node: &NodeRef, indent: Option<usize>, depth: usize) {
    match node.kind() {
        NodeKind::Element { name, attrs } => {
            if let Some(w) = indent {
                if depth > 0 {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * depth));
                }
            }
            out.push('<');
            out.push_str(name.as_str());
            for (k, v) in attrs {
                let _ = write!(out, " {}=\"{}\"", k.as_str(), escape_attr(v.as_str()));
            }
            let children: Vec<NodeRef> = node.children().collect();
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let mixed = children
                .iter()
                .any(|c| matches!(c.kind(), NodeKind::Text(_)));
            let child_indent = if mixed { None } else { indent };
            for c in &children {
                write_node(out, c, child_indent, depth + 1);
            }
            if let Some(w) = indent {
                if !mixed {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * depth));
                }
            }
            out.push_str("</");
            out.push_str(name.as_str());
            out.push('>');
        }
        NodeKind::Text(a) => match a {
            Atomic::Str(s) => escape_text_into(out, s),
            Atomic::Sym(s) => escape_text_into(out, s.as_str()),
            other => other.lexical_into(out),
        },
        NodeKind::Comment(c) => {
            let _ = write!(out, "<!--{}-->", c);
        }
        NodeKind::Pi { target, data } => {
            if data.is_empty() {
                let _ = write!(out, "<?{}?>", target);
            } else {
                let _ = write!(out, "<?{} {}?>", target, data);
            }
        }
    }
}

/// Escape text content: `<`, `>`, `&`.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_text_into(&mut out, s);
    out
}

/// Append escaped text content to `out` without an intermediate
/// allocation.
pub fn escape_text_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

/// Escape an attribute value for double-quoted output.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_attr_into(&mut out, s);
    out
}

/// Append an escaped attribute value to `out` without an intermediate
/// allocation.
pub fn escape_attr_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Push-style streaming XML writer.
///
/// Produces output **byte-identical** to [`to_string`] over the
/// equivalent built document, without materializing the tree: elements
/// with no content self-close (`<a/>`), escaping matches
/// [`escape_text`]/[`escape_attr`], and no whitespace is added. The
/// streaming construct path (`core::construct`) emits result documents
/// through this instead of `DocumentBuilder` + `to_string`.
///
/// Speculative rendering: [`mark`](Self::mark) checkpoints the output so
/// a candidate run can be rendered, inspected
/// ([`since`](Self::since)), and undone ([`rollback`](Self::rollback))
/// for duplicate elimination.
pub struct XmlWriter {
    out: String,
    /// Open elements: interned name plus whether the start tag has been
    /// closed with `>` (it stays open until the first child arrives so
    /// childless elements can self-close).
    stack: Vec<(Sym, bool)>,
}

/// Checkpoint of an [`XmlWriter`]'s output position; see
/// [`XmlWriter::mark`].
#[derive(Debug, Clone)]
pub struct WriteMark {
    len: usize,
    depth: usize,
    parent_closed: bool,
}

impl XmlWriter {
    /// Start a document whose root element has the given name.
    pub fn new(root_name: &str) -> XmlWriter {
        XmlWriter::new_sym(Sym::intern(root_name))
    }

    /// Start a document by interned root name.
    pub fn new_sym(root_name: Sym) -> XmlWriter {
        let mut w = XmlWriter {
            out: String::new(),
            stack: Vec::new(),
        };
        w.open_tag(root_name);
        w
    }

    fn open_tag(&mut self, name: Sym) {
        self.out.push('<');
        self.out.push_str(name.as_str());
        self.stack.push((name, false));
    }

    /// Close the innermost start tag with `>` if the element is about to
    /// receive content.
    fn seal(&mut self) {
        if let Some((_, closed)) = self.stack.last_mut() {
            if !*closed {
                *closed = true;
                self.out.push('>');
            }
        }
    }

    /// Open a child element.
    pub fn start_element(&mut self, name: &str) {
        self.start_element_sym(Sym::intern(name));
    }

    /// Open a child element by interned name.
    pub fn start_element_sym(&mut self, name: Sym) {
        self.seal();
        self.open_tag(name);
    }

    /// Add an attribute to the innermost open element. Must precede any
    /// content of that element (panics otherwise — attribute-after-child
    /// is a construction bug, not data-dependent).
    pub fn attr(&mut self, name: &str, value: &str) {
        let sealed = self.stack.last().map(|(_, c)| *c).unwrap_or(true);
        assert!(!sealed, "attr after element content");
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        escape_attr_into(&mut self.out, value);
        self.out.push('"');
    }

    /// Append escaped text content.
    pub fn text_str(&mut self, s: &str) {
        self.seal();
        escape_text_into(&mut self.out, s);
    }

    /// Explicitly close the innermost start tag (normally done lazily
    /// by the first child). Streaming construct seals its scratch root
    /// up front so recorded child offsets never include the `>`.
    pub fn seal_start_tag(&mut self) {
        self.seal();
    }

    /// Append pre-serialized XML verbatim as content of the innermost
    /// open element. The caller vouches that `xml` is well-formed
    /// serialized content (streaming construct's deduplicated runs come
    /// from another `XmlWriter`).
    pub fn raw(&mut self, xml: &str) {
        self.seal();
        self.out.push_str(xml);
    }

    /// Append a typed atomic as text content (numerics skip escaping —
    /// their lexical forms cannot contain markup).
    pub fn text_atomic(&mut self, a: &Atomic) {
        match a {
            Atomic::Null => {}
            Atomic::Bool(b) => {
                self.seal();
                let _ = write!(self.out, "{}", b);
            }
            Atomic::Int(i) => {
                self.seal();
                let _ = write!(self.out, "{}", i);
            }
            Atomic::Float(_) => {
                self.seal();
                a.lexical_into(&mut self.out);
            }
            Atomic::Str(s) => self.text_str(s),
            Atomic::Sym(s) => self.text_str(s.as_str()),
        }
    }

    /// Copy an existing subtree into the stream (compact form, identical
    /// to [`to_string`] of that subtree).
    pub fn write_node(&mut self, node: &NodeRef) {
        self.seal();
        write_node(&mut self.out, node, None, 0);
    }

    /// Close the innermost open element (self-closing when empty).
    /// Panics on attempts to close the root (closed by
    /// [`finish`](Self::finish)).
    pub fn end_element(&mut self) {
        assert!(self.stack.len() > 1, "end_element would close the document root");
        self.close_top();
    }

    fn close_top(&mut self) {
        if let Some((name, closed)) = self.stack.pop() {
            if closed {
                self.out.push_str("</");
                self.out.push_str(name.as_str());
                self.out.push('>');
            } else {
                self.out.push_str("/>");
            }
        }
    }

    /// Checkpoint the output position for speculative rendering.
    pub fn mark(&self) -> WriteMark {
        WriteMark {
            len: self.out.len(),
            depth: self.stack.len(),
            parent_closed: self.stack.last().map(|(_, c)| *c).unwrap_or(true),
        }
    }

    /// The bytes emitted since `mark` (the duplicate-elimination key for
    /// a speculatively-rendered run).
    pub fn since<'a>(&'a self, mark: &WriteMark) -> &'a str {
        &self.out[mark.len..]
    }

    /// Discard everything emitted since `mark`. All elements opened
    /// after the mark must have been closed again.
    pub fn rollback(&mut self, mark: &WriteMark) {
        assert!(self.stack.len() == mark.depth, "rollback across open elements");
        self.out.truncate(mark.len);
        if let Some((_, closed)) = self.stack.last_mut() {
            *closed = mark.parent_closed;
        }
    }

    /// Bytes emitted so far (diagnostics).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing beyond the root's start tag has been emitted.
    pub fn is_empty(&self) -> bool {
        self.stack.len() == 1 && !self.stack[0].1
    }

    /// Close all open elements and return the document text.
    pub fn finish(mut self) -> String {
        while !self.stack.is_empty() {
            self.close_top();
        }
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn escaping_roundtrips() {
        let doc = parse("<a x=\"q&quot;u&amp;o\">a &lt; b &amp; c</a>").unwrap();
        let text = to_string(&doc.root());
        let doc2 = parse(&text).unwrap();
        assert!(doc.root().deep_eq(&doc2.root()));
    }

    #[test]
    fn pretty_printing_indents_elements() {
        let doc = parse("<a><b><c/></b><d/></a>").unwrap();
        let pretty = to_string_pretty(&doc.root());
        assert_eq!(pretty, "<a>\n  <b>\n    <c/>\n  </b>\n  <d/>\n</a>");
    }

    #[test]
    fn pretty_printing_keeps_mixed_content_inline() {
        let doc = parse("<p>hello <b>world</b>!</p>").unwrap();
        let pretty = to_string_pretty(&doc.root());
        assert_eq!(pretty, "<p>hello <b>world</b>!</p>");
    }

    #[test]
    fn empty_elements_self_close() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&doc.root()), "<a><b/></a>");
    }

    #[test]
    fn writer_matches_tree_serialization() {
        use crate::build::DocumentBuilder;
        use crate::Atomic;
        let mut b = DocumentBuilder::new("db");
        b.start_element("book");
        b.attr("year", "19\"99");
        b.leaf("title", Atomic::Str("Data < & Web".into()));
        b.leaf("n", Atomic::Int(7));
        b.start_element("empty");
        b.end_element();
        b.end_element();
        let tree = to_string(&b.finish().root());

        let mut w = XmlWriter::new("db");
        w.start_element("book");
        w.attr("year", "19\"99");
        w.start_element("title");
        w.text_atomic(&Atomic::Str("Data < & Web".into()));
        w.end_element();
        w.start_element("n");
        w.text_atomic(&Atomic::Int(7));
        w.end_element();
        w.start_element("empty");
        w.end_element();
        w.end_element();
        assert_eq!(w.finish(), tree);
    }

    #[test]
    fn writer_subtree_copy_matches() {
        let doc = parse("<a><b x='1'>t<!--c--></b><p/></a>").unwrap();
        let mut w = XmlWriter::new("out");
        for c in doc.root().children() {
            w.write_node(&c);
        }
        assert_eq!(
            w.finish(),
            format!(
                "<out>{}</out>",
                doc.root().children().map(|c| to_string(&c)).collect::<String>()
            )
        );
    }

    #[test]
    fn writer_mark_rollback() {
        let mut w = XmlWriter::new("r");
        w.start_element("keep");
        w.end_element();
        let m = w.mark();
        w.start_element("spec");
        w.text_str("x");
        w.end_element();
        assert_eq!(w.since(&m), "<spec>x</spec>");
        w.rollback(&m);
        assert_eq!(w.finish(), "<r><keep/></r>");
    }

    #[test]
    fn writer_rollback_of_first_child_restores_self_close() {
        let mut w = XmlWriter::new("r");
        let m = w.mark();
        w.start_element("spec");
        w.end_element();
        w.rollback(&m);
        assert_eq!(w.finish(), "<r/>");
    }
}
