//! Serialization of documents back to XML text.

use crate::node::{NodeKind, NodeRef};
use std::fmt::Write;

/// Serialize a subtree to compact XML (no added whitespace).
pub fn to_string(node: &NodeRef) -> String {
    let mut out = String::new();
    write_node(&mut out, node, None, 0);
    out
}

/// Serialize a subtree with two-space indentation, one element per line.
/// Mixed content (elements with text siblings) is kept inline so text is
/// not distorted.
pub fn to_string_pretty(node: &NodeRef) -> String {
    let mut out = String::new();
    write_node(&mut out, node, Some(2), 0);
    out
}

fn write_node(out: &mut String, node: &NodeRef, indent: Option<usize>, depth: usize) {
    match node.kind() {
        NodeKind::Element { name, attrs } => {
            if let Some(w) = indent {
                if depth > 0 {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * depth));
                }
            }
            out.push('<');
            out.push_str(name);
            for (k, v) in attrs {
                let _ = write!(out, " {}=\"{}\"", k, escape_attr(v));
            }
            let children: Vec<NodeRef> = node.children().collect();
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let mixed = children
                .iter()
                .any(|c| matches!(c.kind(), NodeKind::Text(_)));
            let child_indent = if mixed { None } else { indent };
            for c in &children {
                write_node(out, c, child_indent, depth + 1);
            }
            if let Some(w) = indent {
                if !mixed {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * depth));
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        NodeKind::Text(a) => out.push_str(&escape_text(&a.lexical())),
        NodeKind::Comment(c) => {
            let _ = write!(out, "<!--{}-->", c);
        }
        NodeKind::Pi { target, data } => {
            if data.is_empty() {
                let _ = write!(out, "<?{}?>", target);
            } else {
                let _ = write!(out, "<?{} {}?>", target, data);
            }
        }
    }
}

/// Escape text content: `<`, `>`, `&`.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for double-quoted output.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn escaping_roundtrips() {
        let doc = parse("<a x=\"q&quot;u&amp;o\">a &lt; b &amp; c</a>").unwrap();
        let text = to_string(&doc.root());
        let doc2 = parse(&text).unwrap();
        assert!(doc.root().deep_eq(&doc2.root()));
    }

    #[test]
    fn pretty_printing_indents_elements() {
        let doc = parse("<a><b><c/></b><d/></a>").unwrap();
        let pretty = to_string_pretty(&doc.root());
        assert_eq!(pretty, "<a>\n  <b>\n    <c/>\n  </b>\n  <d/>\n</a>");
    }

    #[test]
    fn pretty_printing_keeps_mixed_content_inline() {
        let doc = parse("<p>hello <b>world</b>!</p>").unwrap();
        let pretty = to_string_pretty(&doc.root());
        assert_eq!(pretty, "<p>hello <b>world</b>!</p>");
    }

    #[test]
    fn empty_elements_self_close() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&doc.root()), "<a><b/></a>");
    }
}
