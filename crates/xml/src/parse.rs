//! A from-scratch XML 1.0 parser (no external crates).
//!
//! Supports the subset a data-integration engine meets in practice:
//! elements, attributes (single- or double-quoted), character data,
//! comments, processing instructions, CDATA sections, the five predefined
//! entities plus numeric character references, an optional XML declaration,
//! and a skipped DOCTYPE. Errors carry line/column positions.

use crate::atomic::Atomic;
use crate::build::DocumentBuilder;
use crate::node::Document;
use std::fmt;
use std::sync::Arc;

/// A parse failure with its position in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete XML document from a string.
pub fn parse(input: &str) -> Result<Arc<Document>, ParseError> {
    Parser::new(input).parse_document()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line,
            column: self.col,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn consume(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.consume(s) {
            Ok(())
        } else {
            self.err(format!("expected {:?}", s))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn parse_document(&mut self) -> Result<Arc<Document>, ParseError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.skip_until("?>")?;
        }
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_comment_text()?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else {
                break;
            }
        }
        self.skip_ws();
        if self.peek() != Some(b'<') {
            return self.err("expected root element");
        }
        let root_name = self.peek_element_name()?;
        let mut builder = DocumentBuilder::new(&root_name);
        self.parse_element_into(&mut builder, true)?;
        self.skip_ws();
        // Trailing comments/PIs are permitted and discarded.
        while self.starts_with("<!--") || self.starts_with("<?") {
            if self.starts_with("<!--") {
                self.skip_comment_text()?;
            } else {
                self.skip_until("?>")?;
            }
            self.skip_ws();
        }
        if self.pos != self.input.len() {
            return self.err("content after document root");
        }
        Ok(builder.finish())
    }

    /// Read the tag name of the element starting at the cursor without
    /// consuming anything.
    fn peek_element_name(&self) -> Result<String, ParseError> {
        let rest = &self.input[self.pos..];
        if rest.first() != Some(&b'<') {
            return Err(ParseError {
                message: "expected element".into(),
                line: self.line,
                column: self.col,
            });
        }
        let mut end = 1;
        while end < rest.len() && is_name_char(rest[end]) {
            end += 1;
        }
        if end == 1 {
            return Err(ParseError {
                message: "empty element name".into(),
                line: self.line,
                column: self.col,
            });
        }
        Ok(String::from_utf8_lossy(&rest[1..end]).into_owned())
    }

    /// Parse the element at the cursor. When `is_root` the builder's root
    /// was already created with the element's name; we still consume the
    /// tag, attributes, and content.
    fn parse_element_into(
        &mut self,
        b: &mut DocumentBuilder,
        is_root: bool,
    ) -> Result<(), ParseError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        if !is_root {
            b.start_element(&name);
        }
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    self.expect(">")?;
                    if !is_root {
                        b.end_element();
                    }
                    return Ok(());
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(c) if is_name_start(c) => {
                    let (k, v) = self.parse_attribute()?;
                    b.attr(&k, &v);
                }
                _ => return self.err("malformed start tag"),
            }
        }
        // Content until the matching end tag.
        loop {
            match self.peek() {
                None => return self.err(format!("unexpected end of input inside <{}>", name)),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.consume("</");
                        let end_name = self.parse_name()?;
                        if end_name != name {
                            return self.err(format!(
                                "mismatched end tag: expected </{}>, found </{}>",
                                name, end_name
                            ));
                        }
                        self.skip_ws();
                        self.expect(">")?;
                        if !is_root {
                            b.end_element();
                        }
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        let text = self.parse_comment_text()?;
                        b.comment(&text);
                    } else if self.starts_with("<![CDATA[") {
                        let text = self.parse_cdata()?;
                        b.text(Atomic::Sym(crate::intern::Sym::intern(&text)));
                    } else if self.starts_with("<?") {
                        let (target, data) = self.parse_pi()?;
                        b.pi(&target, &data);
                    } else {
                        self.parse_element_into(b, false)?;
                    }
                }
                Some(_) => {
                    let text = self.parse_char_data()?;
                    // Whitespace-only runs between elements are dropped, a
                    // pragmatic default for data-oriented XML. Mixed content
                    // with real text is preserved verbatim.
                    if !text.trim().is_empty() {
                        b.text(Atomic::Sym(crate::intern::Sym::intern(&text)));
                    }
                }
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => return self.err("expected name"),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_attribute(&mut self) -> Result<(String, String), ParseError> {
        let name = self.parse_name()?;
        self.skip_ws();
        self.expect("=")?;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return self.err("expected quoted attribute value"),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated attribute value"),
                Some(q) if q == quote => {
                    self.bump();
                    break;
                }
                Some(b'&') => value.push_str(&self.parse_entity()?),
                Some(b'<') => return self.err("'<' not allowed in attribute value"),
                Some(_) => {
                    let c = self.parse_utf8_char()?;
                    value.push(c);
                }
            }
        }
        Ok((name, value))
    }

    fn parse_char_data(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => break,
                Some(b'&') => out.push_str(&self.parse_entity()?),
                Some(_) => out.push(self.parse_utf8_char()?),
            }
        }
        Ok(out)
    }

    fn parse_utf8_char(&mut self) -> Result<char, ParseError> {
        let first = self.peek().unwrap();
        let len = match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            0xF0..=0xF7 => 4,
            _ => return self.err("invalid UTF-8 byte"),
        };
        if self.pos + len > self.input.len() {
            return self.err("truncated UTF-8 sequence");
        }
        let s = std::str::from_utf8(&self.input[self.pos..self.pos + len])
            .map_err(|_| ParseError {
                message: "invalid UTF-8 sequence".into(),
                line: self.line,
                column: self.col,
            })?;
        let c = s.chars().next().unwrap();
        for _ in 0..len {
            self.bump();
        }
        Ok(c)
    }

    fn parse_entity(&mut self) -> Result<String, ParseError> {
        self.expect("&")?;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c != b';') {
            self.bump();
            if self.pos - start > 12 {
                return self.err("entity reference too long");
            }
        }
        let body = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        self.expect(";")?;
        match body.as_str() {
            "lt" => Ok("<".into()),
            "gt" => Ok(">".into()),
            "amp" => Ok("&".into()),
            "apos" => Ok("'".into()),
            "quot" => Ok("\"".into()),
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                let code = u32::from_str_radix(&body[2..], 16)
                    .ok()
                    .and_then(char::from_u32);
                match code {
                    Some(c) => Ok(c.to_string()),
                    None => self.err(format!("invalid character reference &{};", body)),
                }
            }
            _ if body.starts_with('#') => {
                let code = body[1..].parse::<u32>().ok().and_then(char::from_u32);
                match code {
                    Some(c) => Ok(c.to_string()),
                    None => self.err(format!("invalid character reference &{};", body)),
                }
            }
            _ => self.err(format!("unknown entity &{};", body)),
        }
    }

    fn parse_comment_text(&mut self) -> Result<String, ParseError> {
        self.expect("<!--")?;
        let start = self.pos;
        loop {
            if self.starts_with("-->") {
                let text = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.consume("-->");
                return Ok(text);
            }
            if self.bump().is_none() {
                return self.err("unterminated comment");
            }
        }
    }

    fn skip_comment_text(&mut self) -> Result<(), ParseError> {
        self.parse_comment_text().map(|_| ())
    }

    fn parse_cdata(&mut self) -> Result<String, ParseError> {
        self.expect("<![CDATA[")?;
        let start = self.pos;
        loop {
            if self.starts_with("]]>") {
                let text = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.consume("]]>");
                return Ok(text);
            }
            if self.bump().is_none() {
                return self.err("unterminated CDATA section");
            }
        }
    }

    fn parse_pi(&mut self) -> Result<(String, String), ParseError> {
        self.expect("<?")?;
        let target = self.parse_name()?;
        self.skip_ws();
        let start = self.pos;
        loop {
            if self.starts_with("?>") {
                let data = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.consume("?>");
                return Ok((target, data));
            }
            if self.bump().is_none() {
                return self.err("unterminated processing instruction");
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), ParseError> {
        loop {
            if self.consume(end) {
                return Ok(());
            }
            if self.bump().is_none() {
                return self.err(format!("expected {:?} before end of input", end));
            }
        }
    }

    /// DOCTYPE declarations may nest `[ ... ]` internal subsets; skip the
    /// whole declaration without interpreting it.
    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 0usize;
        loop {
            match self.peek() {
                None => return self.err("unterminated DOCTYPE"),
                Some(b'[') => {
                    depth += 1;
                    self.bump();
                }
                Some(b']') => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                Some(b'>') if depth == 0 => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':' || c >= 0x80
}

fn is_name_char(c: u8) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == b'-' || c == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::to_string;

    fn roundtrip(s: &str) -> String {
        to_string(&parse(s).unwrap().root())
    }

    #[test]
    fn simple_document() {
        assert_eq!(roundtrip("<a><b>hi</b></a>"), "<a><b>hi</b></a>");
    }

    #[test]
    fn attributes_both_quotes() {
        let doc = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(doc.root().attr("x"), Some("1"));
        assert_eq!(doc.root().attr("y"), Some("two"));
    }

    #[test]
    fn entities_decoded() {
        let doc = parse("<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>").unwrap();
        assert_eq!(doc.root().text(), "<>&'\"AB");
    }

    #[test]
    fn cdata_preserved() {
        let doc = parse("<a><![CDATA[<not><xml>]]></a>").unwrap();
        assert_eq!(doc.root().text(), "<not><xml>");
    }

    #[test]
    fn comments_and_pis_kept_in_tree() {
        let doc = parse("<a><!--note--><?php echo?><b/></a>").unwrap();
        let kinds: Vec<bool> = doc.root().children().map(|c| c.is_element()).collect();
        assert_eq!(kinds, vec![false, false, true]);
    }

    #[test]
    fn prolog_and_doctype_skipped() {
        let doc = parse(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE db [<!ELEMENT db (x)*>]>\n<db><x/></db>",
        )
        .unwrap();
        assert_eq!(doc.root().name(), Some("db"));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched end tag"), "{}", err);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn unterminated_rejected() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a x=>").is_err());
        assert!(parse("<a><!--").is_err());
    }

    #[test]
    fn whitespace_between_elements_dropped_mixed_kept() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.root().children().count(), 1);
        let doc = parse("<a>hi <b/> there</a>").unwrap();
        assert_eq!(doc.root().children().count(), 3);
        assert_eq!(doc.root().text(), "hi  there");
    }

    #[test]
    fn unicode_content() {
        let doc = parse("<a name='héllo'>日本語</a>").unwrap();
        assert_eq!(doc.root().attr("name"), Some("héllo"));
        assert_eq!(doc.root().text(), "日本語");
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("<a>\n<b></c></a>").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
