//! Property test for the static plan verifier: every plan the planner
//! produces over generated queries — under every optimizer
//! configuration — passes `planner::verify_plan`, and executing the
//! query with verification enabled (plan-level checks plus the
//! `nimble-planck` operator-tree checks before `run_to_vec`) never
//! trips a diagnostic. The verifier exists to catch malformed plans; a
//! correct planner must never produce one.
//!
//! With planck v2 the bar is higher: every configuration here runs with
//! `semantic_checks` on, so a pass also means the typed-domain pass,
//! the rewrite-equivalence audit, and (on cache hits) the sampled
//! differential re-plan all come back clean for every generated query.
//! A final per-query check flips `prune_unsat` on and asserts the
//! document is byte-identical — satisfiability pruning must be
//! invisible in results, only in work done.

use nimble_core::planner::{plan_query, verify_plan};
use nimble_core::{Catalog, Engine, OptimizerConfig};
use nimble_sources::relational::RelationalAdapter;
use proptest::prelude::*;
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    let stmts = [
        "CREATE TABLE customers (id INT, name TEXT, region TEXT)",
        "INSERT INTO customers VALUES (1, 'ada', 'NW')",
        "INSERT INTO customers VALUES (2, 'bob', 'SW')",
        "INSERT INTO customers VALUES (3, 'cyd', 'NW')",
        "CREATE TABLE orders (oid INT, cust_id INT, total INT)",
        "INSERT INTO orders VALUES (10, 1, 250)",
        "INSERT INTO orders VALUES (11, 2, 40)",
        "INSERT INTO orders VALUES (12, 3, 75)",
        "INSERT INTO orders VALUES (13, 1, 8)",
    ];
    let c = Catalog::new();
    c.register_source(Arc::new(
        RelationalAdapter::from_statements("erp", &stmts).unwrap(),
    ))
    .unwrap();
    Arc::new(c)
}

/// Generate a query from a small grammar over the two-table catalog:
/// optional second pattern (join on `$i`), optional literal region
/// selection, optional residual threshold predicate, optional ORDER-BY.
fn query_strategy() -> impl Strategy<Value = String> {
    (
        any::<bool>(), // join with orders
        any::<bool>(), // literal region filter
        any::<bool>(), // bind region as a variable
        proptest::option::of(0i64..300), // threshold predicate on $t
        0usize..3,     // order-by: none / $n / $i
    )
        .prop_map(|(join, lit_region, bind_region, threshold, order)| {
            let mut pats = vec![format!(
                "<row><id>$i</id><name>$n</name>{}{}</row> IN \"customers\"",
                if lit_region { "<region>\"NW\"</region>" } else { "" },
                if bind_region { "<region>$r</region>" } else { "" },
            )];
            let mut preds = Vec::new();
            let mut construct = String::from("<n>$n</n>");
            if join {
                pats.push(
                    "<row><cust_id>$i</cust_id><total>$t</total></row> IN \"orders\"".into(),
                );
                construct.push_str("<t>$t</t>");
                if let Some(k) = threshold {
                    preds.push(format!("$t > {}", k));
                }
            }
            if bind_region {
                construct.push_str("<r>$r</r>");
            }
            let order_by = match order {
                1 => " ORDER-BY $n",
                2 => " ORDER-BY $i",
                _ => "",
            };
            format!(
                "WHERE {} CONSTRUCT <hit>{}</hit>{}",
                pats.into_iter().chain(preds).collect::<Vec<_>>().join(", "),
                construct,
                order_by
            )
        })
}

fn all_configs() -> Vec<OptimizerConfig> {
    let mut out = Vec::new();
    for pushdown in [false, true] {
        for capability_joins in [false, true] {
            for order_joins_by_cardinality in [false, true] {
                // Execution modes: scalar, batch, batch+parallel
                // (parallel_exec without batch_exec is a no-op).
                for (batch_exec, parallel_exec) in [(false, false), (true, false), (true, true)] {
                    for cost_based in [false, true] {
                        out.push(OptimizerConfig {
                            pushdown,
                            capability_joins,
                            order_joins_by_cardinality,
                            verify_plans: true,
                            batch_exec,
                            parallel_exec,
                            cost_based,
                            // Every drive config runs the semantic pass;
                            // prune_unsat is exercised per-query below by
                            // comparing against the pruning twin.
                            semantic_checks: true,
                            prune_unsat: false,
                        });
                    }
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn planned_queries_always_verify(text in query_strategy()) {
        let q = nimble_xmlql::parse_query(&text).unwrap();
        nimble_xmlql::analyze(&q).unwrap();
        let cat = catalog();
        for config in all_configs() {
            // Plan-level invariants (binding order, residual predicate
            // scope, ORDER-BY scope).
            let plan = plan_query(&cat, &q, &config).unwrap();
            if let Err(e) = verify_plan(&plan, None) {
                return Err(TestCaseError::fail(format!(
                    "verify_plan rejected {:?} under {:?}: {}",
                    text, config, e
                )));
            }
            // End-to-end: the engine runs the same plan through the
            // planck operator-tree checks (semantic passes included)
            // before execution.
            let engine = Engine::new(cat.clone());
            engine.set_optimizer(config);
            let r = engine.query(&text);
            prop_assert!(r.is_ok(), "query {:?} failed under {:?}: {}", text, config, r.unwrap_err());

            // Satisfiability pruning must never change the answer: the
            // same config with prune_unsat on returns the identical
            // document (the strategy's high thresholds generate
            // genuinely prunable predicates like `$t > 299`).
            let pruning = Engine::new(cat.clone());
            pruning.set_optimizer(OptimizerConfig {
                prune_unsat: true,
                ..config
            });
            let rp = pruning.query(&text);
            prop_assert!(rp.is_ok(), "query {:?} failed with pruning: {}", text, rp.unwrap_err());
            prop_assert_eq!(
                nimble_xml::serialize::to_string(&r.unwrap().document.root()),
                nimble_xml::serialize::to_string(&rp.unwrap().document.root()),
                "prune-on and prune-off disagree for {:?} under {:?}",
                text,
                config
            );
        }
    }
}
